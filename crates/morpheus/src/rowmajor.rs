//! Row-major traversal of every storage format, without conversion.
//!
//! The shared analysis pass, the machine-model's locality walk and the
//! direct conversion kernels all need to visit a matrix's structural
//! entries row by row, in ascending column order, *in whatever format is
//! currently active*. [`RowMajor`] provides exactly that: a per-row count
//! (for prefix-sum output planning) and a per-row sorted emission (for
//! filling target arrays or streaming statistics) — no COO materialisation,
//! no triplet buffers.
//!
//! Semantics match the historical `*_to_coo` converters: DIA-backed storage
//! elides explicit zeros (padding and stored zeros are indistinguishable
//! there), ELL-backed storage keeps them (padding is tracked by the
//! [`ELL_PAD`] sentinel, not the value).

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dia::DiaMatrix;
use crate::dynamic::DynamicMatrix;
use crate::ell::{EllMatrix, ELL_PAD};
use crate::hdc::HdcMatrix;
use crate::hyb::HybMatrix;
use crate::scalar::Scalar;

/// Row-major, column-sorted access to a sparse matrix's structural entries.
pub(crate) trait RowMajor<V: Scalar>: Sync {
    /// Number of rows.
    fn nrows(&self) -> usize;

    /// Structural entries in row `r` (cost: O(row) or better, never O(nnz)).
    fn row_count(&self, r: usize) -> usize;

    /// Calls `f(col, value)` for every structural entry of row `r`, columns
    /// strictly ascending.
    fn emit_row(&self, r: usize, f: &mut dyn FnMut(usize, V));
}

impl<V: Scalar> RowMajor<V> for CsrMatrix<V> {
    fn nrows(&self) -> usize {
        self.nrows()
    }

    fn row_count(&self, r: usize) -> usize {
        self.row_nnz(r)
    }

    fn emit_row(&self, r: usize, f: &mut dyn FnMut(usize, V)) {
        for (&c, &v) in self.row_cols(r).iter().zip(self.row_vals(r)) {
            f(c, v);
        }
    }
}

impl<V: Scalar> RowMajor<V> for CooMatrix<V> {
    fn nrows(&self) -> usize {
        self.nrows()
    }

    fn row_count(&self, r: usize) -> usize {
        let (lo, hi) = coo_row_segment(self, r);
        hi - lo
    }

    fn emit_row(&self, r: usize, f: &mut dyn FnMut(usize, V)) {
        let (lo, hi) = coo_row_segment(self, r);
        for i in lo..hi {
            f(self.col_indices()[i], self.values()[i]);
        }
    }
}

/// Entry range of row `r` in a sorted COO matrix (binary search).
fn coo_row_segment<V: Scalar>(coo: &CooMatrix<V>, r: usize) -> (usize, usize) {
    let rows = coo.row_indices();
    let lo = rows.partition_point(|&x| x < r);
    let hi = lo + rows[lo..].partition_point(|&x| x == r);
    (lo, hi)
}

impl<V: Scalar> RowMajor<V> for EllMatrix<V> {
    fn nrows(&self) -> usize {
        self.nrows()
    }

    fn row_count(&self, r: usize) -> usize {
        let nrows = self.nrows();
        let cols = self.col_indices();
        (0..self.width()).take_while(|&k| cols[k * nrows + r] != ELL_PAD).count()
    }

    fn emit_row(&self, r: usize, f: &mut dyn FnMut(usize, V)) {
        let nrows = self.nrows();
        let cols = self.col_indices();
        let vals = self.values();
        for k in 0..self.width() {
            let c = cols[k * nrows + r];
            if c == ELL_PAD {
                break;
            }
            f(c, vals[k * nrows + r]);
        }
    }
}

impl<V: Scalar> RowMajor<V> for DiaMatrix<V> {
    fn nrows(&self) -> usize {
        self.nrows()
    }

    fn row_count(&self, r: usize) -> usize {
        let mut n = 0;
        self.emit_row(r, &mut |_, _| n += 1);
        n
    }

    fn emit_row(&self, r: usize, f: &mut dyn FnMut(usize, V)) {
        let nrows = self.nrows();
        let values = self.values();
        // Offsets ascend, so columns `r + off` ascend too.
        for (d, &off) in self.offsets().iter().enumerate() {
            if self.diag_row_range(d).contains(&r) {
                let v = values[d * nrows + r];
                if v != V::ZERO {
                    f((r as isize + off) as usize, v);
                }
            }
        }
    }
}

impl<V: Scalar> RowMajor<V> for HybMatrix<V> {
    fn nrows(&self) -> usize {
        self.nrows()
    }

    fn row_count(&self, r: usize) -> usize {
        let (lo, hi) = coo_row_segment(self.coo(), r);
        RowMajor::row_count(self.ell(), r) + (hi - lo)
    }

    fn emit_row(&self, r: usize, f: &mut dyn FnMut(usize, V)) {
        // Merge the two sorted per-row streams; coordinates are disjoint by
        // the HYB invariant, so a plain `<` comparison suffices.
        let ell = self.ell();
        let nrows = ell.nrows();
        let (ecols, evals) = (ell.col_indices(), ell.values());
        let peek_ell = |k: usize| -> Option<usize> {
            if k < ell.width() {
                let c = ecols[k * nrows + r];
                (c != ELL_PAD).then_some(c)
            } else {
                None
            }
        };
        let coo = self.coo();
        let (mut si, hi) = coo_row_segment(coo, r);
        let mut k = 0;
        loop {
            match (peek_ell(k), (si < hi).then(|| coo.col_indices()[si])) {
                (Some(ce), Some(cs)) if ce < cs => {
                    f(ce, evals[k * nrows + r]);
                    k += 1;
                }
                (Some(_), Some(_)) | (None, Some(_)) => {
                    f(coo.col_indices()[si], coo.values()[si]);
                    si += 1;
                }
                (Some(ce), None) => {
                    f(ce, evals[k * nrows + r]);
                    k += 1;
                }
                (None, None) => break,
            }
        }
    }
}

impl<V: Scalar> RowMajor<V> for HdcMatrix<V> {
    fn nrows(&self) -> usize {
        self.nrows()
    }

    fn row_count(&self, r: usize) -> usize {
        RowMajor::row_count(self.dia(), r) + self.csr().row_nnz(r)
    }

    fn emit_row(&self, r: usize, f: &mut dyn FnMut(usize, V)) {
        let dia = self.dia();
        let nrows = dia.nrows();
        let dvals = dia.values();
        let offsets = dia.offsets();
        // Next structural DIA entry of this row at or after diagonal `d`.
        let peek_dia = |d: &mut usize| -> Option<usize> {
            while *d < dia.ndiags() {
                if dia.diag_row_range(*d).contains(&r) && dvals[*d * nrows + r] != V::ZERO {
                    return Some((r as isize + offsets[*d]) as usize);
                }
                *d += 1;
            }
            None
        };
        let csr = self.csr();
        let (ccols, cvals) = (csr.row_cols(r), csr.row_vals(r));
        let mut d = 0usize;
        let mut i = 0usize;
        loop {
            match (peek_dia(&mut d), ccols.get(i).copied()) {
                (Some(cd), Some(cc)) if cd < cc => {
                    f(cd, dvals[d * nrows + r]);
                    d += 1;
                }
                (Some(_), Some(_)) | (None, Some(_)) => {
                    f(ccols[i], cvals[i]);
                    i += 1;
                }
                (Some(cd), None) => {
                    f(cd, dvals[d * nrows + r]);
                    d += 1;
                }
                (None, None) => break,
            }
        }
    }
}

/// Visits every structural entry of `m` as `f(row, col, value)` in sorted
/// `(row, col)` order — the same order a COO copy would iterate in — without
/// materialising any intermediate representation.
///
/// This is the walk the machine model's gather-locality estimator uses; it
/// yields results identical to converting to COO first, at zero allocation.
pub fn for_each_entry_row_major<V: Scalar>(m: &DynamicMatrix<V>, mut f: impl FnMut(usize, usize, V)) {
    match m {
        // COO and CSR store entries row-major already: stream the arrays.
        DynamicMatrix::Coo(a) => {
            for i in 0..a.nnz() {
                f(a.row_indices()[i], a.col_indices()[i], a.values()[i]);
            }
        }
        DynamicMatrix::Csr(a) => {
            for r in 0..a.nrows() {
                a.emit_row(r, &mut |c, v| f(r, c, v));
            }
        }
        DynamicMatrix::Dia(a) => visit_rows(a, &mut f),
        DynamicMatrix::Ell(a) => visit_rows(a, &mut f),
        DynamicMatrix::Hyb(a) => visit_rows(a, &mut f),
        DynamicMatrix::Hdc(a) => visit_rows(a, &mut f),
        DynamicMatrix::Bsr(a) => visit_rows(a, &mut f),
        DynamicMatrix::Bell(a) => visit_rows(a, &mut f),
    }
}

fn visit_rows<V: Scalar>(a: &impl RowMajor<V>, f: &mut impl FnMut(usize, usize, V)) {
    for r in 0..a.nrows() {
        a.emit_row(r, &mut |c, v| f(r, c, v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ConvertOptions;
    use crate::format::ALL_FORMATS;
    use crate::test_util::random_coo;

    #[test]
    fn walk_matches_coo_iteration_for_every_format() {
        for seed in 0..3u64 {
            let coo = random_coo::<f64>(40, 33, 220, seed);
            let expect: Vec<(usize, usize, f64)> = coo.iter().collect();
            let base = DynamicMatrix::from(coo);
            let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };
            for &fmt in &ALL_FORMATS {
                let m = base.to_format(fmt, &opts).unwrap();
                let mut got = Vec::new();
                for_each_entry_row_major(&m, |r, c, v| got.push((r, c, v)));
                assert_eq!(got, expect, "row-major walk for {fmt} (seed {seed})");
            }
        }
    }

    #[test]
    fn row_counts_agree_with_emission() {
        let coo = random_coo::<f64>(25, 25, 120, 9);
        let base = DynamicMatrix::from(coo);
        let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };
        for &fmt in &ALL_FORMATS {
            let m = base.to_format(fmt, &opts).unwrap();
            let check = |a: &dyn RowMajor<f64>| {
                for r in 0..a.nrows() {
                    let mut n = 0;
                    a.emit_row(r, &mut |_, _| n += 1);
                    assert_eq!(a.row_count(r), n, "{fmt} row {r}");
                }
            };
            match &m {
                DynamicMatrix::Coo(a) => check(a),
                DynamicMatrix::Csr(a) => check(a),
                DynamicMatrix::Dia(a) => check(a),
                DynamicMatrix::Ell(a) => check(a),
                DynamicMatrix::Hyb(a) => check(a),
                DynamicMatrix::Hdc(a) => check(a),
                DynamicMatrix::Bsr(a) => check(a),
                DynamicMatrix::Bell(a) => check(a),
            }
        }
    }
}
