//! The runtime-switchable `DynamicMatrix` (§II-C).

use crate::analysis::Analysis;
use crate::bell::BellMatrix;
use crate::bsr::BsrMatrix;
use crate::convert::{
    self, csr_to_coo, dia_to_coo, ell_to_coo, hdc_to_coo, hyb_to_coo, ConvertOptions, ConvertOutcome,
};
use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::dia::DiaMatrix;
use crate::ell::EllMatrix;
use crate::format::FormatId;
use crate::hdc::HdcMatrix;
use crate::hyb::HybMatrix;
use crate::scalar::Scalar;
use crate::Result;

/// A sparse matrix whose storage format is chosen — and changed — at
/// runtime.
///
/// This is the Rust analogue of Morpheus' `DynamicMatrix`: "a single dynamic
/// 'abstract' format" providing "a transparent mechanism that can
/// efficiently switch to the different formats" (§II-C). The Oracle tuners
/// return a [`FormatId`]; [`DynamicMatrix::convert_to`] performs the switch
/// in place.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicMatrix<V> {
    /// Coordinate storage.
    Coo(CooMatrix<V>),
    /// Compressed sparse row storage.
    Csr(CsrMatrix<V>),
    /// Diagonal storage.
    Dia(DiaMatrix<V>),
    /// ELLPACK storage.
    Ell(EllMatrix<V>),
    /// Hybrid ELL/COO storage.
    Hyb(HybMatrix<V>),
    /// Hybrid DIA/CSR storage.
    Hdc(HdcMatrix<V>),
    /// Register-blocked CSR storage.
    Bsr(BsrMatrix<V>),
    /// Bucketed ELLPACK storage.
    Bell(BellMatrix<V>),
}

impl<V: Scalar> DynamicMatrix<V> {
    /// The active format.
    pub fn format_id(&self) -> FormatId {
        match self {
            DynamicMatrix::Coo(_) => FormatId::Coo,
            DynamicMatrix::Csr(_) => FormatId::Csr,
            DynamicMatrix::Dia(_) => FormatId::Dia,
            DynamicMatrix::Ell(_) => FormatId::Ell,
            DynamicMatrix::Hyb(_) => FormatId::Hyb,
            DynamicMatrix::Hdc(_) => FormatId::Hdc,
            DynamicMatrix::Bsr(_) => FormatId::Bsr,
            DynamicMatrix::Bell(_) => FormatId::Bell,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        match self {
            DynamicMatrix::Coo(m) => m.nrows(),
            DynamicMatrix::Csr(m) => m.nrows(),
            DynamicMatrix::Dia(m) => m.nrows(),
            DynamicMatrix::Ell(m) => m.nrows(),
            DynamicMatrix::Hyb(m) => m.nrows(),
            DynamicMatrix::Hdc(m) => m.nrows(),
            DynamicMatrix::Bsr(m) => m.nrows(),
            DynamicMatrix::Bell(m) => m.nrows(),
        }
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        match self {
            DynamicMatrix::Coo(m) => m.ncols(),
            DynamicMatrix::Csr(m) => m.ncols(),
            DynamicMatrix::Dia(m) => m.ncols(),
            DynamicMatrix::Ell(m) => m.ncols(),
            DynamicMatrix::Hyb(m) => m.ncols(),
            DynamicMatrix::Hdc(m) => m.ncols(),
            DynamicMatrix::Bsr(m) => m.ncols(),
            DynamicMatrix::Bell(m) => m.ncols(),
        }
    }

    /// Structural non-zeros (excludes padding in DIA/ELL-like formats).
    pub fn nnz(&self) -> usize {
        match self {
            DynamicMatrix::Coo(m) => m.nnz(),
            DynamicMatrix::Csr(m) => m.nnz(),
            DynamicMatrix::Dia(m) => m.nnz(),
            DynamicMatrix::Ell(m) => m.nnz(),
            DynamicMatrix::Hyb(m) => m.nnz(),
            DynamicMatrix::Hdc(m) => m.nnz(),
            DynamicMatrix::Bsr(m) => m.nnz(),
            DynamicMatrix::Bell(m) => m.nnz(),
        }
    }

    /// Bytes of heap storage the active representation occupies.
    pub fn storage_bytes(&self) -> usize {
        match self {
            DynamicMatrix::Coo(m) => m.storage_bytes(),
            DynamicMatrix::Csr(m) => m.storage_bytes(),
            DynamicMatrix::Dia(m) => m.storage_bytes(),
            DynamicMatrix::Ell(m) => m.storage_bytes(),
            DynamicMatrix::Hyb(m) => m.storage_bytes(),
            DynamicMatrix::Hdc(m) => m.storage_bytes(),
            DynamicMatrix::Bsr(m) => m.storage_bytes(),
            DynamicMatrix::Bell(m) => m.storage_bytes(),
        }
    }

    /// Extracts a COO copy of the matrix regardless of the active format
    /// (direct row-major export; no triplet buffers, no sort).
    pub fn to_coo(&self) -> CooMatrix<V> {
        match self {
            DynamicMatrix::Coo(m) => m.clone(),
            DynamicMatrix::Csr(m) => csr_to_coo(m),
            DynamicMatrix::Dia(m) => dia_to_coo(m),
            DynamicMatrix::Ell(m) => ell_to_coo(m),
            DynamicMatrix::Hyb(m) => hyb_to_coo(m),
            DynamicMatrix::Hdc(m) => hdc_to_coo(m),
            DynamicMatrix::Bsr(m) => convert::rowmajor_to_coo(m, m.ncols()),
            DynamicMatrix::Bell(m) => convert::rowmajor_to_coo(m, m.ncols()),
        }
    }

    /// Returns a copy of this matrix converted to `target`.
    ///
    /// Fails with [`crate::MorpheusError::ExcessivePadding`] when the target
    /// format would pad beyond `opts.max_fill` — the caller (e.g. the
    /// run-first tuner) should treat that format as non-viable.
    ///
    /// Dispatches to a direct conversion kernel when one exists (source or
    /// target is COO/CSR) and through the COO hub otherwise; see the
    /// [`crate::convert`] module docs. Use
    /// [`DynamicMatrix::to_format_with`] to learn which path ran or to
    /// supply a precomputed [`Analysis`] for planning.
    pub fn to_format(&self, target: FormatId, opts: &ConvertOptions) -> Result<DynamicMatrix<V>> {
        Ok(self.to_format_with(target, opts, None)?.0)
    }

    /// [`DynamicMatrix::to_format`], additionally accepting a shared
    /// [`Analysis`] (so planning performs no extra traversals) and
    /// reporting which conversion path ran and its wall time.
    pub fn to_format_with(
        &self,
        target: FormatId,
        opts: &ConvertOptions,
        analysis: Option<&Analysis>,
    ) -> Result<(DynamicMatrix<V>, ConvertOutcome)> {
        convert::convert_timed(self, target, opts, analysis)
    }

    /// Switches the active format in place. On failure the matrix is left
    /// unchanged.
    pub fn convert_to(&mut self, target: FormatId, opts: &ConvertOptions) -> Result<()> {
        self.convert_to_with(target, opts, None).map(|_| ())
    }

    /// [`DynamicMatrix::convert_to`] with an optional shared [`Analysis`],
    /// reporting the conversion path and wall time. On failure the matrix
    /// is left unchanged.
    pub fn convert_to_with(
        &mut self,
        target: FormatId,
        opts: &ConvertOptions,
        analysis: Option<&Analysis>,
    ) -> Result<ConvertOutcome> {
        if target == self.format_id() {
            return Ok(ConvertOutcome::identity());
        }
        let (converted, outcome) = self.to_format_with(target, opts, analysis)?;
        *self = converted;
        Ok(outcome)
    }

    /// Converts by value, reusing the source's allocations where the
    /// layouts permit instead of cloning.
    ///
    /// COO↔CSR share their column-index and value ordering, so those
    /// conversions move both arrays and only rebuild the row
    /// representation; converting to the current format is a no-op move.
    /// Every other pair falls back to the by-reference path and drops the
    /// source afterwards.
    ///
    /// # Errors
    /// Same conditions as [`DynamicMatrix::to_format`]; the consumed matrix
    /// is dropped on failure.
    pub fn into_format(self, target: FormatId, opts: &ConvertOptions) -> Result<DynamicMatrix<V>> {
        if target == self.format_id() {
            return Ok(self);
        }
        match (self, target) {
            (DynamicMatrix::Coo(a), FormatId::Csr) => {
                Ok(DynamicMatrix::Csr(convert::kernels::coo_into_csr(a)))
            }
            (DynamicMatrix::Csr(a), FormatId::Coo) => {
                Ok(DynamicMatrix::Coo(convert::kernels::csr_into_coo(a)))
            }
            (other, target) => other.to_format(target, opts),
        }
    }

    /// Materialises the matrix densely (small matrices / tests only).
    pub fn to_dense(&self) -> DenseMatrix<V> {
        DenseMatrix::from_coo(&self.to_coo())
    }

    /// A 64-bit fingerprint of the matrix's *sparsity structure* in its
    /// active format: dimensions, format, and the index arrays — values are
    /// not hashed (format selection never depends on them).
    ///
    /// Two matrices with equal fingerprints share their row/column pattern
    /// and active format, hence their [`crate::stats::MatrixStats`] and
    /// feature vector — which is what lets the Oracle's decision cache skip
    /// re-analysis. One cheap streaming pass over the index data; no
    /// conversion, no allocation.
    ///
    /// Prefer reading [`Analysis::structure_hash`] when an analysis of the
    /// matrix already exists — this method re-walks the index arrays (and
    /// records an analysis-class traversal on
    /// [`crate::analysis::passes`]).
    pub fn structure_hash(&self) -> u64 {
        crate::analysis::passes::record_traversal();
        self.structure_hash_raw()
    }

    /// [`DynamicMatrix::structure_hash`] without traversal accounting, for
    /// internal passes that fold the hash into a larger fused walk.
    pub(crate) fn structure_hash_raw(&self) -> u64 {
        let mut h = StructureHasher::new();
        h.word(self.format_id().index() as u64);
        h.word(self.nrows() as u64);
        h.word(self.ncols() as u64);
        h.word(self.nnz() as u64);
        match self {
            DynamicMatrix::Coo(m) => {
                h.words(m.row_indices());
                h.words(m.col_indices());
            }
            DynamicMatrix::Csr(m) => {
                h.words(m.row_offsets());
                h.words(m.col_indices());
            }
            DynamicMatrix::Dia(m) => h.dia(m),
            DynamicMatrix::Ell(m) => {
                // ELL_PAD sentinels appear in `col_indices`, so the padding
                // pattern is covered too.
                h.word(m.width() as u64);
                h.words(m.col_indices());
            }
            DynamicMatrix::Hyb(m) => {
                h.word(m.split_width() as u64);
                h.words(m.ell().col_indices());
                h.words(m.coo().row_indices());
                h.words(m.coo().col_indices());
            }
            DynamicMatrix::Hdc(m) => {
                h.dia(m.dia());
                h.words(m.csr().row_offsets());
                h.words(m.csr().col_indices());
            }
            DynamicMatrix::Bsr(m) => {
                h.word(m.block_r() as u64);
                h.word(m.block_c() as u64);
                h.words(m.block_row_offsets());
                h.words(m.block_cols());
                for &mask in m.masks() {
                    h.word(mask);
                }
            }
            DynamicMatrix::Bell(m) => {
                h.word(m.buckets().len() as u64);
                for bucket in m.buckets() {
                    h.word(bucket.width() as u64);
                    h.words(bucket.rows());
                    // ELL_PAD sentinels cover the padding pattern.
                    h.words(bucket.cols());
                }
            }
        }
        h.finish()
    }

    /// The transpose `Aᵀ`, re-materialised in the same storage format.
    ///
    /// Fails with [`crate::MorpheusError::ExcessivePadding`] when the
    /// transposed pattern no longer fits the active padded format (e.g. an
    /// ELL matrix whose transpose has one dense row).
    pub fn transpose(&self, opts: &ConvertOptions) -> Result<DynamicMatrix<V>> {
        let t = DynamicMatrix::Coo(self.to_coo().transpose());
        t.to_format(self.format_id(), opts)
    }
}

/// FNV-1a-style streaming hasher used by [`DynamicMatrix::structure_hash`].
struct StructureHasher {
    state: u64,
}

impl StructureHasher {
    fn new() -> Self {
        StructureHasher { state: 0xcbf2_9ce4_8422_2325 }
    }

    #[inline]
    fn word(&mut self, w: u64) {
        self.state ^= w;
        self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn words(&mut self, ws: &[usize]) {
        for &w in ws {
            self.word(w as u64);
        }
    }

    /// DIA structure: offsets plus the zero/non-zero pattern of the padded
    /// value array (DIA encodes padding as stored zeros, so the indices
    /// alone do not determine the pattern). Flags are packed 64 per word.
    fn dia<V: Scalar>(&mut self, m: &crate::dia::DiaMatrix<V>) {
        for &off in m.offsets() {
            self.word(off as u64);
        }
        let mut packed = 0u64;
        for (i, &v) in m.values().iter().enumerate() {
            packed = (packed << 1) | u64::from(v != V::ZERO);
            if i % 64 == 63 {
                self.word(packed);
                packed = 0;
            }
        }
        self.word(packed);
    }

    fn finish(&self) -> u64 {
        // One avalanche round so low-entropy inputs spread over all bits.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl<V: Scalar> From<CooMatrix<V>> for DynamicMatrix<V> {
    fn from(m: CooMatrix<V>) -> Self {
        DynamicMatrix::Coo(m)
    }
}

impl<V: Scalar> From<CsrMatrix<V>> for DynamicMatrix<V> {
    fn from(m: CsrMatrix<V>) -> Self {
        DynamicMatrix::Csr(m)
    }
}

impl<V: Scalar> From<DiaMatrix<V>> for DynamicMatrix<V> {
    fn from(m: DiaMatrix<V>) -> Self {
        DynamicMatrix::Dia(m)
    }
}

impl<V: Scalar> From<EllMatrix<V>> for DynamicMatrix<V> {
    fn from(m: EllMatrix<V>) -> Self {
        DynamicMatrix::Ell(m)
    }
}

impl<V: Scalar> From<HybMatrix<V>> for DynamicMatrix<V> {
    fn from(m: HybMatrix<V>) -> Self {
        DynamicMatrix::Hyb(m)
    }
}

impl<V: Scalar> From<HdcMatrix<V>> for DynamicMatrix<V> {
    fn from(m: HdcMatrix<V>) -> Self {
        DynamicMatrix::Hdc(m)
    }
}

impl<V: Scalar> From<BsrMatrix<V>> for DynamicMatrix<V> {
    fn from(m: BsrMatrix<V>) -> Self {
        DynamicMatrix::Bsr(m)
    }
}

impl<V: Scalar> From<BellMatrix<V>> for DynamicMatrix<V> {
    fn from(m: BellMatrix<V>) -> Self {
        DynamicMatrix::Bell(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::ALL_FORMATS;
    use crate::test_util::random_coo;

    #[test]
    fn switch_through_every_format_preserves_entries() {
        let coo = random_coo::<f64>(40, 40, 200, 3);
        let reference = coo.clone();
        let mut m = DynamicMatrix::from(coo);
        let opts = ConvertOptions::default();
        for &f in &ALL_FORMATS {
            m.convert_to(f, &opts).unwrap();
            assert_eq!(m.format_id(), f);
            assert_eq!(m.nnz(), reference.nnz(), "nnz after switch to {f}");
            assert_eq!(m.to_coo(), reference, "entries after switch to {f}");
        }
        // And back to COO.
        m.convert_to(FormatId::Coo, &opts).unwrap();
        assert_eq!(m.to_coo(), reference);
    }

    #[test]
    fn convert_to_same_format_is_noop() {
        let coo = random_coo::<f64>(10, 10, 30, 1);
        let mut m = DynamicMatrix::from(coo.clone());
        m.convert_to(FormatId::Coo, &ConvertOptions::default()).unwrap();
        assert_eq!(m, DynamicMatrix::Coo(coo));
    }

    #[test]
    fn failed_conversion_leaves_matrix_unchanged() {
        // Scatter matrix that cannot fit DIA under a tight fill limit.
        let coo = random_coo::<f64>(2000, 2000, 400, 9);
        let mut m = DynamicMatrix::from(coo.clone());
        let opts = ConvertOptions { max_fill: 1.5, min_padded_allowance: 8, ..Default::default() };
        assert!(m.convert_to(FormatId::Dia, &opts).is_err());
        assert_eq!(m.format_id(), FormatId::Coo);
        assert_eq!(m.to_coo(), coo);
    }

    #[test]
    fn dims_consistent_across_formats() {
        let coo = random_coo::<f64>(31, 17, 120, 5);
        let m = DynamicMatrix::from(coo);
        let opts = ConvertOptions::default();
        for &f in &ALL_FORMATS {
            let converted = m.to_format(f, &opts).unwrap();
            assert_eq!(converted.nrows(), 31);
            assert_eq!(converted.ncols(), 17);
            assert!(converted.storage_bytes() > 0);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let coo = random_coo::<f64>(23, 31, 140, 4);
        let m = DynamicMatrix::from(coo.clone());
        let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };
        for &f in &ALL_FORMATS {
            let converted = m.to_format(f, &opts).unwrap();
            let t = converted.transpose(&opts).unwrap();
            assert_eq!(t.format_id(), f, "transpose keeps the format");
            assert_eq!(t.nrows(), 31);
            assert_eq!(t.ncols(), 23);
            let tt = t.transpose(&opts).unwrap();
            assert_eq!(tt.to_coo(), coo, "double transpose is identity ({f})");
        }
    }

    #[test]
    fn transpose_entries_swap() {
        let coo = CooMatrix::<f64>::from_triplets(2, 3, &[0, 1], &[2, 0], &[5.0, 7.0]).unwrap();
        let t = coo.transpose();
        let entries: Vec<_> = t.iter().collect();
        assert_eq!(entries, vec![(0, 1, 7.0), (2, 0, 5.0)]);
    }

    #[test]
    fn structure_hash_ignores_values_but_sees_structure() {
        let coo = random_coo::<f64>(50, 50, 300, 11);
        let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };
        let m = DynamicMatrix::from(coo.clone());

        // Same structure, different values: same hash.
        let scaled_vals: Vec<f64> = coo.values().iter().map(|v| v * 3.5).collect();
        let scaled = DynamicMatrix::from(
            CooMatrix::from_triplets(50, 50, coo.row_indices(), coo.col_indices(), &scaled_vals).unwrap(),
        );
        assert_eq!(m.structure_hash(), scaled.structure_hash());

        // f32 copy: structure hash is scalar-independent.
        let vals32: Vec<f32> = coo.values().iter().map(|&v| v as f32).collect();
        let m32 = DynamicMatrix::from(
            CooMatrix::from_triplets(50, 50, coo.row_indices(), coo.col_indices(), &vals32).unwrap(),
        );
        assert_eq!(m.structure_hash(), m32.structure_hash());

        // A different pattern: different hash.
        let other = DynamicMatrix::from(random_coo::<f64>(50, 50, 300, 12));
        assert_ne!(m.structure_hash(), other.structure_hash());

        // Each active format hashes differently (the hash covers the
        // representation the cache key describes), deterministically.
        let mut seen = std::collections::HashSet::new();
        for &f in &ALL_FORMATS {
            let converted = m.to_format(f, &opts).unwrap();
            assert_eq!(converted.structure_hash(), converted.structure_hash());
            assert!(seen.insert(converted.structure_hash()), "hash collision for {f}");
        }
    }

    #[test]
    fn into_format_reuses_allocations_for_coo_csr() {
        let coo = random_coo::<f64>(30, 30, 150, 8);
        let vals_ptr = coo.values().as_ptr();
        let cols_ptr = coo.col_indices().as_ptr();
        let opts = ConvertOptions::default();

        let csr = DynamicMatrix::from(coo).into_format(FormatId::Csr, &opts).unwrap();
        let DynamicMatrix::Csr(ref c) = csr else { panic!("expected CSR") };
        assert_eq!(c.values().as_ptr(), vals_ptr, "values buffer must move, not copy");
        assert_eq!(c.col_indices().as_ptr(), cols_ptr, "column buffer must move, not copy");

        let back = csr.into_format(FormatId::Coo, &opts).unwrap();
        let DynamicMatrix::Coo(ref b) = back else { panic!("expected COO") };
        assert_eq!(b.values().as_ptr(), vals_ptr);
        assert_eq!(b.col_indices().as_ptr(), cols_ptr);
    }

    #[test]
    fn into_format_same_format_is_a_move() {
        let coo = random_coo::<f64>(10, 10, 40, 2);
        let ptr = coo.values().as_ptr();
        let m = DynamicMatrix::from(coo).into_format(FormatId::Coo, &ConvertOptions::default()).unwrap();
        let DynamicMatrix::Coo(ref c) = m else { panic!("expected COO") };
        assert_eq!(c.values().as_ptr(), ptr);
    }

    #[test]
    fn into_format_matches_to_format_everywhere() {
        let coo = random_coo::<f64>(40, 35, 260, 4);
        let opts = ConvertOptions { min_padded_allowance: 1 << 20, ..Default::default() };
        let m = DynamicMatrix::from(coo);
        for &f in &ALL_FORMATS {
            let by_ref = m.to_format(f, &opts).unwrap();
            let by_val = m.clone().into_format(f, &opts).unwrap();
            assert_eq!(by_ref, by_val, "{f}");
        }
    }

    #[test]
    fn to_dense_matches_entries() {
        let coo = random_coo::<f64>(12, 9, 40, 2);
        let m = DynamicMatrix::from(coo.clone());
        let d = m.to_dense();
        for (r, c, v) in coo.iter() {
            assert_eq!(d.get(r, c), v);
        }
    }
}
