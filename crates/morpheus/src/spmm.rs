//! Sparse matrix × dense matrix multiplication (SpMM): `Y = A · X` for a
//! block of right-hand sides, on the Serial and the threaded ("OpenMP")
//! backend.
//!
//! The paper notes its "techniques and algorithms ... are transferable to
//! other sparse operations" (§V); SpMM is the first such operation block
//! solvers and eigensolvers need. `X` and `Y` are dense row-major
//! (`ncols x k` and `nrows x k`): every kernel reuses each loaded matrix
//! entry across the `k` right-hand sides, which is exactly why SpMM beats
//! `k` separate SpMVs.
//!
//! The threaded kernels partition output **rows** across workers — each
//! `k`-wide row block of `Y` has exactly one writer, and the per-row
//! accumulation order matches the serial kernels, so threaded results are
//! bitwise identical to serial. Partitions come from a
//! [`crate::plan::ExecPlan`]: [`spmm_threaded`] builds a throwaway plan per
//! call; iterative callers should build the plan once and call
//! [`crate::plan::ExecPlan::spmm`] directly (or go through the Oracle,
//! which caches plans per matrix structure).

use crate::bell::{BellMatrix, BellSegment};
use crate::bsr::BsrMatrix;
use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dia::DiaMatrix;
use crate::dynamic::DynamicMatrix;
use crate::ell::{EllMatrix, ELL_PAD};
use crate::error::MorpheusError;
use crate::hdc::HdcMatrix;
use crate::hyb::HybMatrix;
use crate::plan::ExecPlan;
use crate::scalar::Scalar;
use crate::spmv::ExecPolicy;
use crate::Result;
use morpheus_parallel::{SharedSlice, ThreadPool};
use std::ops::Range;

pub(crate) fn check_spmm_shapes<V: Scalar>(m: &DynamicMatrix<V>, x: &[V], y: &[V], k: usize) -> Result<()> {
    if k == 0 {
        return Err(MorpheusError::ShapeMismatch {
            expected: "k >= 1 right-hand sides".into(),
            got: "k = 0".into(),
        });
    }
    if x.len() != m.ncols() * k || y.len() != m.nrows() * k {
        return Err(MorpheusError::ShapeMismatch {
            expected: format!("x: {}x{k}, y: {}x{k}", m.ncols(), m.nrows()),
            got: format!("x len {}, y len {}", x.len(), y.len()),
        });
    }
    Ok(())
}

/// `Y = A X` under the given execution policy (`x` row-major `ncols x k`,
/// `y` row-major `nrows x k`).
///
/// The threaded policy's [`Schedule`](morpheus_parallel::Schedule) is not
/// consulted: SpMM always runs over plan-style row partitions (static rows,
/// nnz-weighted for CSR, row-aligned entry chunks for COO).
pub fn spmm<V: Scalar>(
    m: &DynamicMatrix<V>,
    x: &[V],
    y: &mut [V],
    k: usize,
    policy: ExecPolicy<'_>,
) -> Result<()> {
    match policy {
        ExecPolicy::Serial => spmm_serial(m, x, y, k),
        ExecPolicy::Threaded { pool, .. } => spmm_threaded(m, x, y, k, pool),
    }
}

/// `Y = A X` on the serial backend.
pub fn spmm_serial<V: Scalar>(m: &DynamicMatrix<V>, x: &[V], y: &mut [V], k: usize) -> Result<()> {
    check_spmm_shapes(m, x, y, k)?;
    match m {
        DynamicMatrix::Coo(a) => spmm_coo(a, x, y, k),
        DynamicMatrix::Csr(a) => spmm_csr(a, x, y, k),
        DynamicMatrix::Dia(a) => spmm_dia(a, x, y, k),
        DynamicMatrix::Ell(a) => spmm_ell(a, x, y, k),
        DynamicMatrix::Hyb(a) => spmm_hyb(a, x, y, k),
        DynamicMatrix::Hdc(a) => spmm_hdc(a, x, y, k),
        DynamicMatrix::Bsr(a) => spmm_bsr(a, x, y, k),
        DynamicMatrix::Bell(a) => spmm_bell(a, x, y, k),
    }
    Ok(())
}

/// `Y = A X` on the threaded backend, bitwise identical to
/// [`spmm_serial`].
///
/// Builds a one-shot [`ExecPlan`] for the partitioning; amortise that cost
/// in iterative loops by holding the plan (or an Oracle session) instead.
pub fn spmm_threaded<V: Scalar>(
    m: &DynamicMatrix<V>,
    x: &[V],
    y: &mut [V],
    k: usize,
    pool: &ThreadPool,
) -> Result<()> {
    ExecPlan::build(m, pool.num_threads(), None).spmm(m, x, y, k, pool)
}

// ---------------------------------------------------------------------------
// Serial kernels
// ---------------------------------------------------------------------------

fn spmm_coo<V: Scalar>(a: &CooMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    y.fill(V::ZERO);
    spmm_coo_acc(a, x, y, k);
}

fn spmm_coo_acc<V: Scalar>(a: &CooMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    for (r, c, v) in a.iter() {
        let xr = &x[c * k..(c + 1) * k];
        let yr = &mut y[r * k..(r + 1) * k];
        for (yo, &xo) in yr.iter_mut().zip(xr) {
            *yo += v * xo;
        }
    }
}

fn spmm_csr<V: Scalar>(a: &CsrMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    for r in 0..a.nrows() {
        let yr = &mut y[r * k..(r + 1) * k];
        yr.fill(V::ZERO);
        for (&c, &v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
            let xr = &x[c * k..(c + 1) * k];
            for (yo, &xo) in yr.iter_mut().zip(xr) {
                *yo += v * xo;
            }
        }
    }
}

fn spmm_csr_acc<V: Scalar>(a: &CsrMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    for r in 0..a.nrows() {
        let yr = &mut y[r * k..(r + 1) * k];
        for (&c, &v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
            let xr = &x[c * k..(c + 1) * k];
            for (yo, &xo) in yr.iter_mut().zip(xr) {
                *yo += v * xo;
            }
        }
    }
}

fn spmm_dia<V: Scalar>(a: &DiaMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    y.fill(V::ZERO);
    spmm_dia_acc(a, x, y, k);
}

fn spmm_dia_acc<V: Scalar>(a: &DiaMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    for d in 0..a.ndiags() {
        let off = a.offsets()[d];
        let diag = a.diagonal(d);
        for i in a.diag_row_range(d) {
            let v = diag[i];
            if v == V::ZERO {
                continue;
            }
            let j = (i as isize + off) as usize;
            let xr = &x[j * k..(j + 1) * k];
            let yr = &mut y[i * k..(i + 1) * k];
            for (yo, &xo) in yr.iter_mut().zip(xr) {
                *yo += v * xo;
            }
        }
    }
}

fn spmm_ell<V: Scalar>(a: &EllMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    y.fill(V::ZERO);
    let nrows = a.nrows();
    for kk in 0..a.width() {
        let base = kk * nrows;
        for i in 0..nrows {
            let c = a.col_indices()[base + i];
            if c == ELL_PAD {
                continue;
            }
            let v = a.values()[base + i];
            let xr = &x[c * k..(c + 1) * k];
            let yr = &mut y[i * k..(i + 1) * k];
            for (yo, &xo) in yr.iter_mut().zip(xr) {
                *yo += v * xo;
            }
        }
    }
}

fn spmm_bsr<V: Scalar>(a: &BsrMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    let (r, c) = (a.block_r(), a.block_c());
    let offs = a.block_row_offsets();
    let bcols = a.block_cols();
    let vals = a.values();
    let (nrows, ncols) = (a.nrows(), a.ncols());
    y.fill(V::ZERO);
    for br in 0..a.nblockrows() {
        let r0 = br * r;
        let rcount = r.min(nrows - r0);
        for b in offs[br]..offs[br + 1] {
            let c0 = bcols[b] * c;
            let ccount = c.min(ncols - c0);
            let bv = &vals[b * r * c..(b + 1) * r * c];
            for rr in 0..rcount {
                let yr = &mut y[(r0 + rr) * k..(r0 + rr + 1) * k];
                for cc in 0..ccount {
                    let v = bv[rr * c + cc];
                    let xr = &x[(c0 + cc) * k..(c0 + cc + 1) * k];
                    for (yo, &xo) in yr.iter_mut().zip(xr) {
                        *yo += v * xo;
                    }
                }
            }
        }
    }
}

fn spmm_bell<V: Scalar>(a: &BellMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    y.fill(V::ZERO);
    for bucket in a.buckets() {
        let rows = bucket.rows();
        let cols = bucket.cols();
        let vals = bucket.vals();
        let len = rows.len();
        for kk in 0..bucket.width() {
            let base = kk * len;
            for j in 0..len {
                let c = cols[base + j];
                if c == ELL_PAD {
                    continue;
                }
                let v = vals[base + j];
                let xr = &x[c * k..(c + 1) * k];
                let yr = &mut y[rows[j] * k..(rows[j] + 1) * k];
                for (yo, &xo) in yr.iter_mut().zip(xr) {
                    *yo += v * xo;
                }
            }
        }
    }
}

fn spmm_hyb<V: Scalar>(a: &HybMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    spmm_ell(a.ell(), x, y, k);
    spmm_coo_acc(a.coo(), x, y, k);
}

fn spmm_hdc<V: Scalar>(a: &HdcMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    spmm_dia(a.dia(), x, y, k);
    spmm_csr_acc(a.csr(), x, y, k);
}

// ---------------------------------------------------------------------------
// Threaded per-range bodies + planned kernels
// ---------------------------------------------------------------------------

/// CSR rows: per-row `k`-block define-or-accumulate, serial accumulation
/// order per row.
///
/// # Safety
/// No concurrent caller may receive an overlapping row range.
#[inline]
unsafe fn csr_rows_mm<V: Scalar, const ACC: bool>(
    a: &CsrMatrix<V>,
    x: &[V],
    out: &SharedSlice<V>,
    k: usize,
    rows: Range<usize>,
) {
    // One bounds-checked view for the whole range; per-row slicing below is
    // ordinary (vectorisable) slice arithmetic, like the serial kernel.
    let ys = out.slice_mut(rows.start * k, rows.len() * k);
    for r in rows.clone() {
        let yr = &mut ys[(r - rows.start) * k..(r - rows.start + 1) * k];
        if !ACC {
            yr.fill(V::ZERO);
        }
        for (&c, &v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
            let xr = &x[c * k..(c + 1) * k];
            for (yo, &xo) in yr.iter_mut().zip(xr) {
                *yo += v * xo;
            }
        }
    }
}

/// COO entries (row-aligned): accumulate each triplet's `k`-block.
///
/// # Safety
/// Concurrent callers' entry ranges must be row-aligned and disjoint.
#[inline]
unsafe fn coo_entries_mm<V: Scalar>(
    a: &CooMatrix<V>,
    x: &[V],
    out: &SharedSlice<V>,
    k: usize,
    entries: Range<usize>,
) {
    let rows = a.row_indices();
    let cols = a.col_indices();
    let vals = a.values();
    if entries.is_empty() {
        return;
    }
    // Entry ranges are row-aligned, so the rows they span are disjoint
    // across ranges: take one view over the spanned rows.
    let row_lo = rows[entries.start];
    let row_hi = rows[entries.end - 1];
    let ys = out.slice_mut(row_lo * k, (row_hi - row_lo + 1) * k);
    let iter = rows[entries.clone()].iter().zip(&cols[entries.clone()]).zip(&vals[entries]);
    for ((&r, &c), &v) in iter {
        let base = (r - row_lo) * k;
        let yr = &mut ys[base..base + k];
        let xr = &x[c * k..(c + 1) * k];
        for (yo, &xo) in yr.iter_mut().zip(xr) {
            *yo += v * xo;
        }
    }
}

/// DIA rows: zero the rows' `k`-blocks, then stream each diagonal's
/// intersection — including the serial kernel's explicit-zero skip, so
/// results stay bitwise identical.
///
/// # Safety
/// No concurrent caller may receive an overlapping row range.
#[inline]
unsafe fn dia_rows_mm<V: Scalar>(
    a: &DiaMatrix<V>,
    x: &[V],
    out: &SharedSlice<V>,
    k: usize,
    rows: Range<usize>,
) {
    let ys = out.slice_mut(rows.start * k, rows.len() * k);
    ys.fill(V::ZERO);
    for d in 0..a.ndiags() {
        let off = a.offsets()[d];
        let diag = a.diagonal(d);
        let dr = a.diag_row_range(d);
        let lo = rows.start.max(dr.start);
        let hi = rows.end.min(dr.end);
        for (i, &v) in diag.iter().enumerate().take(hi).skip(lo) {
            if v == V::ZERO {
                continue;
            }
            let j = (i as isize + off) as usize;
            let xr = &x[j * k..(j + 1) * k];
            let base = (i - rows.start) * k;
            let yr = &mut ys[base..base + k];
            for (yo, &xo) in yr.iter_mut().zip(xr) {
                *yo += v * xo;
            }
        }
    }
}

/// ELL rows: zero the rows' `k`-blocks, then walk the slabs.
///
/// # Safety
/// No concurrent caller may receive an overlapping row range.
#[inline]
unsafe fn ell_rows_mm<V: Scalar>(
    a: &EllMatrix<V>,
    x: &[V],
    out: &SharedSlice<V>,
    k: usize,
    rows: Range<usize>,
) {
    let nrows = a.nrows();
    let ys = out.slice_mut(rows.start * k, rows.len() * k);
    ys.fill(V::ZERO);
    for kk in 0..a.width() {
        let base = kk * nrows;
        for i in rows.clone() {
            let c = a.col_indices()[base + i];
            if c == ELL_PAD {
                continue;
            }
            let v = a.values()[base + i];
            let xr = &x[c * k..(c + 1) * k];
            let ybase = (i - rows.start) * k;
            let yr = &mut ys[ybase..ybase + k];
            for (yo, &xo) in yr.iter_mut().zip(xr) {
                *yo += v * xo;
            }
        }
    }
}

pub(crate) fn spmm_csr_ranges<V: Scalar, const ACC: bool>(
    a: &CsrMatrix<V>,
    x: &[V],
    y: &mut [V],
    k: usize,
    pool: &ThreadPool,
    rows: &[Range<usize>],
) {
    let out = SharedSlice::new(y);
    pool.parallel_for_plan(rows, |_p, r| {
        // SAFETY: plan row ranges tile the rows disjointly.
        unsafe { csr_rows_mm::<V, ACC>(a, x, &out, k, r) };
    });
}

pub(crate) fn spmm_coo_ranges<V: Scalar>(
    a: &CooMatrix<V>,
    x: &[V],
    y: &mut [V],
    k: usize,
    pool: &ThreadPool,
    entries: &[Range<usize>],
) {
    crate::spmv::threaded::parallel_fill_zero(y, pool);
    spmm_coo_acc_ranges(a, x, y, k, pool, entries);
}

pub(crate) fn spmm_coo_acc_ranges<V: Scalar>(
    a: &CooMatrix<V>,
    x: &[V],
    y: &mut [V],
    k: usize,
    pool: &ThreadPool,
    entries: &[Range<usize>],
) {
    let out = SharedSlice::new(y);
    pool.parallel_for_plan(entries, |_p, r| {
        // SAFETY: plan entry ranges are row-aligned and disjoint.
        unsafe { coo_entries_mm(a, x, &out, k, r) };
    });
}

pub(crate) fn spmm_dia_ranges<V: Scalar>(
    a: &DiaMatrix<V>,
    x: &[V],
    y: &mut [V],
    k: usize,
    pool: &ThreadPool,
    rows: &[Range<usize>],
) {
    let out = SharedSlice::new(y);
    pool.parallel_for_plan(rows, |_p, r| {
        // SAFETY: plan row ranges tile the rows disjointly.
        unsafe { dia_rows_mm(a, x, &out, k, r) };
    });
}

/// BSR block rows: zero the covered rows' `k`-blocks, then accumulate the
/// dense blocks — same per-row order as [`spmm_bsr`], bitwise identical.
///
/// # Safety
/// No concurrent caller may receive an overlapping block-row range.
#[inline]
unsafe fn bsr_block_rows_mm<V: Scalar>(
    a: &BsrMatrix<V>,
    x: &[V],
    out: &SharedSlice<V>,
    k: usize,
    brows: Range<usize>,
) {
    let (r, c) = (a.block_r(), a.block_c());
    let offs = a.block_row_offsets();
    let bcols = a.block_cols();
    let vals = a.values();
    let (nrows, ncols) = (a.nrows(), a.ncols());
    if brows.is_empty() {
        return;
    }
    let row_lo = brows.start * r;
    let row_hi = (brows.end * r).min(nrows);
    let ys = out.slice_mut(row_lo * k, (row_hi - row_lo) * k);
    ys.fill(V::ZERO);
    for br in brows {
        let r0 = br * r;
        let rcount = r.min(nrows - r0);
        for b in offs[br]..offs[br + 1] {
            let c0 = bcols[b] * c;
            let ccount = c.min(ncols - c0);
            let bv = &vals[b * r * c..(b + 1) * r * c];
            for rr in 0..rcount {
                let ybase = (r0 + rr - row_lo) * k;
                let yr = &mut ys[ybase..ybase + k];
                for cc in 0..ccount {
                    let v = bv[rr * c + cc];
                    let xr = &x[(c0 + cc) * k..(c0 + cc + 1) * k];
                    for (yo, &xo) in yr.iter_mut().zip(xr) {
                        *yo += v * xo;
                    }
                }
            }
        }
    }
}

/// One BELL segment: accumulate the bucket slab's `k`-blocks over the span
/// (output pre-zeroed by the caller) — same per-row `kk`-ascending order as
/// [`spmm_bell`], bitwise identical.
///
/// # Safety
/// Concurrent callers' segments must be disjoint.
#[inline]
unsafe fn bell_segment_mm<V: Scalar>(
    a: &BellMatrix<V>,
    x: &[V],
    out: &SharedSlice<V>,
    k: usize,
    seg: &BellSegment,
) {
    let bucket = &a.buckets()[seg.bucket];
    let rows = bucket.rows();
    let cols = bucket.cols();
    let vals = bucket.vals();
    let len = rows.len();
    for kk in 0..bucket.width() {
        let base = kk * len;
        for j in seg.span.clone() {
            let c = cols[base + j];
            if c == ELL_PAD {
                continue;
            }
            let v = vals[base + j];
            let xr = &x[c * k..(c + 1) * k];
            let yr = out.slice_mut(rows[j] * k, k);
            for (yo, &xo) in yr.iter_mut().zip(xr) {
                *yo += v * xo;
            }
        }
    }
}

pub(crate) fn spmm_bsr_ranges<V: Scalar>(
    a: &BsrMatrix<V>,
    x: &[V],
    y: &mut [V],
    k: usize,
    pool: &ThreadPool,
    brows: &[Range<usize>],
) {
    let out = SharedSlice::new(y);
    pool.parallel_for_plan(brows, |_p, r| {
        // SAFETY: plan block-row ranges tile the block rows disjointly.
        unsafe { bsr_block_rows_mm(a, x, &out, k, r) };
    });
}

pub(crate) fn spmm_bell_ranges<V: Scalar>(
    a: &BellMatrix<V>,
    x: &[V],
    y: &mut [V],
    k: usize,
    pool: &ThreadPool,
    segs: &[BellSegment],
) {
    crate::spmv::threaded::parallel_fill_zero(y, pool);
    let out = SharedSlice::new(y);
    let units: Vec<Range<usize>> = (0..segs.len()).map(|i| i..i + 1).collect();
    pool.parallel_for_plan(&units, |p, _r| {
        // SAFETY: segments are disjoint (see `BellMatrix::segments`).
        unsafe { bell_segment_mm(a, x, &out, k, &segs[p]) };
    });
}

pub(crate) fn spmm_ell_ranges<V: Scalar>(
    a: &EllMatrix<V>,
    x: &[V],
    y: &mut [V],
    k: usize,
    pool: &ThreadPool,
    rows: &[Range<usize>],
) {
    let out = SharedSlice::new(y);
    pool.parallel_for_plan(rows, |_p, r| {
        // SAFETY: plan row ranges tile the rows disjointly.
        unsafe { ell_rows_mm(a, x, &out, k, r) };
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ConvertOptions;
    use crate::format::ALL_FORMATS;
    use crate::spmv::spmv_serial;
    use crate::test_util::random_coo;

    /// SpMM must equal k column-by-column SpMVs, in every format.
    #[test]
    fn spmm_matches_repeated_spmv() {
        let k = 3usize;
        for seed in 0..3u64 {
            let coo = random_coo::<f64>(35, 28, 250, seed);
            let base = DynamicMatrix::from(coo);
            let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };

            // Row-major X: ncols x k.
            let x_block: Vec<f64> = (0..base.ncols() * k).map(|i| ((i * 29 + 3) % 17) as f64 - 8.0).collect();

            // Reference via SpMV on each extracted column.
            let mut expect = vec![0.0f64; base.nrows() * k];
            for col in 0..k {
                let x_col: Vec<f64> = (0..base.ncols()).map(|i| x_block[i * k + col]).collect();
                let mut y_col = vec![0.0f64; base.nrows()];
                spmv_serial(&base, &x_col, &mut y_col).unwrap();
                for i in 0..base.nrows() {
                    expect[i * k + col] = y_col[i];
                }
            }

            for &fmt in &ALL_FORMATS {
                let m = base.to_format(fmt, &opts).unwrap();
                let mut y = vec![f64::NAN; base.nrows() * k];
                spmm_serial(&m, &x_block, &mut y, k).unwrap();
                for i in 0..y.len() {
                    let scale = 1.0 + expect[i].abs();
                    assert!(
                        (y[i] - expect[i]).abs() < 1e-10 * scale,
                        "{fmt} seed {seed} slot {i}: {} vs {}",
                        y[i],
                        expect[i]
                    );
                }
            }
        }
    }

    #[test]
    fn spmm_k1_matches_spmv() {
        let coo = random_coo::<f64>(20, 20, 80, 9);
        let m = DynamicMatrix::from(coo);
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut y_mv = vec![0.0; 20];
        spmv_serial(&m, &x, &mut y_mv).unwrap();
        let mut y_mm = vec![0.0; 20];
        spmm_serial(&m, &x, &mut y_mm, 1).unwrap();
        assert_eq!(y_mv, y_mm);
    }

    #[test]
    fn spmm_rejects_bad_shapes() {
        let m = DynamicMatrix::from(random_coo::<f64>(10, 10, 20, 1));
        let x = vec![0.0; 10 * 2];
        let mut y = vec![0.0; 10 * 2];
        assert!(spmm_serial(&m, &x, &mut y, 0).is_err());
        assert!(spmm_serial(&m, &x, &mut y, 3).is_err());
        let mut y_short = vec![0.0; 5];
        assert!(spmm_serial(&m, &x, &mut y_short, 2).is_err());
    }

    /// Threaded SpMM must be *bitwise* identical to serial in every format
    /// (same per-row accumulation order).
    #[test]
    fn threaded_spmm_is_bitwise_identical_to_serial() {
        let pool = ThreadPool::new(4);
        let k = 5usize;
        for seed in 0..3u64 {
            let coo = random_coo::<f64>(90, 70, 900, seed + 20);
            let base = DynamicMatrix::from(coo);
            let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };
            let x: Vec<f64> =
                (0..base.ncols() * k).map(|i| ((i * 13 + 1) % 23) as f64 * 0.25 - 2.0).collect();
            for &fmt in &ALL_FORMATS {
                let m = base.to_format(fmt, &opts).unwrap();
                let mut ys = vec![0.0; base.nrows() * k];
                spmm_serial(&m, &x, &mut ys, k).unwrap();
                let mut yt = vec![f64::NAN; base.nrows() * k];
                spmm_threaded(&m, &x, &mut yt, k, &pool).unwrap();
                let same = ys.iter().zip(&yt).all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "{fmt} seed {seed}: threaded SpMM diverged from serial");
            }
        }
    }

    #[test]
    fn spmm_policy_dispatch() {
        let pool = ThreadPool::new(2);
        let m = DynamicMatrix::from(random_coo::<f64>(25, 25, 120, 2));
        let k = 4usize;
        let x = vec![1.5; 25 * k];
        let mut y1 = vec![0.0; 25 * k];
        let mut y2 = vec![0.0; 25 * k];
        spmm(&m, &x, &mut y1, k, ExecPolicy::Serial).unwrap();
        spmm(
            &m,
            &x,
            &mut y2,
            k,
            ExecPolicy::Threaded { pool: &pool, schedule: morpheus_parallel::Schedule::default() },
        )
        .unwrap();
        assert_eq!(y1, y2);
    }
}
