//! Sparse matrix × dense matrix multiplication (SpMM): `Y = A · X` for a
//! block of right-hand sides.
//!
//! The paper notes its "techniques and algorithms ... are transferable to
//! other sparse operations" (§V); SpMM is the first such operation block
//! solvers and eigensolvers need. `X` and `Y` are dense row-major
//! (`ncols x k` and `nrows x k`): every kernel reuses each loaded matrix
//! entry across the `k` right-hand sides, which is exactly why SpMM beats
//! `k` separate SpMVs.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::dia::DiaMatrix;
use crate::dynamic::DynamicMatrix;
use crate::ell::{EllMatrix, ELL_PAD};
use crate::error::MorpheusError;
use crate::hdc::HdcMatrix;
use crate::hyb::HybMatrix;
use crate::scalar::Scalar;
use crate::Result;

/// `Y = A X` with `X` row-major `ncols x k`, `Y` row-major `nrows x k`.
pub fn spmm_serial<V: Scalar>(m: &DynamicMatrix<V>, x: &[V], y: &mut [V], k: usize) -> Result<()> {
    if k == 0 {
        return Err(MorpheusError::ShapeMismatch {
            expected: "k >= 1 right-hand sides".into(),
            got: "k = 0".into(),
        });
    }
    if x.len() != m.ncols() * k || y.len() != m.nrows() * k {
        return Err(MorpheusError::ShapeMismatch {
            expected: format!("x: {}x{k}, y: {}x{k}", m.ncols(), m.nrows()),
            got: format!("x len {}, y len {}", x.len(), y.len()),
        });
    }
    match m {
        DynamicMatrix::Coo(a) => spmm_coo(a, x, y, k),
        DynamicMatrix::Csr(a) => spmm_csr(a, x, y, k),
        DynamicMatrix::Dia(a) => spmm_dia(a, x, y, k),
        DynamicMatrix::Ell(a) => spmm_ell(a, x, y, k),
        DynamicMatrix::Hyb(a) => spmm_hyb(a, x, y, k),
        DynamicMatrix::Hdc(a) => spmm_hdc(a, x, y, k),
    }
    Ok(())
}

fn spmm_coo<V: Scalar>(a: &CooMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    y.fill(V::ZERO);
    spmm_coo_acc(a, x, y, k);
}

fn spmm_coo_acc<V: Scalar>(a: &CooMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    for (r, c, v) in a.iter() {
        let xr = &x[c * k..(c + 1) * k];
        let yr = &mut y[r * k..(r + 1) * k];
        for (yo, &xo) in yr.iter_mut().zip(xr) {
            *yo += v * xo;
        }
    }
}

fn spmm_csr<V: Scalar>(a: &CsrMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    for r in 0..a.nrows() {
        let yr = &mut y[r * k..(r + 1) * k];
        yr.fill(V::ZERO);
        for (&c, &v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
            let xr = &x[c * k..(c + 1) * k];
            for (yo, &xo) in yr.iter_mut().zip(xr) {
                *yo += v * xo;
            }
        }
    }
}

fn spmm_csr_acc<V: Scalar>(a: &CsrMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    for r in 0..a.nrows() {
        let yr = &mut y[r * k..(r + 1) * k];
        for (&c, &v) in a.row_cols(r).iter().zip(a.row_vals(r)) {
            let xr = &x[c * k..(c + 1) * k];
            for (yo, &xo) in yr.iter_mut().zip(xr) {
                *yo += v * xo;
            }
        }
    }
}

fn spmm_dia<V: Scalar>(a: &DiaMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    y.fill(V::ZERO);
    spmm_dia_acc(a, x, y, k);
}

fn spmm_dia_acc<V: Scalar>(a: &DiaMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    for d in 0..a.ndiags() {
        let off = a.offsets()[d];
        let diag = a.diagonal(d);
        for i in a.diag_row_range(d) {
            let v = diag[i];
            if v == V::ZERO {
                continue;
            }
            let j = (i as isize + off) as usize;
            let xr = &x[j * k..(j + 1) * k];
            let yr = &mut y[i * k..(i + 1) * k];
            for (yo, &xo) in yr.iter_mut().zip(xr) {
                *yo += v * xo;
            }
        }
    }
}

fn spmm_ell<V: Scalar>(a: &EllMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    y.fill(V::ZERO);
    let nrows = a.nrows();
    for kk in 0..a.width() {
        let base = kk * nrows;
        for i in 0..nrows {
            let c = a.col_indices()[base + i];
            if c == ELL_PAD {
                continue;
            }
            let v = a.values()[base + i];
            let xr = &x[c * k..(c + 1) * k];
            let yr = &mut y[i * k..(i + 1) * k];
            for (yo, &xo) in yr.iter_mut().zip(xr) {
                *yo += v * xo;
            }
        }
    }
}

fn spmm_hyb<V: Scalar>(a: &HybMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    spmm_ell(a.ell(), x, y, k);
    spmm_coo_acc(a.coo(), x, y, k);
}

fn spmm_hdc<V: Scalar>(a: &HdcMatrix<V>, x: &[V], y: &mut [V], k: usize) {
    spmm_dia(a.dia(), x, y, k);
    spmm_csr_acc(a.csr(), x, y, k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ConvertOptions;
    use crate::format::ALL_FORMATS;
    use crate::spmv::spmv_serial;
    use crate::test_util::random_coo;

    /// SpMM must equal k column-by-column SpMVs, in every format.
    #[test]
    fn spmm_matches_repeated_spmv() {
        let k = 3usize;
        for seed in 0..3u64 {
            let coo = random_coo::<f64>(35, 28, 250, seed);
            let base = DynamicMatrix::from(coo);
            let opts = ConvertOptions { min_padded_allowance: 1 << 22, ..Default::default() };

            // Row-major X: ncols x k.
            let x_block: Vec<f64> = (0..base.ncols() * k).map(|i| ((i * 29 + 3) % 17) as f64 - 8.0).collect();

            // Reference via SpMV on each extracted column.
            let mut expect = vec![0.0f64; base.nrows() * k];
            for col in 0..k {
                let x_col: Vec<f64> = (0..base.ncols()).map(|i| x_block[i * k + col]).collect();
                let mut y_col = vec![0.0f64; base.nrows()];
                spmv_serial(&base, &x_col, &mut y_col).unwrap();
                for i in 0..base.nrows() {
                    expect[i * k + col] = y_col[i];
                }
            }

            for &fmt in &ALL_FORMATS {
                let m = base.to_format(fmt, &opts).unwrap();
                let mut y = vec![f64::NAN; base.nrows() * k];
                spmm_serial(&m, &x_block, &mut y, k).unwrap();
                for i in 0..y.len() {
                    let scale = 1.0 + expect[i].abs();
                    assert!(
                        (y[i] - expect[i]).abs() < 1e-10 * scale,
                        "{fmt} seed {seed} slot {i}: {} vs {}",
                        y[i],
                        expect[i]
                    );
                }
            }
        }
    }

    #[test]
    fn spmm_k1_matches_spmv() {
        let coo = random_coo::<f64>(20, 20, 80, 9);
        let m = DynamicMatrix::from(coo);
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut y_mv = vec![0.0; 20];
        spmv_serial(&m, &x, &mut y_mv).unwrap();
        let mut y_mm = vec![0.0; 20];
        spmm_serial(&m, &x, &mut y_mm, 1).unwrap();
        assert_eq!(y_mv, y_mm);
    }

    #[test]
    fn spmm_rejects_bad_shapes() {
        let m = DynamicMatrix::from(random_coo::<f64>(10, 10, 20, 1));
        let x = vec![0.0; 10 * 2];
        let mut y = vec![0.0; 10 * 2];
        assert!(spmm_serial(&m, &x, &mut y, 0).is_err());
        assert!(spmm_serial(&m, &x, &mut y, 3).is_err());
        let mut y_short = vec![0.0; 5];
        assert!(spmm_serial(&m, &x, &mut y_short, 2).is_err());
    }
}
