//! Morpheus: sparse matrix storage formats with runtime format switching.
//!
//! This crate reproduces the substrate the paper builds on (§II-B/§II-C): the
//! six storage formats considered by Morpheus-Oracle —
//!
//! * [`CooMatrix`] — Coordinate (general purpose),
//! * [`CsrMatrix`] — Compressed Sparse Row (general purpose, the default),
//! * [`DiaMatrix`] — Diagonal (regular, banded patterns),
//! * [`EllMatrix`] — ELLPACK (structured / semi-structured rows),
//! * [`HybMatrix`] — Hybrid ELL + COO,
//! * [`HdcMatrix`] — Hybrid DIA + CSR,
//!
//! a runtime-switchable container ([`DynamicMatrix`]) abstracting them behind
//! a single interface, conversions between every pair of formats, serial and
//! multithreaded SpMV kernels for each format, single-pass per-format matrix
//! statistics (feeding the Oracle's feature extraction, §VI-C), and
//! MatrixMarket I/O for interoperability with the SuiteSparse collection.
//!
//! # Quickstart
//! ```
//! use morpheus::{CooMatrix, DynamicMatrix, FormatId, ConvertOptions};
//!
//! // 4x4 tridiagonal matrix.
//! let coo = CooMatrix::<f64>::from_triplets(
//!     4, 4,
//!     &[0, 0, 1, 1, 1, 2, 2, 2, 3, 3],
//!     &[0, 1, 0, 1, 2, 1, 2, 3, 2, 3],
//!     &[2., -1., -1., 2., -1., -1., 2., -1., -1., 2.],
//! ).unwrap();
//! let mut dyn_mat = DynamicMatrix::from(coo);
//!
//! // Switch to DIA at runtime — this matrix is banded, so DIA fits well.
//! dyn_mat.convert_to(FormatId::Dia, &ConvertOptions::default()).unwrap();
//! assert_eq!(dyn_mat.format_id(), FormatId::Dia);
//!
//! let x = vec![1.0; 4];
//! let mut y = vec![0.0; 4];
//! morpheus::spmv::spmv_serial(&dyn_mat, &x, &mut y).unwrap();
//! assert_eq!(y, vec![1.0, 0.0, 0.0, 1.0]);
//! ```

pub mod analysis;
pub mod bell;
pub mod bsr;
pub mod builder;
pub mod convert;
pub mod coo;
pub mod csr;
pub mod dense;
pub mod dia;
pub mod dynamic;
pub mod ell;
pub mod error;
pub mod format;
pub mod hdc;
pub mod hyb;
pub mod io;
pub mod params;
pub mod partition;
pub mod plan;
pub mod registry;
pub mod rowmajor;
pub mod scalar;
pub mod spmm;
pub mod spmv;
pub mod stats;
pub mod vecops;

pub use analysis::Analysis;
pub use bell::{BellBucket, BellMatrix};
pub use bsr::{BsrMatrix, BSR_BLOCK_DIMS};
pub use builder::CooBuilder;
pub use convert::{convert_via_hub, ConvertOptions, ConvertOutcome, ConvertPath};
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use dia::DiaMatrix;
pub use dynamic::DynamicMatrix;
pub use ell::{EllMatrix, ELL_PAD};
pub use error::MorpheusError;
pub use format::FormatId;
pub use hdc::HdcMatrix;
pub use hyb::{HybMatrix, HybSplit};
pub use params::{FormatParams, MAX_BELL_WIDTHS};
pub use partition::{Partition, PartitionConfig, PartitionedMatrix, Shard, StreamingPartitioner};
pub use plan::{BatchWorkspace, ExecPlan, Workspace};
pub use registry::{FormatEntry, FormatTraits, StructuralSummary};
pub use rowmajor::for_each_entry_row_major;
pub use scalar::Scalar;
pub use spmv::variant::{Bottleneck, CpuFeatures, KernelVariant, ALL_VARIANTS};
pub use stats::MatrixStats;

/// Crate-wide `Result` alias.
pub type Result<T> = std::result::Result<T, MorpheusError>;

#[cfg(test)]
pub(crate) mod test_util {
    use crate::{CooMatrix, Scalar};

    /// Small deterministic pseudo-random COO matrix for tests (SplitMix64).
    pub fn random_coo<V: Scalar>(nrows: usize, ncols: usize, nnz_target: usize, seed: u64) -> CooMatrix<V> {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut triplets = std::collections::BTreeMap::new();
        for _ in 0..nnz_target {
            let r = (next() % nrows.max(1) as u64) as usize;
            let c = (next() % ncols.max(1) as u64) as usize;
            let v = ((next() % 1000) as f64 - 500.0) / 100.0;
            let v = if v == 0.0 { 1.0 } else { v };
            triplets.insert((r, c), V::from_f64(v));
        }
        let rows: Vec<usize> = triplets.keys().map(|&(r, _)| r).collect();
        let cols: Vec<usize> = triplets.keys().map(|&(_, c)| c).collect();
        let vals: Vec<V> = triplets.values().copied().collect();
        CooMatrix::from_triplets(nrows, ncols, &rows, &cols, &vals).unwrap()
    }
}
