//! Incremental COO construction.

use crate::coo::CooMatrix;
use crate::error::MorpheusError;
use crate::scalar::Scalar;
use crate::Result;

/// Incremental builder for [`CooMatrix`].
///
/// Entries may be pushed in any order; duplicates are summed on
/// [`CooBuilder::build`] (the assembly convention of FEM codes and the
/// MatrixMarket reader).
#[derive(Debug, Clone)]
pub struct CooBuilder<V> {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<V>,
}

impl<V: Scalar> CooBuilder<V> {
    /// A builder for a matrix of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooBuilder { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Pre-allocates space for `n` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, n: usize) -> Self {
        CooBuilder {
            nrows,
            ncols,
            rows: Vec::with_capacity(n),
            cols: Vec::with_capacity(n),
            vals: Vec::with_capacity(n),
        }
    }

    /// Queues an entry. Bounds are checked immediately.
    pub fn push(&mut self, row: usize, col: usize, value: V) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(MorpheusError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.nrows, self.ncols),
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
        Ok(())
    }

    /// Number of queued entries (before duplicate merging).
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// `true` if no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Finalises into a sorted, duplicate-merged [`CooMatrix`].
    pub fn build(self) -> CooMatrix<V> {
        CooMatrix::from_triplets(self.nrows, self.ncols, &self.rows, &self.cols, &self.vals)
            .expect("builder entries are pre-validated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_merged() {
        let mut b = CooBuilder::<f64>::new(3, 3);
        b.push(2, 2, 1.0).unwrap();
        b.push(0, 0, 2.0).unwrap();
        b.push(2, 2, 3.0).unwrap();
        assert_eq!(b.len(), 3);
        let m = b.build();
        assert_eq!(m.nnz(), 2);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0, 2.0), (2, 2, 4.0)]);
    }

    #[test]
    fn rejects_out_of_bounds_immediately() {
        let mut b = CooBuilder::<f64>::new(2, 2);
        assert!(b.push(2, 0, 1.0).is_err());
        assert!(b.push(0, 2, 1.0).is_err());
        assert!(b.is_empty());
    }

    #[test]
    fn with_capacity_builds_empty() {
        let b = CooBuilder::<f64>::with_capacity(4, 4, 16);
        let m = b.build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.nrows(), 4);
    }
}
