//! ELLPACK (ELL) format.

use crate::error::MorpheusError;
use crate::format::FormatId;
use crate::scalar::Scalar;
use crate::Result;

/// Sentinel column index marking a padding slot in [`EllMatrix`].
pub const ELL_PAD: usize = usize::MAX;

/// ELLPACK-format sparse matrix (§II-B).
///
/// Assumes at most `width` (the paper's *K*) non-zeros per row and stores a
/// dense `nrows x width` array of values plus one of column indices. Rows
/// shorter than `width` are padded with [`ELL_PAD`] / zero.
///
/// Layout: **column-major** (`values[k * nrows + i]` is the `k`-th entry of
/// row `i`), matching GPU implementations where consecutive threads reading
/// consecutive rows produce coalesced accesses — the property the machine
/// model's SIMT simulator measures.
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix<V> {
    nrows: usize,
    ncols: usize,
    width: usize,
    col_indices: Vec<usize>,
    values: Vec<V>,
    nnz: usize,
}

impl<V: Scalar> EllMatrix<V> {
    /// An empty matrix of the given shape (width 0).
    pub fn new(nrows: usize, ncols: usize) -> Self {
        EllMatrix { nrows, ncols, width: 0, col_indices: Vec::new(), values: Vec::new(), nnz: 0 }
    }

    /// Builds from raw parts, validating the layout.
    ///
    /// In every row, real entries must carry strictly increasing in-range
    /// column indices and padding slots ([`ELL_PAD`]) must only appear after
    /// all real entries of the row.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        width: usize,
        col_indices: Vec<usize>,
        values: Vec<V>,
    ) -> Result<Self> {
        if col_indices.len() != nrows * width || values.len() != nrows * width {
            return Err(MorpheusError::InvalidStructure(format!(
                "ELL arrays must have length nrows * width = {}, got cols={} vals={}",
                nrows * width,
                col_indices.len(),
                values.len()
            )));
        }
        let mut nnz = 0usize;
        for i in 0..nrows {
            let mut prev: Option<usize> = None;
            let mut padded = false;
            for k in 0..width {
                let c = col_indices[k * nrows + i];
                if c == ELL_PAD {
                    padded = true;
                    continue;
                }
                if padded {
                    return Err(MorpheusError::InvalidStructure(format!(
                        "row {i}: real entry after padding slot"
                    )));
                }
                if c >= ncols {
                    return Err(MorpheusError::IndexOutOfBounds { index: (i, c), shape: (nrows, ncols) });
                }
                if let Some(p) = prev {
                    if p >= c {
                        return Err(MorpheusError::InvalidStructure(format!(
                            "row {i}: columns not strictly increasing"
                        )));
                    }
                }
                prev = Some(c);
                nnz += 1;
            }
        }
        Ok(EllMatrix { nrows, ncols, width, col_indices, values, nnz })
    }

    /// Builds from raw slabs the caller guarantees are valid, with a known
    /// structural-entry count (conversion kernels produce both correct by
    /// construction). Debug builds run the full [`EllMatrix::from_parts`]
    /// validation and verify `nnz`; release builds skip the O(nrows×width)
    /// re-validation pass.
    pub(crate) fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        width: usize,
        col_indices: Vec<usize>,
        values: Vec<V>,
        nnz: usize,
    ) -> Self {
        #[cfg(debug_assertions)]
        {
            let m = Self::from_parts(nrows, ncols, width, col_indices, values)
                .expect("conversion kernel produced invalid ELL");
            assert_eq!(m.nnz, nnz, "conversion kernel miscounted ELL entries");
            m
        }
        #[cfg(not(debug_assertions))]
        {
            EllMatrix { nrows, ncols, width, col_indices, values, nnz }
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Structural non-zeros (excludes padding).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Format identifier ([`FormatId::Ell`]).
    #[inline]
    pub fn format_id(&self) -> FormatId {
        FormatId::Ell
    }

    /// The fixed per-row entry budget (the paper's *K*).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Column-major column index array (`width * nrows`), [`ELL_PAD`] marks padding.
    #[inline]
    pub fn col_indices(&self) -> &[usize] {
        &self.col_indices
    }

    /// Column-major value array (`width * nrows`).
    #[inline]
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Entry `(row, k)` as `(col, value)`, or `None` if it is padding.
    #[inline]
    pub fn entry(&self, row: usize, k: usize) -> Option<(usize, V)> {
        let idx = k * self.nrows + row;
        let c = self.col_indices[idx];
        (c != ELL_PAD).then(|| (c, self.values[idx]))
    }

    /// Total allocated slots including padding (`width * nrows`).
    #[inline]
    pub fn padded_len(&self) -> usize {
        self.values.len()
    }

    /// Bytes of heap storage the format occupies.
    pub fn storage_bytes(&self) -> usize {
        self.col_indices.len() * std::mem::size_of::<usize>() + self.values.len() * std::mem::size_of::<V>()
    }

    /// Consumes the matrix, returning `(nrows, ncols, width, cols, values)`.
    pub fn into_parts(self) -> (usize, usize, usize, Vec<usize>, Vec<V>) {
        (self.nrows, self.ncols, self.width, self.col_indices, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EllMatrix<f64> {
        // [1 2 0]
        // [0 3 0]
        // [4 0 5]
        // width = 2, column-major slots: k=0 -> [0,1,0], k=1 -> [1,PAD,2]
        let cols = vec![0, 1, 0, 1, ELL_PAD, 2];
        let vals = vec![1.0, 3.0, 4.0, 2.0, 0.0, 5.0];
        EllMatrix::from_parts(3, 3, 2, cols, vals).unwrap()
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.width(), 2);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.padded_len(), 6);
        assert_eq!(m.entry(0, 0), Some((0, 1.0)));
        assert_eq!(m.entry(0, 1), Some((1, 2.0)));
        assert_eq!(m.entry(1, 1), None);
        assert_eq!(m.entry(2, 1), Some((2, 5.0)));
    }

    #[test]
    fn rejects_wrong_lengths() {
        assert!(EllMatrix::<f64>::from_parts(2, 2, 2, vec![0; 3], vec![0.0; 4]).is_err());
        assert!(EllMatrix::<f64>::from_parts(2, 2, 2, vec![0; 4], vec![0.0; 3]).is_err());
    }

    #[test]
    fn rejects_entry_after_padding() {
        // Row 0: k=0 is PAD, k=1 is a real entry -> invalid.
        let cols = vec![ELL_PAD, 0, 1, 1];
        let vals = vec![0.0, 1.0, 2.0, 3.0];
        assert!(EllMatrix::<f64>::from_parts(2, 2, 2, cols, vals).is_err());
    }

    #[test]
    fn rejects_unsorted_row() {
        let cols = vec![1, 0, 0, 1];
        let vals = vec![1.0, 2.0, 3.0, 4.0];
        assert!(EllMatrix::<f64>::from_parts(2, 2, 2, cols, vals).is_err());
    }

    #[test]
    fn rejects_out_of_range_column() {
        let cols = vec![0, 5];
        let vals = vec![1.0, 2.0];
        assert!(EllMatrix::<f64>::from_parts(2, 2, 1, cols, vals).is_err());
    }

    #[test]
    fn zero_width() {
        let m = EllMatrix::<f64>::new(3, 3);
        assert_eq!(m.width(), 0);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.padded_len(), 0);
    }
}
