//! Storage format identifiers.

/// Identifier of a sparse matrix storage format.
///
/// The numeric discriminants are the *format IDs* the ML models are trained
/// to predict (Equation 1 of the paper maps feature vectors to
/// `{COO, CSR, ..., HDC}`); they are stable and part of the model-file
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum FormatId {
    /// Coordinate format.
    Coo = 0,
    /// Compressed Sparse Row — the general-purpose default (§II-B).
    Csr = 1,
    /// Diagonal format.
    Dia = 2,
    /// ELLPACK format.
    Ell = 3,
    /// Hybrid ELL + COO.
    Hyb = 4,
    /// Hybrid DIA + CSR.
    Hdc = 5,
    /// Register-blocked CSR (r x c dense blocks).
    Bsr = 6,
    /// Bucketed ELLPACK (per-bucket width slabs).
    Bell = 7,
}

/// Number of formats in the pool the tuners select from.
pub const FORMAT_COUNT: usize = 8;

/// All formats, in format-ID order.
pub const ALL_FORMATS: [FormatId; FORMAT_COUNT] = [
    FormatId::Coo,
    FormatId::Csr,
    FormatId::Dia,
    FormatId::Ell,
    FormatId::Hyb,
    FormatId::Hdc,
    FormatId::Bsr,
    FormatId::Bell,
];

impl FormatId {
    /// Stable numeric ID (the classifier's target value).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`FormatId::index`].
    pub fn from_index(i: usize) -> Option<FormatId> {
        ALL_FORMATS.get(i).copied()
    }

    /// Upper-case short name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            FormatId::Coo => "COO",
            FormatId::Csr => "CSR",
            FormatId::Dia => "DIA",
            FormatId::Ell => "ELL",
            FormatId::Hyb => "HYB",
            FormatId::Hdc => "HDC",
            FormatId::Bsr => "BSR",
            FormatId::Bell => "BELL",
        }
    }

    /// Parse from the short name (case-insensitive).
    pub fn from_name(s: &str) -> Option<FormatId> {
        match s.to_ascii_uppercase().as_str() {
            "COO" => Some(FormatId::Coo),
            "CSR" => Some(FormatId::Csr),
            "DIA" => Some(FormatId::Dia),
            "ELL" => Some(FormatId::Ell),
            "HYB" => Some(FormatId::Hyb),
            "HDC" => Some(FormatId::Hdc),
            "BSR" => Some(FormatId::Bsr),
            "BELL" => Some(FormatId::Bell),
            _ => None,
        }
    }
}

impl std::fmt::Display for FormatId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable() {
        assert_eq!(FormatId::Coo.index(), 0);
        assert_eq!(FormatId::Csr.index(), 1);
        assert_eq!(FormatId::Dia.index(), 2);
        assert_eq!(FormatId::Ell.index(), 3);
        assert_eq!(FormatId::Hyb.index(), 4);
        assert_eq!(FormatId::Hdc.index(), 5);
        assert_eq!(FormatId::Bsr.index(), 6);
        assert_eq!(FormatId::Bell.index(), 7);
    }

    #[test]
    fn index_roundtrip() {
        for f in ALL_FORMATS {
            assert_eq!(FormatId::from_index(f.index()), Some(f));
            assert_eq!(FormatId::from_name(f.name()), Some(f));
        }
        assert_eq!(FormatId::from_index(FORMAT_COUNT), None);
        assert_eq!(FormatId::from_name("XYZ"), None);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = ALL_FORMATS.iter().map(|f| f.name()).collect();
        assert_eq!(names, ["COO", "CSR", "DIA", "ELL", "HYB", "HDC", "BSR", "BELL"]);
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(FormatId::from_name("csr"), Some(FormatId::Csr));
        assert_eq!(FormatId::from_name("Hyb"), Some(FormatId::Hyb));
    }
}
