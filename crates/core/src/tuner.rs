//! The three tuners of §VI-A, generic over the matrix scalar and aware of
//! the operation being tuned for.

use crate::features::FeatureVector;
use crate::{OracleError, Result};
use morpheus::format::FormatId;
use morpheus::{DynamicMatrix, Scalar};
use morpheus_machine::{MatrixAnalysis, Op, VirtualEngine};
use morpheus_ml::serialize::LoadedModel;
use morpheus_ml::{DecisionTree, GradientBoostedTrees, RandomForest};

/// Virtual-clock cost of one tuning decision, split the way Table IV and
/// Equation 2 need it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TuningCost {
    /// Feature-extraction time `T_FE`, seconds.
    pub feature_extraction: f64,
    /// Model-evaluation time `T_PRED`, seconds.
    pub prediction: f64,
    /// Run-first only: conversions plus trial runs, seconds.
    pub profiling: f64,
    /// Wall-clock seconds of *measured* kernel trial runs charged to the
    /// adaptive sweep (see `crate::adapt`). Unlike `profiling` — which is
    /// virtual-clock time the engine *predicts* trials would take — this is
    /// host time actually spent executing kernels to label training
    /// samples, so Table-IV-style cost accounting stays honest when online
    /// adaptation is collecting data.
    pub measured: f64,
    /// `true` when the decision was served from the Oracle's cache — all
    /// cost components are then zero (nothing was re-extracted or
    /// re-evaluated). Set by the session on hits; tuners constructing
    /// fresh decisions must leave it `false` ([`crate::TuneReport`]'s
    /// `cache_hit` is the authoritative flag).
    pub cache_hit: bool,
}

impl TuningCost {
    /// Total tuning-stage time (virtual-clock components plus measured
    /// adaptive-sweep seconds).
    pub fn total(&self) -> f64 {
        self.feature_extraction + self.prediction + self.profiling + self.measured
    }

    /// A zero-cost record flagged as served from cache.
    pub fn cached() -> Self {
        TuningCost { cache_hit: true, ..Default::default() }
    }
}

/// A tuner's verdict for one matrix on one engine, for one operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneDecision {
    /// The selected format.
    pub format: FormatId,
    /// The format parameters the conversion should use (defaults unless a
    /// parameter regressor proposed better ones for this matrix).
    pub params: morpheus::FormatParams,
    /// The operation the selection targets.
    pub op: Op,
    /// What the decision cost.
    pub cost: TuningCost,
}

/// Strategy interface: given a matrix (and its analysis) on an engine,
/// select the format the given operation should run in.
///
/// The trait is generic over the matrix scalar `V` so one tuner value
/// serves `f32` and `f64` sessions alike; the bundled tuners implement it
/// for every [`Scalar`] because format selection depends only on sparsity
/// structure, never on the stored values.
pub trait FormatTuner<V: Scalar> {
    /// Tuner name for reports.
    fn name(&self) -> &'static str;

    /// Selects a format for `op`.
    fn select(
        &self,
        m: &DynamicMatrix<V>,
        a: &MatrixAnalysis,
        engine: &VirtualEngine,
        op: Op,
    ) -> TuneDecision;
}

impl<V: Scalar, T: FormatTuner<V> + ?Sized> FormatTuner<V> for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn select(
        &self,
        m: &DynamicMatrix<V>,
        a: &MatrixAnalysis,
        engine: &VirtualEngine,
        op: Op,
    ) -> TuneDecision {
        (**self).select(m, a, engine, op)
    }
}

impl<V: Scalar, T: FormatTuner<V> + ?Sized> FormatTuner<V> for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn select(
        &self,
        m: &DynamicMatrix<V>,
        a: &MatrixAnalysis,
        engine: &VirtualEngine,
        op: Op,
    ) -> TuneDecision {
        (**self).select(m, a, engine, op)
    }
}

// ---------------------------------------------------------------------------
// Run-first
// ---------------------------------------------------------------------------

/// The run-first tuner: "records the iteration time each format takes to
/// perform N-iterations for a given operation and applies statistics to
/// determine which format was best" (§VI-A). Most accurate, most expensive —
/// it pays a conversion to every viable format plus `reps` trial executions
/// of the tuned operation each.
#[derive(Debug, Clone)]
pub struct RunFirstTuner {
    reps: usize,
}

impl RunFirstTuner {
    /// Tuner performing `reps` trial iterations per candidate format.
    pub fn new(reps: usize) -> Self {
        RunFirstTuner { reps: reps.max(1) }
    }

    /// Trial iterations per format.
    pub fn reps(&self) -> usize {
        self.reps
    }
}

impl<V: Scalar> FormatTuner<V> for RunFirstTuner {
    fn name(&self) -> &'static str {
        "run-first"
    }

    fn select(
        &self,
        m: &DynamicMatrix<V>,
        a: &MatrixAnalysis,
        engine: &VirtualEngine,
        op: Op,
    ) -> TuneDecision {
        let active = m.format_id();
        let mut best = FormatId::Csr;
        let mut best_time = f64::INFINITY;
        let mut profiling = 0.0;
        for fmt in morpheus::FormatEntry::all().iter().map(|e| e.id) {
            if !engine.is_viable(fmt, a) {
                continue;
            }
            let t_convert = engine.conversion_time(active, fmt, a);
            let t_iter = engine.op_time(op, fmt, a);
            profiling += t_convert + self.reps as f64 * t_iter;
            if t_iter < best_time {
                best_time = t_iter;
                best = fmt;
            }
        }
        TuneDecision {
            format: best,
            params: morpheus::FormatParams::default(),
            op,
            cost: TuningCost { profiling, ..Default::default() },
        }
    }
}

// ---------------------------------------------------------------------------
// ML tuners
// ---------------------------------------------------------------------------

fn check_model_shape(n_features: usize, n_classes: usize, kind: &str) -> Result<()> {
    if n_features != crate::NUM_FEATURES {
        return Err(OracleError::ModelMismatch(format!(
            "{kind} expects {n_features} features, Oracle extracts {}",
            crate::NUM_FEATURES
        )));
    }
    if n_classes > morpheus::format::FORMAT_COUNT {
        return Err(OracleError::ModelMismatch(format!(
            "{kind} predicts over {n_classes} classes, only {} formats exist",
            morpheus::format::FORMAT_COUNT
        )));
    }
    Ok(())
}

pub(crate) fn ml_decision<V: Scalar>(
    predicted: usize,
    nodes_visited: usize,
    m: &DynamicMatrix<V>,
    a: &MatrixAnalysis,
    engine: &VirtualEngine,
    op: Op,
) -> TuneDecision {
    let format = FormatId::from_index(predicted).unwrap_or(FormatId::Csr);
    TuneDecision {
        format,
        params: crate::params::propose_params(format, a),
        op,
        cost: TuningCost {
            feature_extraction: engine.feature_extraction_time(m.format_id(), a),
            prediction: engine.prediction_time(nodes_visited),
            ..Default::default()
        },
    }
}

/// Single-tree ML tuner: "offers very fast but less accurate predictions"
/// (§VI-A).
#[derive(Debug, Clone)]
pub struct DecisionTreeTuner {
    model: DecisionTree,
}

impl DecisionTreeTuner {
    /// Wraps a fitted tree, validating its shape against the feature schema.
    pub fn new(model: DecisionTree) -> Result<Self> {
        check_model_shape(model.n_features(), model.n_classes(), "decision tree")?;
        Ok(DecisionTreeTuner { model })
    }

    /// Loads the tree from a model file (§III-B: "loads an ML model from a
    /// file specified at runtime").
    pub fn from_reader<R: std::io::BufRead>(reader: R) -> Result<Self> {
        match morpheus_ml::serialize::load_model(reader)? {
            LoadedModel::Tree(t) => DecisionTreeTuner::new(t),
            LoadedModel::Forest(_) => {
                Err(OracleError::ModelMismatch("file contains a forest, expected a tree".into()))
            }
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &DecisionTree {
        &self.model
    }
}

impl<V: Scalar> FormatTuner<V> for DecisionTreeTuner {
    fn name(&self) -> &'static str {
        "decision-tree"
    }

    fn select(
        &self,
        m: &DynamicMatrix<V>,
        a: &MatrixAnalysis,
        engine: &VirtualEngine,
        op: Op,
    ) -> TuneDecision {
        let fv = FeatureVector::from_stats(&a.stats);
        let predicted = self.model.predict(fv.as_slice());
        let visited = self.model.decision_path_len(fv.as_slice());
        ml_decision(predicted, visited, m, a, engine, op)
    }
}

/// Forest ML tuner: "traverses multiple trees in the ensemble and then
/// performs a voting scheme to decide the optimal format ... the majority
/// voting scheme" (§VI-A).
#[derive(Debug, Clone)]
pub struct RandomForestTuner {
    model: RandomForest,
}

impl RandomForestTuner {
    /// Wraps a fitted forest, validating its shape.
    pub fn new(model: RandomForest) -> Result<Self> {
        check_model_shape(model.n_features(), model.n_classes(), "random forest")?;
        Ok(RandomForestTuner { model })
    }

    /// Loads the forest from a model file.
    pub fn from_reader<R: std::io::BufRead>(reader: R) -> Result<Self> {
        match morpheus_ml::serialize::load_model(reader)? {
            LoadedModel::Forest(f) => RandomForestTuner::new(f),
            LoadedModel::Tree(_) => {
                Err(OracleError::ModelMismatch("file contains a tree, expected a forest".into()))
            }
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &RandomForest {
        &self.model
    }
}

impl<V: Scalar> FormatTuner<V> for RandomForestTuner {
    fn name(&self) -> &'static str {
        "random-forest"
    }

    fn select(
        &self,
        m: &DynamicMatrix<V>,
        a: &MatrixAnalysis,
        engine: &VirtualEngine,
        op: Op,
    ) -> TuneDecision {
        let fv = FeatureVector::from_stats(&a.stats);
        let predicted = self.model.predict(fv.as_slice());
        let visited = self.model.decision_path_len(fv.as_slice());
        ml_decision(predicted, visited, m, a, engine, op)
    }
}

/// Gradient-boosted tuner: the paper's "further work" model (§IX), served
/// the same way as trees and forests. Predictions argmax the ensemble's
/// softmax scores; the prediction cost charges every regression-tree node
/// visited across all rounds and classes.
#[derive(Debug, Clone)]
pub struct GbtTuner {
    model: GradientBoostedTrees,
}

impl GbtTuner {
    /// Wraps a fitted ensemble, validating its shape against the feature
    /// schema.
    pub fn new(model: GradientBoostedTrees) -> Result<Self> {
        check_model_shape(model.n_features(), model.n_classes(), "gradient-boosted ensemble")?;
        Ok(GbtTuner { model })
    }

    /// Loads the ensemble from a `kind gbt` model file.
    pub fn from_reader<R: std::io::BufRead>(reader: R) -> Result<Self> {
        GbtTuner::new(morpheus_ml::serialize::load_gbt(reader)?)
    }

    /// The underlying model.
    pub fn model(&self) -> &GradientBoostedTrees {
        &self.model
    }
}

impl<V: Scalar> FormatTuner<V> for GbtTuner {
    fn name(&self) -> &'static str {
        "gradient-boosted"
    }

    fn select(
        &self,
        m: &DynamicMatrix<V>,
        a: &MatrixAnalysis,
        engine: &VirtualEngine,
        op: Op,
    ) -> TuneDecision {
        let fv = FeatureVector::from_stats(&a.stats);
        let predicted = self.model.predict(fv.as_slice());
        let visited = self.model.decision_path_len(fv.as_slice());
        ml_decision(predicted, visited, m, a, engine, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus::format::FORMAT_COUNT;
    use morpheus::CooMatrix;
    use morpheus_machine::{analyze, systems, Backend};
    use morpheus_ml::{Dataset, ForestParams, TreeParams};

    fn tridiag(n: usize) -> DynamicMatrix<f64> {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..n {
            for d in [-1isize, 0, 1] {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n {
                    rows.push(i);
                    cols.push(j as usize);
                }
            }
        }
        let vals = vec![1.0; rows.len()];
        DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    /// A dataset whose rule is trivially learnable: wide rows -> ELL (3),
    /// otherwise CSR (1). Ten features, six classes.
    fn toy_dataset() -> Dataset {
        let mut ds = Dataset::empty(crate::NUM_FEATURES, FORMAT_COUNT, vec![]).unwrap();
        for i in 0..120 {
            let wide = i % 2 == 0;
            let max_nnz = if wide { 50.0 } else { 3.0 };
            let row = [1000.0, 1000.0, 5000.0, 5.0, 0.005, max_nnz, 1.0, 2.0, 30.0, 0.0, 0.2, 1.1];
            ds.push(&row, if wide { 3 } else { 1 }).unwrap();
        }
        ds
    }

    #[test]
    fn run_first_matches_engine_profile() {
        let m = tridiag(3000);
        let a = analyze(&m);
        let engine = VirtualEngine::new(systems::cirrus(), Backend::Serial);
        let tuner = RunFirstTuner::new(5);
        let decision = tuner.select(&m, &a, &engine, Op::Spmv);
        assert_eq!(decision.format, engine.profile(&a).optimal);
        assert_eq!(decision.op, Op::Spmv);
        assert!(decision.cost.profiling > 0.0);
        assert_eq!(decision.cost.feature_extraction, 0.0);
        assert!(!decision.cost.cache_hit);
    }

    #[test]
    fn run_first_cost_grows_with_reps() {
        let m = tridiag(1000);
        let a = analyze(&m);
        let engine = VirtualEngine::new(systems::xci(), Backend::Serial);
        let c1 = RunFirstTuner::new(1).select(&m, &a, &engine, Op::Spmv).cost.total();
        let c100 = RunFirstTuner::new(100).select(&m, &a, &engine, Op::Spmv).cost.total();
        assert!(c100 > 5.0 * c1);
    }

    #[test]
    fn run_first_is_operation_aware() {
        let m = tridiag(2000);
        let a = analyze(&m);
        let engine = VirtualEngine::new(systems::a64fx(), Backend::Serial);
        let tuner = RunFirstTuner::new(3);
        let spmm = tuner.select(&m, &a, &engine, Op::Spmm { k: 32 });
        assert_eq!(spmm.op, Op::Spmm { k: 32 });
        assert_eq!(spmm.format, engine.profile_op(&a, Op::Spmm { k: 32 }).optimal);
        // Trial executions of the heavier operation cost more.
        let spmv = tuner.select(&m, &a, &engine, Op::Spmv);
        assert!(spmm.cost.profiling > spmv.cost.profiling);
    }

    #[test]
    fn run_first_selects_for_f32_matrices_too() {
        let m64 = tridiag(1500);
        let coo = m64.to_coo();
        let vals32: Vec<f32> = coo.values().iter().map(|&v| v as f32).collect();
        let m32: DynamicMatrix<f32> = DynamicMatrix::from(
            CooMatrix::from_triplets(coo.nrows(), coo.ncols(), coo.row_indices(), coo.col_indices(), &vals32)
                .unwrap(),
        );
        let engine = VirtualEngine::new(systems::cirrus(), Backend::Serial);
        let tuner = RunFirstTuner::new(2);
        let d64 = tuner.select(&m64, &analyze(&m64), &engine, Op::Spmv);
        let d32 = tuner.select(&m32, &analyze(&m32), &engine, Op::Spmv);
        // Identical structure: identical selection, whatever the scalar.
        assert_eq!(d64.format, d32.format);
    }

    #[test]
    fn tree_tuner_applies_learned_rule() {
        let ds = toy_dataset();
        let tree = morpheus_ml::DecisionTree::fit(&ds, &TreeParams::default()).unwrap();
        let tuner = DecisionTreeTuner::new(tree).unwrap();
        let engine = VirtualEngine::new(systems::cirrus(), Backend::Serial);

        // Tridiagonal: max nnz/row = 3 -> the "narrow" rule -> CSR.
        let m = tridiag(1000);
        let a = analyze(&m);
        let d = tuner.select(&m, &a, &engine, Op::Spmv);
        assert_eq!(d.format, FormatId::Csr);
        assert!(d.cost.feature_extraction > 0.0);
        assert!(d.cost.prediction > 0.0);
        assert_eq!(d.cost.profiling, 0.0);
    }

    #[test]
    fn forest_tuner_votes() {
        let ds = toy_dataset();
        let forest =
            morpheus_ml::RandomForest::fit(&ds, &ForestParams { n_estimators: 9, ..Default::default() })
                .unwrap();
        let tuner = RandomForestTuner::new(forest).unwrap();
        let engine = VirtualEngine::new(systems::cirrus(), Backend::Serial);
        let m = tridiag(500);
        let a = analyze(&m);
        let d = tuner.select(&m, &a, &engine, Op::Spmv);
        assert_eq!(d.format, FormatId::Csr);
        // Forest prediction visits more nodes than a single tree would.
        assert!(d.cost.prediction > engine.prediction_time(1));
    }

    #[test]
    fn gbt_tuner_applies_learned_rule_and_charges_prediction() {
        let ds = toy_dataset();
        let model = morpheus_ml::GradientBoostedTrees::fit(&ds, &morpheus_ml::GbtParams::default()).unwrap();
        let tuner = GbtTuner::new(model).unwrap();
        let engine = VirtualEngine::new(systems::cirrus(), Backend::Serial);
        let m = tridiag(900);
        let a = analyze(&m);
        let d = tuner.select(&m, &a, &engine, Op::Spmv);
        // Tridiagonal rows are narrow: the toy rule maps them to CSR.
        assert_eq!(d.format, FormatId::Csr);
        assert!(d.cost.feature_extraction > 0.0);
        assert!(d.cost.prediction > 0.0);
        assert_eq!(d.cost.measured, 0.0);
        assert_eq!(FormatTuner::<f64>::name(&tuner), "gradient-boosted");
    }

    #[test]
    fn measured_seconds_count_toward_total() {
        let cost = TuningCost { measured: 0.25, profiling: 0.5, ..Default::default() };
        assert_eq!(cost.total(), 0.75);
    }

    #[test]
    fn model_shape_validation() {
        // Wrong feature count.
        let mut ds = Dataset::empty(3, 6, vec![]).unwrap();
        for i in 0..10 {
            ds.push(&[i as f64, 0.0, 1.0], i % 2).unwrap();
        }
        let tree = morpheus_ml::DecisionTree::fit(&ds, &TreeParams::default()).unwrap();
        assert!(matches!(DecisionTreeTuner::new(tree), Err(OracleError::ModelMismatch(_))));
    }

    #[test]
    fn loader_rejects_wrong_kind() {
        let ds = toy_dataset();
        let forest =
            morpheus_ml::RandomForest::fit(&ds, &ForestParams { n_estimators: 3, ..Default::default() })
                .unwrap();
        let mut buf = Vec::new();
        morpheus_ml::serialize::save_forest(&mut buf, &forest).unwrap();
        assert!(DecisionTreeTuner::from_reader(std::io::Cursor::new(&buf)).is_err());
        assert!(RandomForestTuner::from_reader(std::io::Cursor::new(&buf)).is_ok());
    }

    #[test]
    fn trait_objects_and_boxes_delegate() {
        let m = tridiag(800);
        let a = analyze(&m);
        let engine = VirtualEngine::new(systems::cirrus(), Backend::Serial);
        let concrete = RunFirstTuner::new(2);
        let direct = concrete.select(&m, &a, &engine, Op::Spmv);

        let by_ref: &dyn FormatTuner<f64> = &concrete;
        assert_eq!(by_ref.select(&m, &a, &engine, Op::Spmv), direct);
        assert_eq!(FormatTuner::<f64>::name(&by_ref), "run-first");

        let boxed: Box<dyn FormatTuner<f64>> = Box::new(RunFirstTuner::new(2));
        assert_eq!(boxed.select(&m, &a, &engine, Op::Spmv), direct);
    }
}
