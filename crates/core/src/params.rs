//! Format-parameter proposal: heuristic strategies and the GBT parameter
//! regressor.
//!
//! PR 9 makes format *parameters* — BSR block dimensions, the BELL bucket
//! ladder, HYB's split width, DIA's fill threshold — part of the tuning
//! decision instead of compile-time constants. The search space per format
//! is a small set of [`ParamStrategy`]s (AlphaSparse-style discrete
//! candidates); each strategy *realizes* to a concrete
//! [`morpheus::FormatParams`] from the matrix analysis, so strategies are
//! comparable across matrices while the realized parameters adapt to each
//! one. Selection happens two ways:
//!
//! * [`heuristic_params`] — the analytical default: price every strategy
//!   from the analysis histograms (exact padded-slot counts, no conversion)
//!   and take the cheapest. This is what [`crate::tuner`]'s ML decisions
//!   carry when no regressor is trained.
//! * [`ParamRegressor`] — the learned upgrade: a
//!   [`GradientBoostedTrees`] classifier over the Table-I+ feature vector
//!   choosing the strategy, trained on *measured* per-strategy timings
//!   (the same PR-5 GBT machinery that learns format selection). Where the
//!   heuristic prices only padding, the regressor learns from wall clock —
//!   cache effects, SIMD widths and all.

use crate::features::FeatureVector;
use crate::Result;
use morpheus::format::FormatId;
use morpheus::{FormatParams, MAX_BELL_WIDTHS};
use morpheus_machine::MatrixAnalysis;
use morpheus_ml::{Dataset, GbtParams, GradientBoostedTrees};

/// Square BSR block dimensions the strategy space explores.
pub const BSR_STRATEGY_DIMS: [usize; 3] = [2, 4, 8];

/// One discrete point in a format's parameter search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamStrategy {
    /// The fixed-heuristic defaults ([`FormatParams::default`]).
    Default,
    /// BSR with square `b`×`b` blocks.
    BsrBlock(usize),
    /// BELL with a row-length-quantile ladder (adapts bucket widths to the
    /// row distribution instead of powers of two).
    BellQuantile,
    /// BELL with a two-level ladder: mean row width + max row width. Wins
    /// on heavy-tail matrices where most rows fit the mean bucket.
    BellTwoLevel,
    /// HYB with the ELL split width halved (more COO spill, less padding).
    HybHalfWidth,
    /// HYB with the ELL split width doubled (less spill, more padding).
    HybDoubleWidth,
    /// DIA admitted up to a looser fill threshold (2x the default).
    DiaLooseFill,
}

/// The strategy space for `format`, defaults first. Formats without tunable
/// parameters get the singleton `[Default]`.
pub fn strategies(format: FormatId) -> &'static [ParamStrategy] {
    use ParamStrategy::*;
    match format {
        FormatId::Bsr => &[BsrBlock(4), BsrBlock(2), BsrBlock(8)],
        FormatId::Bell => &[Default, BellQuantile, BellTwoLevel],
        FormatId::Hyb => &[Default, HybHalfWidth, HybDoubleWidth],
        FormatId::Dia => &[Default, DiaLooseFill],
        _ => &[Default],
    }
}

/// Realizes a strategy into concrete parameters for this matrix.
pub fn realize(strategy: ParamStrategy, a: &MatrixAnalysis) -> FormatParams {
    match strategy {
        ParamStrategy::Default => FormatParams::default(),
        ParamStrategy::BsrBlock(b) => FormatParams { bsr_block: (b, b), ..Default::default() },
        ParamStrategy::BellQuantile => {
            FormatParams::default().with_bell_ladder(&quantile_ladder(&a.row_hist))
        }
        ParamStrategy::BellTwoLevel => {
            let max = a.stats.row_nnz_max.max(1);
            let mean = (a.mean_row().ceil() as usize).clamp(1, max);
            let ladder = if mean < max { vec![mean, max] } else { vec![max] };
            FormatParams::default().with_bell_ladder(&ladder)
        }
        ParamStrategy::HybHalfWidth => {
            FormatParams { hyb_width: Some((a.hyb_width / 2).max(1)), ..Default::default() }
        }
        ParamStrategy::HybDoubleWidth => FormatParams {
            hyb_width: Some((a.hyb_width * 2).clamp(1, a.stats.row_nnz_max.max(1))),
            ..Default::default()
        },
        ParamStrategy::DiaLooseFill => FormatParams { dia_fill: Some(40.0), ..Default::default() },
    }
}

/// Padded slots a BELL ladder would allocate, exactly, from the per-row
/// occupancy list (rows land in the first bucket that fits; empty rows
/// store nothing).
pub fn ladder_padded(ladder: &[usize], row_hist: &[u32]) -> usize {
    if ladder.is_empty() {
        return 0;
    }
    let mut padded = 0usize;
    for &l in row_hist {
        let l = l as usize;
        if l == 0 {
            continue;
        }
        // Rows wider than the last bucket clamp to it (conversion widens
        // the ladder in that case; for pricing the clamp is the floor).
        let b = ladder.partition_point(|&w| w < l).min(ladder.len() - 1);
        padded += ladder[b].max(l);
    }
    padded
}

/// A row-length-quantile bucket ladder: widths at the 50th/75th/90th/100th
/// percentile of non-empty row lengths, deduplicated and ascending. Bounded
/// by [`MAX_BELL_WIDTHS`] by construction (four quantiles).
pub fn quantile_ladder(row_hist: &[u32]) -> Vec<usize> {
    let mut lens: Vec<usize> = row_hist.iter().filter(|&&l| l > 0).map(|&l| l as usize).collect();
    if lens.is_empty() {
        return vec![1];
    }
    lens.sort_unstable();
    let q = |f: f64| lens[((lens.len() - 1) as f64 * f).round() as usize];
    let mut ladder = vec![q(0.5), q(0.75), q(0.9), *lens.last().unwrap()];
    ladder.dedup();
    debug_assert!(ladder.len() <= MAX_BELL_WIDTHS);
    ladder
}

/// Prices one strategy from the analysis alone: padded value slots plus an
/// index-overhead term, the storage-traffic proxy the conversion guards and
/// the machine model both key on. No conversion, no kernel execution.
fn strategy_cost(format: FormatId, strategy: ParamStrategy, a: &MatrixAnalysis) -> f64 {
    match (format, strategy) {
        (FormatId::Bsr, ParamStrategy::BsrBlock(b)) => {
            // Padded slots = value traffic; each block also costs one
            // column index and its share of the row pointer.
            (a.bsr_padded(b) + 2 * a.bsr_nblocks(b)) as f64
        }
        (FormatId::Bell, s) => {
            let params = realize(s, a);
            let ladder = params.bell_ladder();
            if ladder.is_empty() {
                // Auto ladder: the analysis already computed its padding.
                a.bell_padded as f64
            } else {
                ladder_padded(ladder, &a.row_hist) as f64
            }
        }
        // HYB/DIA strategies trade padding against spill in ways the
        // histogram prices only crudely; keep the default unless a trained
        // regressor says otherwise.
        _ => {
            if strategy == ParamStrategy::Default {
                0.0
            } else {
                f64::INFINITY
            }
        }
    }
}

/// The analytical parameter proposal: cheapest strategy by
/// [`strategy_cost`], ties to the earlier (more default) strategy. This is
/// the "fixed heuristic" baseline the GBT regressor must beat.
pub fn heuristic_params(format: FormatId, a: &MatrixAnalysis) -> FormatParams {
    let mut best = ParamStrategy::Default;
    let mut best_cost = f64::INFINITY;
    for &s in strategies(format) {
        let c = strategy_cost(format, s, a);
        if c < best_cost {
            best_cost = c;
            best = s;
        }
    }
    realize(best, a)
}

/// The parameter proposal ML-tuned decisions carry (see
/// [`crate::tuner`]): currently the analytical heuristic; services with a
/// trained [`ParamRegressor`] refine per matrix via
/// [`ParamRegressor::propose`].
pub fn propose_params(format: FormatId, a: &MatrixAnalysis) -> FormatParams {
    heuristic_params(format, a)
}

/// A learned strategy selector for one format: GBT over the feature vector,
/// classes are indices into [`strategies`]`(format)`.
#[derive(Debug, Clone)]
pub struct ParamRegressor {
    format: FormatId,
    model: GradientBoostedTrees,
}

impl ParamRegressor {
    /// Fits a regressor from `(features, best strategy index)` samples —
    /// labels come from measured per-strategy timings (see `bench_adapt`'s
    /// parameter experiment).
    pub fn fit(format: FormatId, samples: &[(FeatureVector, usize)], params: &GbtParams) -> Result<Self> {
        let n_classes = strategies(format).len();
        let mut ds = Dataset::empty(crate::NUM_FEATURES, n_classes, vec![])?;
        for (fv, label) in samples {
            ds.push(fv.as_slice(), *label)?;
        }
        let model = GradientBoostedTrees::fit(&ds, params)?;
        Ok(ParamRegressor { format, model })
    }

    /// The format this regressor proposes parameters for.
    pub fn format(&self) -> FormatId {
        self.format
    }

    /// The learned strategy for a matrix with these features.
    pub fn predict_strategy(&self, fv: &FeatureVector) -> ParamStrategy {
        let s = strategies(self.format);
        s[self.model.predict(fv.as_slice()).min(s.len() - 1)]
    }

    /// Realized parameters for this matrix: the learned strategy applied to
    /// its analysis.
    pub fn propose(&self, fv: &FeatureVector, a: &MatrixAnalysis) -> FormatParams {
        realize(self.predict_strategy(fv), a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus::{CooMatrix, DynamicMatrix};
    use morpheus_machine::analyze;

    /// Dense 4x4 blocks on a block-diagonal: 4x4 blocking is free, 8x8
    /// halves-empty, 2x2 quadruples the index overhead.
    fn blocked(nb: usize) -> DynamicMatrix<f64> {
        let n = nb * 4;
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for b in 0..nb {
            for i in 0..4 {
                for j in 0..4 {
                    rows.push(b * 4 + i);
                    cols.push(b * 4 + j);
                }
            }
        }
        let vals = vec![1.0; rows.len()];
        DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    /// Heavy tail: almost all rows have 3 entries (pow2 buckets pad them to
    /// 4), a few have ~60.
    fn heavy_tail(n: usize) -> DynamicMatrix<f64> {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..n {
            for k in 0..3 {
                rows.push(i);
                cols.push((i + k * 7 + 1) % n);
            }
        }
        for h in 0..3 {
            let r = (h * 31) % n;
            for k in 0..60 {
                rows.push(r);
                cols.push((k * 3 + h) % n);
            }
        }
        let vals = vec![1.0; rows.len()];
        DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    #[test]
    fn heuristic_picks_the_natural_block_dim() {
        let a = analyze(&blocked(32));
        let p = heuristic_params(FormatId::Bsr, &a);
        assert_eq!(p.normalized_block(), (4, 4), "dense 4x4 blocks price cheapest at 4x4: {p:?}");
    }

    #[test]
    fn heuristic_bell_ladder_beats_pow2_on_heavy_tail() {
        let a = analyze(&heavy_tail(600));
        let p = heuristic_params(FormatId::Bell, &a);
        let ladder = p.bell_ladder();
        assert!(!ladder.is_empty(), "heavy tail must pick an explicit ladder: {p:?}");
        assert!(
            ladder_padded(ladder, &a.row_hist) < a.bell_padded,
            "chosen ladder must pad strictly less than the pow2 default"
        );
    }

    #[test]
    fn strategies_realize_and_default_format_params_are_default() {
        let a = analyze(&blocked(8));
        for fmt in morpheus::FormatEntry::all().iter().map(|e| e.id) {
            let ss = strategies(fmt);
            assert!(!ss.is_empty());
            for &s in ss {
                let _ = realize(s, &a); // must not panic on any format
            }
        }
        assert!(realize(ParamStrategy::Default, &a).is_default());
        // CSR/COO have no parameters: proposals stay default.
        assert!(propose_params(FormatId::Csr, &a).is_default());
    }

    #[test]
    fn regressor_learns_a_feature_separable_strategy_rule() {
        // Synthetic rule: big max-row (feature 5) -> strategy 1, else 0.
        let mut samples = Vec::new();
        for i in 0..40 {
            let wide = i % 2 == 0;
            let mut f = [0.0f64; crate::NUM_FEATURES];
            f[0] = 200.0 + i as f64;
            f[1] = 200.0;
            f[2] = 1000.0;
            f[3] = 5.0;
            f[5] = if wide { 80.0 } else { 4.0 };
            f[11] = if wide { 3.0 } else { 1.1 };
            samples.push((FeatureVector(f), usize::from(wide)));
        }
        let reg = ParamRegressor::fit(FormatId::Bell, &samples, &GbtParams::default()).unwrap();
        let hits = samples
            .iter()
            .filter(|(fv, label)| reg.predict_strategy(fv) == strategies(FormatId::Bell)[*label])
            .count();
        assert!(hits >= 36, "GBT must learn the separable rule: {hits}/40");
        let a = analyze(&heavy_tail(300));
        let p = reg.propose(&samples[0].0, &a);
        assert!(!p.bell_ladder().is_empty(), "strategy 1 realizes to an explicit ladder");
    }

    #[test]
    fn quantile_ladder_is_ascending_and_covers_max() {
        let a = analyze(&heavy_tail(500));
        let ladder = quantile_ladder(&a.row_hist);
        assert!(ladder.windows(2).all(|w| w[0] < w[1]), "{ladder:?}");
        assert_eq!(*ladder.last().unwrap(), a.stats.row_nnz_max);
        assert!(ladder.len() <= MAX_BELL_WIDTHS);
    }
}
