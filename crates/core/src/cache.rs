//! The Oracle's LRU decision cache.
//!
//! The value of a *lightweight* auto-tuner comes from amortisation: a
//! service that tunes a stream of matrices pays feature extraction and
//! model evaluation per request unless repeated structures are recognised.
//! The cache maps a fingerprint of (matrix structure, scalar width, engine,
//! operation) to the decision made the first time, so structurally
//! identical requests skip the whole tuning stage.

use crate::tuner::TuneDecision;
use morpheus_machine::Op;
use std::collections::HashMap;

/// Key identifying one tuning question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// [`morpheus::DynamicMatrix::structure_hash`] of the matrix in its
    /// active format.
    pub structure: u64,
    /// `size_of::<V>()` — the scalar width changes HYB splits and traffic.
    pub scalar_bytes: usize,
    /// Fingerprint of the engine the decision was made for.
    pub engine: u64,
    /// The operation tuned for.
    pub op: Op,
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    last_used: u64,
}

/// Bounded least-recently-used map: the one mechanism under both the
/// decision cache and the Oracle's execution-plan cache.
///
/// Eviction scans for the oldest slot — O(len), which is irrelevant next
/// to the work a hit saves, and keeps the structure a plain `HashMap` with
/// no unsafe list splicing. Capacity 0 disables the map entirely (no
/// storage, no counting).
pub(crate) struct LruMap<K, V> {
    capacity: usize,
    slots: HashMap<K, Slot<V>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<K: std::fmt::Debug, V> std::fmt::Debug for LruMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruMap").field("capacity", &self.capacity).field("len", &self.slots.len()).finish()
    }
}

impl<K: Copy + Eq + std::hash::Hash, V> LruMap<K, V> {
    pub fn new(capacity: usize) -> Self {
        LruMap { capacity, slots: HashMap::new(), tick: 0, hits: 0, misses: 0 }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, treating the slot as present only when `valid`
    /// accepts it; counts the hit/miss and refreshes recency on a hit.
    /// Always misses (and counts nothing) when disabled.
    pub fn get_if(&mut self, key: &K, valid: impl FnOnce(&V) -> bool) -> Option<&mut V> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        match self.slots.get_mut(key) {
            Some(slot) if valid(&slot.value) => {
                slot.last_used = self.tick;
                self.hits += 1;
                Some(&mut slot.value)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Non-counting accessor for a slot that was just looked up or
    /// inserted (recency is not refreshed).
    pub fn peek_mut(&mut self, key: &K) -> Option<&mut V> {
        self.slots.get_mut(key).map(|slot| &mut slot.value)
    }

    /// Stores a value, evicting the least-recently-used slot at capacity.
    /// No-op when disabled.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.slots.len() >= self.capacity && !self.slots.contains_key(&key) {
            if let Some(oldest) = self.slots.iter().min_by_key(|(_, s)| s.last_used).map(|(k, _)| *k) {
                self.slots.remove(&oldest);
            }
        }
        self.slots.insert(key, Slot { value, last_used: self.tick });
    }

    /// Drops every slot, keeping the counters.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats { hits: self.hits, misses: self.misses, len: self.slots.len(), capacity: self.capacity }
    }
}

/// Hit/miss counters and occupancy of an [`crate::Oracle`]'s cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that fell through to the tuner.
    pub misses: u64,
    /// Decisions currently held.
    pub len: usize,
    /// Maximum decisions held (0 = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Bounded LRU map from [`CacheKey`] to [`TuneDecision`]: a thin shell
/// over [`LruMap`] (shared with the Oracle's execution-plan cache).
#[derive(Debug)]
pub(crate) struct DecisionCache {
    map: LruMap<CacheKey, TuneDecision>,
}

impl DecisionCache {
    /// Cache holding up to `capacity` decisions (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        DecisionCache { map: LruMap::new(capacity) }
    }

    /// Looks up a decision, refreshing its recency and counting the
    /// hit/miss. Always misses (and counts nothing) when disabled.
    pub fn get(&mut self, key: &CacheKey) -> Option<TuneDecision> {
        self.map.get_if(key, |_| true).map(|d| *d)
    }

    /// Stores a decision, evicting the least-recently-used entry at
    /// capacity. No-op when disabled.
    pub fn insert(&mut self, key: CacheKey, decision: TuneDecision) {
        self.map.insert(key, decision);
    }

    /// Drops every entry, keeping the counters.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        self.map.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::TuningCost;
    use morpheus::format::FormatId;

    fn key(structure: u64) -> CacheKey {
        CacheKey { structure, scalar_bytes: 8, engine: 1, op: Op::Spmv }
    }

    fn decision(fmt: FormatId) -> TuneDecision {
        TuneDecision { format: fmt, op: Op::Spmv, cost: TuningCost::default() }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = DecisionCache::new(4);
        assert_eq!(c.get(&key(1)), None);
        c.insert(key(1), decision(FormatId::Dia));
        assert_eq!(c.get(&key(1)).map(|d| d.format), Some(FormatId::Dia));
        assert_eq!(c.get(&key(2)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len, s.capacity), (1, 2, 1, 4));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = DecisionCache::new(2);
        c.insert(key(1), decision(FormatId::Csr));
        c.insert(key(2), decision(FormatId::Dia));
        let _ = c.get(&key(1)); // refresh 1; 2 becomes oldest
        c.insert(key(3), decision(FormatId::Ell));
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(2)).is_none(), "LRU entry must be evicted");
        assert!(c.get(&key(3)).is_some());
        assert_eq!(c.stats().len, 2);
    }

    #[test]
    fn distinct_ops_and_scalars_do_not_collide() {
        let mut c = DecisionCache::new(8);
        let spmv = CacheKey { structure: 9, scalar_bytes: 8, engine: 1, op: Op::Spmv };
        let spmm = CacheKey { structure: 9, scalar_bytes: 8, engine: 1, op: Op::Spmm { k: 8 } };
        let f32key = CacheKey { structure: 9, scalar_bytes: 4, engine: 1, op: Op::Spmv };
        c.insert(spmv, decision(FormatId::Dia));
        c.insert(spmm, decision(FormatId::Csr));
        c.insert(f32key, decision(FormatId::Ell));
        assert_eq!(c.get(&spmv).map(|d| d.format), Some(FormatId::Dia));
        assert_eq!(c.get(&spmm).map(|d| d.format), Some(FormatId::Csr));
        assert_eq!(c.get(&f32key).map(|d| d.format), Some(FormatId::Ell));
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let mut c = DecisionCache::new(0);
        c.insert(key(1), decision(FormatId::Csr));
        assert_eq!(c.get(&key(1)), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len, s.capacity), (0, 0, 0, 0));
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c = DecisionCache::new(4);
        c.insert(key(1), decision(FormatId::Csr));
        let _ = c.get(&key(1));
        c.clear();
        let s = c.stats();
        assert_eq!(s.len, 0);
        assert_eq!(s.hits, 1);
    }
}
