//! The Oracle's LRU caches: a plain single-stripe map and the sharded,
//! lock-striped concurrent cache built from it.
//!
//! The value of a *lightweight* auto-tuner comes from amortisation: a
//! service that tunes a stream of matrices pays feature extraction and
//! model evaluation per request unless repeated structures are recognised.
//! The cache maps a fingerprint of (matrix structure, scalar width, engine,
//! operation) to the decision made the first time, so structurally
//! identical requests skip the whole tuning stage.
//!
//! [`LruMap`] is the one mechanism under every cache in this crate — it
//! holds slots and recency, nothing else. [`ShardedLru`] stripes keys over
//! independently locked `LruMap` shards and owns the hit/miss accounting in
//! atomics, so concurrent clients contend only when they hash to the same
//! stripe, and `stats()` never blocks on the stripes for its counters. Both
//! the decision cache and the execution-plan cache of
//! [`OracleService`](crate::OracleService) (and therefore of the
//! [`Oracle`](crate::Oracle) facade over it) are `ShardedLru`s.

use morpheus_machine::Op;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Key identifying one tuning question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// [`morpheus::DynamicMatrix::structure_hash`] of the matrix in its
    /// active format.
    pub structure: u64,
    /// `size_of::<V>()` — the scalar width changes HYB splits and traffic.
    pub scalar_bytes: usize,
    /// Fingerprint of the engine the decision was made for.
    pub engine: u64,
    /// The operation tuned for.
    pub op: Op,
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    last_used: u64,
}

/// Bounded least-recently-used map: one stripe of the sharded cache.
///
/// Eviction scans for the oldest slot — O(len), which is irrelevant next
/// to the work a hit saves, and keeps the structure a plain `HashMap` with
/// no unsafe list splicing. Capacity 0 disables the map entirely (no
/// storage). Hit/miss accounting deliberately lives *outside* this type
/// (in [`ShardedLru`]'s atomics), so a stripe lock is held only for the
/// probe itself.
pub(crate) struct LruMap<K, V> {
    capacity: usize,
    slots: HashMap<K, Slot<V>>,
    tick: u64,
}

impl<K: std::fmt::Debug, V> std::fmt::Debug for LruMap<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruMap").field("capacity", &self.capacity).field("len", &self.slots.len()).finish()
    }
}

impl<K: Copy + Eq + Hash, V> LruMap<K, V> {
    pub fn new(capacity: usize) -> Self {
        LruMap { capacity, slots: HashMap::new(), tick: 0 }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Looks up `key`, treating the slot as present only when `valid`
    /// accepts it; refreshes recency on a hit. Always misses when disabled.
    pub fn get_if(&mut self, key: &K, valid: impl FnOnce(&V) -> bool) -> Option<&mut V> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        match self.slots.get_mut(key) {
            Some(slot) if valid(&slot.value) => {
                slot.last_used = self.tick;
                Some(&mut slot.value)
            }
            _ => None,
        }
    }

    /// Stores a value, evicting the least-recently-used slot at capacity.
    /// No-op when disabled.
    ///
    /// One entry-style pass: occupied keys are overwritten in place and
    /// vacant keys inserted through the same `Entry`, so the key is hashed
    /// exactly once (the old remove-then-push formulation hashed twice).
    /// The eviction scan runs only when the insert pushed the map over
    /// capacity, and can never pick the entry just inserted (its
    /// `last_used` is the newest tick, and ticks are strictly increasing).
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        match self.slots.entry(key) {
            Entry::Occupied(mut e) => {
                let slot = e.get_mut();
                slot.value = value;
                slot.last_used = tick;
            }
            Entry::Vacant(e) => {
                e.insert(Slot { value, last_used: tick });
            }
        }
        if self.slots.len() > self.capacity {
            if let Some(oldest) = self.slots.iter().min_by_key(|(_, s)| s.last_used).map(|(k, _)| *k) {
                self.slots.remove(&oldest);
            }
        }
    }

    /// Drops every slot.
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Visits every held entry (arbitrary order, no recency refresh).
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for (k, slot) in &self.slots {
            f(k, &slot.value);
        }
    }
}

/// Hit/miss counters and occupancy of an [`crate::Oracle`]'s cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that fell through to the tuner.
    pub misses: u64,
    /// Decisions currently held.
    pub len: usize,
    /// Maximum decisions held (0 = caching disabled).
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Stripes a fresh [`ShardedLru`] uses unless overridden; a small power of
/// two comfortably above typical client-thread counts.
pub(crate) const DEFAULT_SHARDS: usize = 16;

/// Fewest entries a stripe may be sized for: striping a small cache thin
/// would let one clustered stripe evict entries while the cache as a whole
/// is far from full (per-stripe LRU is only an approximation of global
/// LRU). See [`ShardedLru::new`].
pub(crate) const MIN_STRIPE_CAPACITY: usize = 16;

/// Sharded, lock-striped concurrent LRU: stripes of [`LruMap`], each
/// behind its own `parking_lot::Mutex`, with hit/miss counters aggregated
/// atomically *outside* the stripe locks.
///
/// Keys are striped by hash, so concurrent clients contend only when they
/// touch the same stripe — and then only for the duration of one `HashMap`
/// probe. Lookups clone the value out (`V: Clone`; the cached values are a
/// `Copy` decision and an `Arc` plan, so cloning is cheap) rather than
/// holding a lock across use, which is what lets the service layer expose
/// `&self` tuning from any number of threads.
///
/// Counters use one atomic add per lookup (`Relaxed`: counts must not be
/// lost, but need not order against anything), so `stats()` never takes a
/// stripe lock for the hit/miss totals; only `len` is gathered under the
/// locks.
pub(crate) struct ShardedLru<K, V> {
    shards: Box<[Mutex<LruMap<K, V>>]>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
    /// Bumped by every [`ShardedLru::clear`]; lets
    /// [`ShardedLru::insert_if_generation`] reject inserts computed from
    /// state that a clear has since invalidated (e.g. a tuning decision
    /// made by a model that was hot-swapped out mid-flight).
    generation: AtomicU64,
}

impl<K: std::fmt::Debug, V> std::fmt::Debug for ShardedLru<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLru")
            .field("shards", &self.shards.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl<K: Copy + Eq + Hash, V: Clone> ShardedLru<K, V> {
    /// Cache holding up to `capacity` entries in total, striped over at
    /// most `shards` locks (capacity 0 disables the cache). Stripe
    /// capacities sum to exactly `capacity` (the first `capacity % stripes`
    /// stripes hold one extra slot), so `stats().len` can never exceed
    /// `stats().capacity`.
    ///
    /// Eviction is per stripe, so a stripe that keys cluster into can
    /// evict while others sit empty. To keep that approximation harmless,
    /// the stripe count is capped so every stripe holds at least
    /// [`MIN_STRIPE_CAPACITY`] entries — small caches degrade gracefully
    /// to one stripe with exact LRU order, large caches get the full
    /// stripe count for concurrency.
    pub fn new(capacity: usize, shards: usize) -> Self {
        // Floor division: only as many stripes as can each hold a full
        // MIN_STRIPE_CAPACITY (ceil would allow an under-sized stripe,
        // e.g. capacity 20 over 2 stripes of 10).
        let shards = match capacity {
            0 => shards.max(1),
            c => shards.max(1).min((c / MIN_STRIPE_CAPACITY).max(1)),
        };
        let (base, extra) = (capacity / shards, capacity % shards);
        debug_assert!(capacity == 0 || shards == 1 || base >= MIN_STRIPE_CAPACITY);
        ShardedLru {
            shards: (0..shards).map(|i| Mutex::new(LruMap::new(base + usize::from(i < extra)))).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity,
            generation: AtomicU64::new(0),
        }
    }

    /// Total requested capacity (0 = caching disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn shard_of(&self, key: &K) -> &Mutex<LruMap<K, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up `key` in its stripe, treating the slot as present only when
    /// `valid` accepts it; clones the value out so no lock is held after
    /// return. Counts the hit/miss atomically. Always misses (and counts
    /// nothing) when disabled.
    pub fn get_if(&self, key: &K, valid: impl FnOnce(&V) -> bool) -> Option<V> {
        if self.capacity == 0 {
            return None;
        }
        let found = self.shard_of(key).lock().get_if(key, valid).map(|v| v.clone());
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a value in the key's stripe, evicting that stripe's
    /// least-recently-used entry at capacity. No-op when disabled.
    pub fn insert(&self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.shard_of(&key).lock().insert(key, value);
    }

    /// The current clear-generation; read it *before* computing a value
    /// whose validity a concurrent [`ShardedLru::clear`] would revoke, and
    /// pass it to [`ShardedLru::insert_if_generation`].
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// [`ShardedLru::insert`], but only if no [`ShardedLru::clear`] has
    /// happened since `observed` was read — checked *under the stripe
    /// lock*, so an insert racing a clear either lands before it (and is
    /// cleared with everything else) or is rejected. Returns whether the
    /// value was stored.
    pub fn insert_if_generation(&self, key: K, value: V, observed: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut shard = self.shard_of(&key).lock();
        if self.generation.load(Ordering::Acquire) != observed {
            return false;
        }
        shard.insert(key, value);
        true
    }

    /// Drops every entry in every stripe, keeping the counters. The
    /// generation is bumped *before* the stripes are swept, so any
    /// concurrent [`ShardedLru::insert_if_generation`] that read the old
    /// generation either inserted before its stripe was swept (entry
    /// removed here) or will observe the bump and drop its value.
    pub fn clear(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
    }

    /// Visits every held entry, stripe by stripe (arbitrary order; a
    /// stripe's lock is held only while its own entries are visited, and
    /// empty stripes are skipped without calling out).
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in self.shards.iter() {
            let guard = shard.lock();
            if !guard.is_empty() {
                guard.for_each(&mut f);
            }
        }
    }

    /// Atomically aggregated counters plus current occupancy. Hits and
    /// misses come from the lock-free aggregate counters; `len` sums the
    /// stripes under their locks (each stripe internally consistent).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len: self.shards.iter().map(|s| s.lock().len()).sum(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::{TuneDecision, TuningCost};
    use morpheus::format::FormatId;

    fn key(structure: u64) -> CacheKey {
        CacheKey { structure, scalar_bytes: 8, engine: 1, op: Op::Spmv }
    }

    fn decision(fmt: FormatId) -> TuneDecision {
        TuneDecision {
            format: fmt,
            params: morpheus::FormatParams::default(),
            op: Op::Spmv,
            cost: TuningCost::default(),
        }
    }

    // ---------------- LruMap (one stripe) ----------------

    #[test]
    fn lru_evicts_oldest() {
        let mut m: LruMap<u64, u32> = LruMap::new(2);
        m.insert(1, 10);
        m.insert(2, 20);
        let _ = m.get_if(&1, |_| true); // refresh 1; 2 becomes oldest
        m.insert(3, 30);
        assert!(m.get_if(&1, |_| true).is_some());
        assert!(m.get_if(&2, |_| true).is_none(), "LRU entry must be evicted");
        assert!(m.get_if(&3, |_| true).is_some());
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn insert_overwrites_in_place_without_eviction() {
        let mut m: LruMap<u64, u32> = LruMap::new(2);
        m.insert(1, 10);
        m.insert(2, 20);
        // Overwriting an occupied key at capacity must not evict anything.
        m.insert(1, 11);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get_if(&1, |_| true).copied(), Some(11));
        assert_eq!(m.get_if(&2, |_| true).copied(), Some(20));
    }

    #[test]
    fn insert_never_evicts_itself() {
        let mut m: LruMap<u64, u32> = LruMap::new(1);
        for i in 0..10u64 {
            m.insert(i, i as u32);
            assert_eq!(m.len(), 1);
            assert_eq!(
                m.get_if(&i, |_| true).copied(),
                Some(i as u32),
                "newest entry must survive its own insert"
            );
        }
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut m: LruMap<u64, u32> = LruMap::new(4);
        assert!(m.is_empty());
        m.insert(1, 1);
        m.insert(2, 2);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn zero_capacity_stripe_stores_nothing() {
        let mut m: LruMap<u64, u32> = LruMap::new(0);
        m.insert(1, 1);
        assert!(m.is_empty());
        assert_eq!(m.get_if(&1, |_| true), None);
    }

    #[test]
    fn validity_predicate_gates_stripe_hits() {
        let mut m: LruMap<u64, u32> = LruMap::new(4);
        m.insert(5, 50);
        assert_eq!(m.get_if(&5, |v| *v > 100), None);
        assert_eq!(m.get_if(&5, |v| *v == 50).copied(), Some(50));
    }

    // ---------------- ShardedLru ----------------

    #[test]
    fn hit_and_miss_accounting() {
        let c: ShardedLru<CacheKey, TuneDecision> = ShardedLru::new(4, 2);
        assert_eq!(c.get_if(&key(1), |_| true), None);
        c.insert(key(1), decision(FormatId::Dia));
        assert_eq!(c.get_if(&key(1), |_| true).map(|d| d.format), Some(FormatId::Dia));
        assert_eq!(c.get_if(&key(2), |_| true), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len, s.capacity), (1, 2, 1, 4));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_ops_and_scalars_do_not_collide() {
        let c: ShardedLru<CacheKey, TuneDecision> = ShardedLru::new(8, 4);
        let spmv = CacheKey { structure: 9, scalar_bytes: 8, engine: 1, op: Op::Spmv };
        let spmm = CacheKey { structure: 9, scalar_bytes: 8, engine: 1, op: Op::Spmm { k: 8 } };
        let f32key = CacheKey { structure: 9, scalar_bytes: 4, engine: 1, op: Op::Spmv };
        c.insert(spmv, decision(FormatId::Dia));
        c.insert(spmm, decision(FormatId::Csr));
        c.insert(f32key, decision(FormatId::Ell));
        assert_eq!(c.get_if(&spmv, |_| true).map(|d| d.format), Some(FormatId::Dia));
        assert_eq!(c.get_if(&spmm, |_| true).map(|d| d.format), Some(FormatId::Csr));
        assert_eq!(c.get_if(&f32key, |_| true).map(|d| d.format), Some(FormatId::Ell));
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let c: ShardedLru<CacheKey, TuneDecision> = ShardedLru::new(0, 4);
        c.insert(key(1), decision(FormatId::Csr));
        assert_eq!(c.get_if(&key(1), |_| true), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len, s.capacity), (0, 0, 0, 0));
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn clear_keeps_counters() {
        let c: ShardedLru<CacheKey, TuneDecision> = ShardedLru::new(4, 2);
        c.insert(key(1), decision(FormatId::Csr));
        let _ = c.get_if(&key(1), |_| true);
        c.clear();
        let s = c.stats();
        assert_eq!(s.len, 0);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn sharded_validity_predicate_gates_hits() {
        let c: ShardedLru<u64, u32> = ShardedLru::new(8, 2);
        c.insert(5, 50);
        assert_eq!(c.get_if(&5, |v| *v > 100), None, "rejected value is a miss");
        assert_eq!(c.get_if(&5, |v| *v == 50), Some(50));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn sharded_bounds_total_occupancy() {
        // 8 slots requested over 4 stripes: the stripe cap collapses this
        // to one exact-LRU stripe (8 < MIN_STRIPE_CAPACITY), so occupancy
        // is bounded by the requested capacity exactly.
        let c: ShardedLru<u64, u32> = ShardedLru::new(8, 4);
        for i in 0..1000u64 {
            c.insert(i, i as u32);
        }
        assert!(c.stats().len <= 8, "len {} exceeds capacity", c.stats().len);
        assert_eq!(c.capacity(), 8);

        // A large cache keeps its stripes and still never exceeds the
        // requested capacity: stripe sizes sum to it exactly, even when
        // the division is uneven (100 over 6 stripes = 4x17 + 2x16, not
        // 6x17 = 102).
        for (capacity, shards) in [(64usize, 4usize), (100, 16), (70, 3)] {
            let big: ShardedLru<u64, u32> = ShardedLru::new(capacity, shards);
            for i in 0..2000u64 {
                big.insert(i, i as u32);
            }
            assert!(
                big.stats().len <= capacity,
                "len {} exceeds stated capacity {capacity}",
                big.stats().len
            );
        }
    }

    #[test]
    fn small_caches_hold_their_full_capacity_before_evicting() {
        // The regression the stripe cap prevents: capacity 64 striped 16
        // ways would give 4-entry stripes, and an unlucky key cluster
        // would evict while the cache is nearly empty. With the cap, any
        // 24 distinct keys fit a 64-entry cache.
        let c: ShardedLru<u64, u64> = ShardedLru::new(64, 16);
        for i in 0..24u64 {
            c.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i);
        }
        assert_eq!(c.stats().len, 24, "no entry may be evicted below capacity");

        // Capacities just above one stripe's minimum must collapse to a
        // single exact stripe, not split into under-sized ones (ceil
        // division would make capacity 20 two stripes of 10, where 11
        // clustered keys evict at half occupancy).
        for capacity in [17usize, 20, 30] {
            let c: ShardedLru<u64, u64> = ShardedLru::new(capacity, 16);
            for i in 0..capacity as u64 {
                c.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i);
            }
            assert_eq!(c.stats().len, capacity, "capacity {capacity} must be fully usable");
        }
    }

    #[test]
    fn generation_gated_insert_is_revoked_by_clear() {
        let c: ShardedLru<u64, u32> = ShardedLru::new(8, 2);
        // Normal flow: no clear between read and insert -> stored.
        let gen = c.generation();
        assert!(c.insert_if_generation(1, 10, gen));
        assert_eq!(c.get_if(&1, |_| true), Some(10));

        // A clear between reading the generation and inserting must reject
        // the stale value (this is the model-hot-swap race: the decision
        // was computed by a model that no longer serves).
        let stale_gen = c.generation();
        c.clear();
        assert!(!c.insert_if_generation(2, 20, stale_gen));
        assert_eq!(c.get_if(&2, |_| true), None);

        // The post-clear generation works again.
        assert!(c.insert_if_generation(2, 21, c.generation()));
        assert_eq!(c.get_if(&2, |_| true), Some(21));

        // Disabled caches reject everything.
        let off: ShardedLru<u64, u32> = ShardedLru::new(0, 2);
        assert!(!off.insert_if_generation(1, 1, off.generation()));
    }

    #[test]
    fn sharded_for_each_and_clear() {
        let c: ShardedLru<u64, u32> = ShardedLru::new(32, 4);
        for i in 0..10u64 {
            c.insert(i, i as u32 * 2);
        }
        let mut seen = Vec::new();
        c.for_each(|k, v| seen.push((*k, *v)));
        seen.sort_unstable();
        assert_eq!(seen, (0..10u64).map(|i| (i, i as u32 * 2)).collect::<Vec<_>>());
        c.clear();
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn sharded_counts_are_not_lost_under_contention() {
        // N threads hammer a small shared cache; every lookup must be
        // counted exactly once (hits + misses == total lookups) and every
        // insert must land (no torn stripes).
        let c = std::sync::Arc::new(ShardedLru::<u64, u64>::new(64, 4));
        let threads = 8u64;
        let per_thread = 500u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let k = i % 32;
                        if c.get_if(&k, |_| true).is_none() {
                            c.insert(k, k + t);
                        }
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.hits + s.misses, threads * per_thread, "lookup counts lost under contention: {s:?}");
        assert!(s.len <= 64);
        assert!(s.hits > 0, "some lookups must have hit: {s:?}");
    }
}
