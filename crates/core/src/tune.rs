//! The tuning report and the legacy one-shot entry point (§VI-B).
//!
//! "The input of the tuning operation requires the DynamicMatrix and the
//! tuner, along with the desired execution space ... Upon completion of the
//! tuning operation, the tuner can be queried for the optimal format" —
//! here the operation also performs the switch, returning a report with the
//! decision and its cost. The session-based API lives in
//! [`crate::Oracle`]; [`tune_multiply`] remains as a thin deprecated
//! wrapper for one-shot `f64` SpMV tuning.

use crate::tuner::{FormatTuner, TuningCost};
use crate::{Oracle, Result};
use morpheus::format::FormatId;
use morpheus::{ConvertOptions, DynamicMatrix};
use morpheus_machine::{Op, VirtualEngine};

/// Outcome of one tuning call ([`Oracle::tune`] and friends).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneReport {
    /// Format the matrix ended up in.
    pub chosen: FormatId,
    /// Format the matrix was in before tuning.
    pub previous: FormatId,
    /// The format the tuning decision named before conversion. On a fresh
    /// decision it differs from `chosen` only when the conversion failed
    /// and the matrix fell back to CSR; on a cache hit the *realized*
    /// decision is served, so `predicted == chosen` even if the original
    /// prediction had been non-viable.
    pub predicted: FormatId,
    /// Cost of the tuning decision on the engine's virtual clock (all
    /// components zero on a cache hit).
    pub cost: TuningCost,
    /// `true` if a format switch was performed.
    pub converted: bool,
    /// The operation the matrix was tuned for.
    pub op: Op,
    /// `true` when the decision came from the session's cache.
    pub cache_hit: bool,
    /// Which conversion path realised the switch (direct kernel, COO hub,
    /// or identity) and its measured wall-clock cost. Unlike
    /// [`TuneReport::cost`], this is host time, not the engine's virtual
    /// clock — it is the real price §VII's amortisation argument is about.
    pub convert: morpheus::ConvertOutcome,
}

/// Tunes the matrix for SpMV on `engine` using `tuner` and switches it to
/// the selected format in place.
///
/// Legacy one-shot entry point: builds a throw-away cache-less
/// [`Oracle`] session per call, so repeated use re-extracts features every
/// time and only supports `f64`. Prefer a long-lived session:
///
/// ```text
/// let mut oracle = Oracle::builder().engine(engine).tuner(tuner).build()?;
/// oracle.tune(&mut m)?;
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use Oracle::builder() — the session facade is generic over scalars, \
            operation-aware, and amortises tuning cost through its decision cache"
)]
pub fn tune_multiply(
    m: &mut DynamicMatrix<f64>,
    tuner: &dyn FormatTuner<f64>,
    engine: &VirtualEngine,
    opts: &ConvertOptions,
) -> Result<TuneReport> {
    let mut oracle = Oracle::builder()
        .engine(engine.clone())
        .tuner(tuner)
        .convert_options(*opts)
        .cache_capacity(0)
        .build()?;
    oracle.tune(m)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::tuner::{RunFirstTuner, TuneDecision};
    use morpheus::CooMatrix;
    use morpheus_machine::{systems, Backend, MatrixAnalysis};

    fn tridiag(n: usize) -> DynamicMatrix<f64> {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..n {
            for d in [-1isize, 0, 1] {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n {
                    rows.push(i);
                    cols.push(j as usize);
                }
            }
        }
        let vals = vec![1.0; rows.len()];
        DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    #[test]
    fn tune_multiply_switches_format() {
        let mut m = tridiag(4000);
        let engine = VirtualEngine::new(systems::a64fx(), Backend::Serial);
        let report =
            tune_multiply(&mut m, &RunFirstTuner::new(3), &engine, &ConvertOptions::default()).unwrap();
        assert_eq!(report.previous, FormatId::Coo);
        assert_eq!(m.format_id(), report.chosen);
        assert_eq!(report.predicted, report.chosen);
        assert_eq!(report.op, Op::Spmv);
        assert!(!report.cache_hit, "one-shot wrapper runs cache-less");
        // Entries preserved through the switch.
        assert_eq!(m.nnz(), 3 * 4000 - 2);
    }

    #[test]
    fn fallback_to_csr_on_nonviable_prediction() {
        /// A tuner that always predicts ELL, even when ELL cannot hold the
        /// matrix within the fill limit.
        struct AlwaysEll;
        impl FormatTuner<f64> for AlwaysEll {
            fn name(&self) -> &'static str {
                "always-ell"
            }
            fn select(
                &self,
                _: &DynamicMatrix<f64>,
                _: &MatrixAnalysis,
                _: &VirtualEngine,
                op: Op,
            ) -> TuneDecision {
                TuneDecision { format: FormatId::Ell, op, cost: TuningCost::default() }
            }
        }

        // Hypersparse with one long row: ELL width explodes.
        let n = 50_000usize;
        let mut rows: Vec<usize> = (0..500).map(|k| (k * 97) % n).collect();
        let mut cols: Vec<usize> = (0..500).map(|k| (k * 31) % n).collect();
        for k in 0..4000 {
            rows.push(7);
            cols.push((k * 11) % n);
        }
        let vals = vec![1.0; rows.len()];
        let mut m = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());

        let engine = VirtualEngine::new(systems::cirrus(), Backend::Serial);
        let report = tune_multiply(&mut m, &AlwaysEll, &engine, &ConvertOptions::default()).unwrap();
        assert_eq!(report.predicted, FormatId::Ell);
        assert_eq!(report.chosen, FormatId::Csr);
        assert_eq!(m.format_id(), FormatId::Csr);
    }

    #[test]
    fn no_conversion_when_already_optimal() {
        let mut m = tridiag(3000);
        let engine = VirtualEngine::new(systems::a64fx(), Backend::Serial);
        // First tune moves it to the optimum; second tune is a no-op switch.
        let first =
            tune_multiply(&mut m, &RunFirstTuner::new(3), &engine, &ConvertOptions::default()).unwrap();
        let second =
            tune_multiply(&mut m, &RunFirstTuner::new(3), &engine, &ConvertOptions::default()).unwrap();
        assert_eq!(second.chosen, first.chosen);
        assert!(!second.converted);
    }
}
