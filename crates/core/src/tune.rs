//! The `tune_multiply` operation (§VI-B).
//!
//! "The input of the tuning operation requires the DynamicMatrix and the
//! tuner, along with the desired execution space ... Upon completion of the
//! tuning operation, the tuner can be queried for the optimal format" — here
//! the operation also performs the switch, returning a report with the
//! decision and its cost.

use crate::tuner::{FormatTuner, TuningCost};
use crate::Result;
use morpheus::format::FormatId;
use morpheus::{ConvertOptions, DynamicMatrix};
use morpheus_machine::{analyze, VirtualEngine};

/// Outcome of one [`tune_multiply`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneReport {
    /// Format the matrix ended up in.
    pub chosen: FormatId,
    /// Format the matrix was in before tuning.
    pub previous: FormatId,
    /// What the tuner originally predicted (differs from `chosen` only when
    /// the conversion failed and the tuner fell back to CSR).
    pub predicted: FormatId,
    /// Cost of the tuning decision on the engine's virtual clock.
    pub cost: TuningCost,
    /// `true` if a format switch was performed.
    pub converted: bool,
}

/// Tunes the matrix for SpMV on `engine` using `tuner` and switches it to
/// the selected format in place.
///
/// If the predicted format cannot be materialised (padding beyond
/// `opts.max_fill`, which can happen when an ML model mispredicts on an
/// adversarial sparsity pattern), the matrix falls back to CSR — the
/// general-purpose default — rather than failing the operation.
pub fn tune_multiply(
    m: &mut DynamicMatrix<f64>,
    tuner: &dyn FormatTuner,
    engine: &VirtualEngine,
    opts: &ConvertOptions,
) -> Result<TuneReport> {
    let analysis = analyze(m);
    let previous = m.format_id();
    let decision = tuner.select(m, &analysis, engine);
    let predicted = decision.format;

    let chosen = if m.convert_to(predicted, opts).is_ok() {
        predicted
    } else {
        // Mispredicted into a non-viable format: fall back to CSR.
        m.convert_to(FormatId::Csr, opts)?;
        FormatId::Csr
    };
    Ok(TuneReport { chosen, previous, predicted, cost: decision.cost, converted: chosen != previous })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::{RunFirstTuner, TuneDecision};
    use morpheus::CooMatrix;
    use morpheus_machine::{systems, Backend, MatrixAnalysis};

    fn tridiag(n: usize) -> DynamicMatrix<f64> {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..n {
            for d in [-1isize, 0, 1] {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n {
                    rows.push(i);
                    cols.push(j as usize);
                }
            }
        }
        let vals = vec![1.0; rows.len()];
        DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    #[test]
    fn tune_multiply_switches_format() {
        let mut m = tridiag(4000);
        let engine = VirtualEngine::new(systems::a64fx(), Backend::Serial);
        let report =
            tune_multiply(&mut m, &RunFirstTuner::new(3), &engine, &ConvertOptions::default()).unwrap();
        assert_eq!(report.previous, FormatId::Coo);
        assert_eq!(m.format_id(), report.chosen);
        assert_eq!(report.predicted, report.chosen);
        // Entries preserved through the switch.
        assert_eq!(m.nnz(), 3 * 4000 - 2);
    }

    #[test]
    fn fallback_to_csr_on_nonviable_prediction() {
        /// A tuner that always predicts ELL, even when ELL cannot hold the
        /// matrix within the fill limit.
        struct AlwaysEll;
        impl FormatTuner for AlwaysEll {
            fn name(&self) -> &'static str {
                "always-ell"
            }
            fn select(&self, _: &DynamicMatrix<f64>, _: &MatrixAnalysis, _: &VirtualEngine) -> TuneDecision {
                TuneDecision { format: FormatId::Ell, cost: TuningCost::default() }
            }
        }

        // Hypersparse with one long row: ELL width explodes.
        let n = 50_000usize;
        let mut rows: Vec<usize> = (0..500).map(|k| (k * 97) % n).collect();
        let mut cols: Vec<usize> = (0..500).map(|k| (k * 31) % n).collect();
        for k in 0..4000 {
            rows.push(7);
            cols.push((k * 11) % n);
        }
        let vals = vec![1.0; rows.len()];
        let mut m = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());

        let engine = VirtualEngine::new(systems::cirrus(), Backend::Serial);
        let report = tune_multiply(&mut m, &AlwaysEll, &engine, &ConvertOptions::default()).unwrap();
        assert_eq!(report.predicted, FormatId::Ell);
        assert_eq!(report.chosen, FormatId::Csr);
        assert_eq!(m.format_id(), FormatId::Csr);
    }

    #[test]
    fn no_conversion_when_already_optimal() {
        let mut m = tridiag(3000);
        let engine = VirtualEngine::new(systems::a64fx(), Backend::Serial);
        // First tune moves it to the optimum; second tune is a no-op switch.
        let first = tune_multiply(&mut m, &RunFirstTuner::new(3), &engine, &ConvertOptions::default()).unwrap();
        let second =
            tune_multiply(&mut m, &RunFirstTuner::new(3), &engine, &ConvertOptions::default()).unwrap();
        assert_eq!(second.chosen, first.chosen);
        assert!(!second.converted);
    }
}
