//! The tuning report (§VI-B).
//!
//! "The input of the tuning operation requires the DynamicMatrix and the
//! tuner, along with the desired execution space ... Upon completion of the
//! tuning operation, the tuner can be queried for the optimal format" —
//! here the operation also performs the switch, returning a report with the
//! decision and its cost. Tuning runs through [`crate::Oracle`] sessions;
//! the pre-facade `tune_multiply` free function has been removed (build a
//! session with `cache_capacity(0)` for one-shot behaviour).

use crate::tuner::TuningCost;
use morpheus::format::FormatId;
use morpheus::KernelVariant;
use morpheus_machine::Op;

/// How the execution stage following a tune was scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStatus {
    /// No execution plan was involved: a pure [`crate::Oracle::tune`] (no
    /// execution), or serial execution (nothing to schedule).
    Unplanned,
    /// An [`morpheus::ExecPlan`] was built for this call and cached for
    /// the structure.
    Built,
    /// A cached plan was replayed with zero scheduling work — the
    /// amortised steady state of an iterative loop.
    Reused,
}

impl PlanStatus {
    /// `true` when a cached plan was replayed.
    pub fn is_hit(&self) -> bool {
        matches!(self, PlanStatus::Reused)
    }
}

/// Outcome of one tuning call ([`crate::Oracle::tune`] and friends).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuneReport {
    /// Format the matrix ended up in.
    pub chosen: FormatId,
    /// Format the matrix was in before tuning.
    pub previous: FormatId,
    /// The format the tuning decision named before conversion. On a fresh
    /// decision it differs from `chosen` only when the conversion failed
    /// and the matrix fell back to CSR; on a cache hit the *realized*
    /// decision is served, so `predicted == chosen` even if the original
    /// prediction had been non-viable.
    pub predicted: FormatId,
    /// Cost of the tuning decision on the engine's virtual clock (all
    /// components zero on a cache hit).
    pub cost: TuningCost,
    /// `true` if a format switch was performed.
    pub converted: bool,
    /// The operation the matrix was tuned for.
    pub op: Op,
    /// `true` when the decision came from the session's cache.
    pub cache_hit: bool,
    /// Whether the execution stage built a fresh [`morpheus::ExecPlan`],
    /// replayed a cached one, or ran unplanned. Always
    /// [`PlanStatus::Unplanned`] for tune-only calls. Describes the plan
    /// *cache* interaction — when `serial_fallback` is set, the acquired
    /// plan warmed the cache but the execution itself ran serial.
    pub plan: PlanStatus,
    /// `true` when a threaded execution found the pool busy with another
    /// client's batch and ran inline on the calling thread — the plan's
    /// kernel bodies (bitwise identical to the pooled execution) when a
    /// plan was acquired, the serial kernel otherwise — instead of
    /// queueing behind it (see
    /// [`crate::ServeStats::pool_busy_fallbacks`]). Always `false` for
    /// tune-only calls and serial engines.
    pub serial_fallback: bool,
    /// The dominant [`KernelVariant`] of the plan that executed this call
    /// (the variant covering the most thread ranges; ranges may mix — a
    /// hub row can run a different body than the tail). `Scalar` for
    /// tune-only calls, serial engines, SpMM (its planned bodies are
    /// scalar) and unplanned fallbacks.
    pub variant: KernelVariant,
    /// Which conversion path realised the switch (direct kernel, COO hub,
    /// or identity) and its measured wall-clock cost. Unlike
    /// [`TuneReport::cost`], this is host time, not the engine's virtual
    /// clock — it is the real price §VII's amortisation argument is about.
    pub convert: morpheus::ConvertOutcome,
    /// Shards of the registered matrix: 1 for a whole-matrix registration
    /// (and for all tune-only calls), ≥ 2 when the service decided a
    /// partitioned handle wins (see
    /// `OracleService::register_partitioned`). For partitioned handles
    /// [`TuneReport::chosen`] and [`TuneReport::variant`] report the
    /// nnz-dominant shard; per-shard detail lives on the handle.
    pub shards: usize,
}
