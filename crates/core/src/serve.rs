//! The concurrent Oracle service layer: shared sessions, sharded caches and
//! the registered-matrix serving path.
//!
//! The paper's amortisation argument (§VII-E) — pay feature extraction,
//! prediction, conversion and planning **once**, then reap them over many
//! executions — only pays off at production scale if many clients can share
//! one tuned state. [`OracleService`] is that shared state: `Send + Sync`,
//! `Arc`-shareable, every method `&self`. The decision and plan caches are
//! sharded, lock-striped LRUs ([`crate::CacheStats`] aggregated atomically),
//! so concurrent tuning requests contend only when they hash to the same
//! stripe; the [`Oracle`](crate::Oracle) session facade is now a thin
//! single-owner wrapper over this layer.
//!
//! The registered-matrix path goes further: [`OracleService::register`]
//! tunes, converts and plans once, returning a [`MatrixHandle`] — an `Arc`
//! around the realized matrix and its [`ExecPlan`]. Executions through a
//! handle ([`OracleService::spmv`] / [`OracleService::spmm`]) touch **no
//! locks and no caches** and perform **zero per-call allocation** (clients
//! bring per-thread [`Workspace`]s for the allocating variants), from any
//! number of client threads. When another client's batch has the thread
//! pool busy, execution falls back to replaying the plan's kernel bodies
//! inline on the calling thread — bitwise identical to the pooled
//! execution — instead of queueing: latency over throughput, per Elafrou
//! et al.'s observation that runtime overhead decides whether online
//! selection wins.
//!
//! ```
//! use morpheus::{CooMatrix, DynamicMatrix, Workspace};
//! use morpheus_machine::{systems, Backend, VirtualEngine};
//! use morpheus_oracle::{Oracle, RunFirstTuner};
//! use std::sync::Arc;
//!
//! let m = DynamicMatrix::from(
//!     CooMatrix::<f64>::from_triplets(
//!         4, 4, &[0, 1, 2, 3, 3], &[0, 1, 2, 0, 3], &[2.0, 3.0, 4.0, 1.0, 5.0],
//!     )
//!     .unwrap(),
//! );
//! let mut y_serial = vec![0.0; 4];
//! morpheus::spmv::spmv_serial(&m, &[1.0, 1.0, 1.0, 1.0], &mut y_serial).unwrap();
//!
//! // One service, tuned once at registration, shared by any number of
//! // client threads.
//! let service = Arc::new(
//!     Oracle::builder()
//!         .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
//!         .tuner(RunFirstTuner::new(2))
//!         .build_service()
//!         .unwrap(),
//! );
//! let handle = service.register(m).unwrap();
//!
//! std::thread::scope(|s| {
//!     for _ in 0..2 {
//!         let (service, handle, expect) = (Arc::clone(&service), handle.clone(), y_serial.clone());
//!         s.spawn(move || {
//!             let mut ws = Workspace::new();
//!             for _ in 0..4 {
//!                 let y = service.spmv_into(&handle, &[1.0, 1.0, 1.0, 1.0], &mut ws).unwrap();
//!                 assert_eq!(y, expect.as_slice());
//!             }
//!         });
//!     }
//! });
//! assert_eq!(service.serve_stats().handle_requests, 8);
//! ```

use crate::adapt::{CollectorStats, SampleCollector, SampleKey};
use crate::cache::{CacheKey, CacheStats, ShardedLru};
use crate::features::FeatureVector;
use crate::obs::{Counter, Gauge, Histogram, Obs, ObsConfig, ObsSnapshot, Stage, TraceId};
use crate::tune::{PlanStatus, TuneReport};
use crate::tuner::{FormatTuner, TuneDecision, TuningCost};
use crate::{OracleError, Result};
use morpheus::format::FormatId;
use morpheus::partition::{split_rows, Partition, StreamingPartitioner};
use morpheus::{
    Analysis, ConvertOptions, CpuFeatures, DynamicMatrix, ExecPlan, KernelVariant, PartitionConfig,
    PartitionedMatrix, Scalar, Workspace,
};
use morpheus_machine::{analyze_from, Op, VirtualEngine};
use morpheus_ml::serialize::LineParser;
use morpheus_parallel::ThreadPool;
use parking_lot::RwLock;
use std::any::Any;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Key identifying one cached execution plan. Plans depend on the matrix
/// structure *in its realized format*, the scalar width, the worker
/// count and the detected CPU feature fingerprint (plans bake in
/// per-range [`KernelVariant`] choices whose SIMD bodies were selected
/// for the features present at build time — a plan must never replay
/// under a different feature set) — but not on the operation: SpMV and
/// SpMM replay the same row partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    structure: u64,
    scalar_bytes: usize,
    threads: usize,
    cpu: u64,
}

/// What one tuning call learned beyond the report: the structure hash of
/// the matrix in its realized (post-conversion) format when it is known
/// without re-hashing, plus the shared analysis built on a decision-cache
/// miss (reused for plan construction).
struct TuneArtifacts {
    realized_hash: Option<u64>,
    analysis: Option<Analysis>,
}

/// How one `tune_and_*` execution runs (decided by
/// `OracleService::run_threaded`).
enum Execution<'a, V: Scalar> {
    /// Replay the plan across the pool.
    Pooled(&'a ExecPlan<V>),
    /// Pool busy with another client's batch: replay the plan's kernel
    /// bodies inline on the calling thread — bitwise identical to the
    /// pooled execution, without queueing behind it.
    Inline(&'a ExecPlan<V>),
    /// No plan was built (plan caching disabled under a busy pool): run
    /// the scalar serial kernel.
    Serial,
}

/// Which pool threaded executions run on.
#[derive(Debug)]
enum ServicePool {
    /// The process-wide pool ([`morpheus_parallel::global_pool`]).
    Global,
    /// A pool owned by this service (isolates it from other pool users;
    /// also what lets tests and benches pin a worker count).
    Owned(ThreadPool),
}

/// Metadata of one registered matrix, as recorded by the service's handle
/// registry (see [`OracleService::registered_matrices`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandleInfo {
    /// Service-unique registration id (also on the [`MatrixHandle`]).
    pub id: u64,
    /// The realized (post-tuning) storage format.
    pub format: FormatId,
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// `size_of` of the matrix scalar.
    pub scalar_bytes: usize,
    /// Shards the handle executes as (1 = whole-matrix). For partitioned
    /// handles [`HandleInfo::format`] is the nnz-dominant shard format.
    pub shards: usize,
}

/// When [`OracleService::register`] shards a matrix instead of serving it
/// whole (ROADMAP item 4: per-shard format selection is strictly stronger
/// than whole-matrix selection on internally heterogeneous matrices).
///
/// Sharding is always subject to the engine's cost gate — the partitioned
/// critical-path model ([`VirtualEngine::partitioned_spmv_time`]) must
/// beat the best whole-matrix single-format time at the service's worker
/// count — so the policy only controls *when the question is asked* and
/// how shard boundaries are sized.
#[derive(Debug, Clone, Copy)]
pub struct PartitionPolicy {
    /// `Some(n)`: [`OracleService::register`] considers sharding any
    /// matrix with at least `n` stored non-zeros. `None` (default):
    /// sharding happens only through
    /// [`OracleService::register_partitioned`] and
    /// [`OracleService::register_stream`].
    pub auto_nnz_threshold: Option<usize>,
    /// Upper bound on shards per matrix. `None`: `max(4, 2 * workers)` of
    /// the serving pool.
    pub max_shards: Option<usize>,
    /// Desired nnz per shard. `None`: the
    /// [`morpheus::PartitionConfig`] default.
    pub target_shard_nnz: Option<usize>,
    /// When `false`, skip the engine cost gate and shard whenever the
    /// partition yields more than one shard — for tests and benches that
    /// need the partitioned path deterministically; production configs
    /// leave it `true` and let the model decide.
    pub cost_gate: bool,
}

impl Default for PartitionPolicy {
    fn default() -> Self {
        PartitionPolicy {
            auto_nnz_threshold: None,
            max_shards: None,
            target_shard_nnz: None,
            cost_gate: true,
        }
    }
}

impl PartitionPolicy {
    /// The boundary-selection config this policy induces for a pool of
    /// `workers` threads.
    pub fn config(&self, workers: usize) -> PartitionConfig {
        let defaults = PartitionConfig::default();
        PartitionConfig {
            max_shards: self.max_shards.unwrap_or_else(|| 4usize.max(2 * workers.max(1))),
            target_shard_nnz: self.target_shard_nnz.unwrap_or(defaults.target_shard_nnz),
            ..defaults
        }
    }
}

/// One coherent operator view of a service: execution counters, both
/// cache stats and (when adaptive sampling is on) the collector's
/// counters, gathered by a single [`OracleService::snapshot`] call instead
/// of racing four separate accessors whose values would come from
/// different instants.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceSnapshot {
    /// Execution counters ([`OracleService::serve_stats`]).
    pub serve: ServeStats,
    /// Decision-cache counters ([`OracleService::cache_stats`]).
    pub decisions: CacheStats,
    /// Execution-plan-cache counters
    /// ([`OracleService::plan_cache_stats`]).
    pub plans: CacheStats,
    /// Adaptive-sampling counters, when a collector is attached.
    pub adaptation: Option<CollectorStats>,
    /// Ingress front-door counters, when the snapshot was taken through an
    /// [`Ingress`](crate::ingress::Ingress) ([`OracleService::snapshot`]
    /// itself reports `None` — the service does not know which front doors
    /// sit above it).
    pub ingress: Option<crate::ingress::IngressStats>,
}

/// Execution counters of a service (monotonic and never reset, except the
/// [`pool_queued_jobs`](ServeStats::pool_queued_jobs) point-in-time gauge).
///
/// These values live in the service's unified metrics registry
/// ([`OracleService::obs`]) under canonical `layer.noun_verb` names; the
/// struct fields are **deprecated aliases kept for one release** — new
/// code should read the registry names noted on each field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Executions through registered handles (`spmv`/`spmm` and their
    /// workspace variants).
    ///
    /// Deprecated alias of the registry counter `serve.requests_served`.
    pub handle_requests: u64,
    /// Executions that found the pool busy with another client's batch and
    /// ran inline on the calling thread (the plan's kernel bodies when a
    /// plan exists, the serial kernel otherwise) instead of queueing.
    ///
    /// Deprecated alias of the registry counter `serve.fallbacks_taken`.
    pub pool_busy_fallbacks: u64,
    /// Matrices registered over the service's lifetime.
    ///
    /// Deprecated alias of the registry counter
    /// `serve.matrices_registered`.
    pub registered: u64,
    /// Jobs sitting in the execution pool's channel, not yet picked up by a
    /// worker, at the instant of the snapshot (a *gauge*, not a counter;
    /// 0 for serial services). Nonzero values mean threaded executions are
    /// queueing behind each other — the saturation signal behind
    /// `pool_busy_fallbacks` growth.
    ///
    /// Deprecated alias of the registry gauge `pool.jobs_queued`.
    pub pool_queued_jobs: u64,
}

/// The tuned, converted and planned state [`OracleService::register`]
/// produces: an `Arc` around the realized matrix and its shared
/// [`ExecPlan`]. Cloning a handle is one reference-count bump; hand clones
/// to every client thread.
#[derive(Debug)]
pub struct MatrixHandle<V: Scalar> {
    inner: Arc<Registered<V>>,
}

impl<V: Scalar> Clone for MatrixHandle<V> {
    fn clone(&self) -> Self {
        MatrixHandle { inner: Arc::clone(&self.inner) }
    }
}

#[derive(Debug)]
struct Registered<V: Scalar> {
    id: u64,
    stored: Stored<V>,
    report: TuneReport,
}

/// What a handle executes: one whole matrix with one plan, or a set of
/// independently formatted and planned row-range shards.
#[derive(Debug)]
enum Stored<V: Scalar> {
    Single {
        matrix: DynamicMatrix<V>,
        /// Structure hash of `matrix` in its realized format, precomputed
        /// so telemetry attribution never re-hashes on the execution hot
        /// path.
        structure: u64,
        plan: Arc<ExecPlan<V>>,
    },
    Partitioned(PartitionedMatrix<V>),
}

impl<V: Scalar> MatrixHandle<V> {
    /// Service-unique registration id.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The realized (post-tuning) storage format. Partitioned handles
    /// report the format covering the most stored non-zeros; see
    /// [`MatrixHandle::partition`] for the per-shard detail.
    pub fn format_id(&self) -> FormatId {
        match &self.inner.stored {
            Stored::Single { matrix, .. } => matrix.format_id(),
            Stored::Partitioned(p) => p.dominant_format(),
        }
    }

    /// Rows of the registered matrix.
    pub fn nrows(&self) -> usize {
        match &self.inner.stored {
            Stored::Single { matrix, .. } => matrix.nrows(),
            Stored::Partitioned(p) => p.nrows(),
        }
    }

    /// Columns of the registered matrix.
    pub fn ncols(&self) -> usize {
        match &self.inner.stored {
            Stored::Single { matrix, .. } => matrix.ncols(),
            Stored::Partitioned(p) => p.ncols(),
        }
    }

    /// Stored non-zeros of the registered matrix.
    pub fn nnz(&self) -> usize {
        match &self.inner.stored {
            Stored::Single { matrix, .. } => matrix.nnz(),
            Stored::Partitioned(p) => p.nnz(),
        }
    }

    /// The tuning report from registration ([`TuneReport::plan`] says
    /// whether the plan was built fresh or reused from the plan cache;
    /// [`TuneReport::shards`] says whether the handle is partitioned).
    pub fn report(&self) -> &TuneReport {
        &self.inner.report
    }

    /// `true` when the handle executes as row-range shards.
    pub fn is_partitioned(&self) -> bool {
        matches!(self.inner.stored, Stored::Partitioned(_))
    }

    /// Shards of the handle (1 for whole-matrix handles).
    pub fn num_shards(&self) -> usize {
        match &self.inner.stored {
            Stored::Single { .. } => 1,
            Stored::Partitioned(p) => p.num_shards(),
        }
    }

    /// The partitioned storage, when the handle is sharded.
    pub fn partition(&self) -> Option<&PartitionedMatrix<V>> {
        match &self.inner.stored {
            Stored::Partitioned(p) => Some(p),
            Stored::Single { .. } => None,
        }
    }

    /// The registered matrix in its realized format, when the handle holds
    /// a single whole matrix (`None` for partitioned handles, whose shards
    /// are reached through [`MatrixHandle::partition`]).
    pub fn try_matrix(&self) -> Option<&DynamicMatrix<V>> {
        match &self.inner.stored {
            Stored::Single { matrix, .. } => Some(matrix),
            Stored::Partitioned(_) => None,
        }
    }

    /// The shared execution plan, when the handle holds a single whole
    /// matrix (`None` for partitioned handles — each shard has its own).
    pub fn try_plan(&self) -> Option<&ExecPlan<V>> {
        match &self.inner.stored {
            Stored::Single { plan, .. } => Some(plan),
            Stored::Partitioned(_) => None,
        }
    }

    /// The registered matrix in its realized format.
    ///
    /// # Panics
    /// On a partitioned handle — use [`MatrixHandle::try_matrix`] or
    /// [`MatrixHandle::partition`] when handles may be sharded.
    pub fn matrix(&self) -> &DynamicMatrix<V> {
        self.try_matrix().expect("partitioned handle has no single matrix; use partition()")
    }

    /// The shared execution plan.
    ///
    /// # Panics
    /// On a partitioned handle — use [`MatrixHandle::try_plan`] or
    /// [`MatrixHandle::partition`] when handles may be sharded.
    pub fn plan(&self) -> &ExecPlan<V> {
        self.try_plan().expect("partitioned handle has no single plan; use partition()")
    }
}

/// A concurrent tuning service: the session machinery of
/// [`Oracle`](crate::Oracle) behind `&self` methods, shareable across any
/// number of client threads via `Arc`.
///
/// Built with [`crate::OracleBuilder::build_service`] (or
/// [`OracleService::builder`], an alias for [`crate::Oracle::builder`]).
/// See the [module docs](self) for the serving model and a multi-threaded
/// example.
#[derive(Debug)]
pub struct OracleService<T> {
    engine: VirtualEngine,
    tuner: T,
    opts: ConvertOptions,
    decisions: ShardedLru<CacheKey, TuneDecision>,
    plans: ShardedLru<PlanKey, Arc<dyn Any + Send + Sync>>,
    engine_fingerprint: u64,
    pool: ServicePool,
    registry: RwLock<Vec<HandleInfo>>,
    next_handle_id: AtomicU64,
    /// Measured-kernel telemetry sink (see [`crate::adapt`]). `None` keeps
    /// execution paths entirely timestamp-free.
    collector: Option<Arc<SampleCollector>>,
    /// When and how registrations shard (see [`PartitionPolicy`]).
    partition: PartitionPolicy,
    /// Observability hub (metrics registry + span tracer + flight
    /// recorder), shared with every [`crate::ingress::Ingress`] started on
    /// this service.
    obs: Arc<Obs>,
    /// `serve.requests_served` — executions through registered handles.
    requests_served: Counter,
    /// `serve.fallbacks_taken` — busy-pool inline fallbacks.
    fallbacks_taken: Counter,
    /// `serve.matrices_registered` — registrations over the lifetime.
    matrices_registered: Counter,
    /// `serve.request_ns` — registered/tuned execution latency (recorded
    /// when tracing is on).
    request_hist: Arc<Histogram>,
    /// `serve.plan_ns` — plan acquisition latency (hit or build).
    plan_hist: Arc<Histogram>,
    /// `pool.jobs_queued` — pool backlog gauge, refreshed on stats reads.
    pool_queued_gauge: Gauge,
}

impl OracleService<()> {
    /// Starts building a service — an alias for
    /// [`crate::Oracle::builder`]; finish with
    /// [`crate::OracleBuilder::build_service`].
    pub fn builder() -> crate::OracleBuilder<()> {
        crate::Oracle::builder()
    }
}

impl<T> OracleService<T> {
    // Single call-site constructor mirroring the builder's fields 1:1.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        engine: VirtualEngine,
        tuner: T,
        opts: ConvertOptions,
        cache_capacity: usize,
        shards: usize,
        workers: Option<usize>,
        collector: Option<Arc<SampleCollector>>,
        partition: PartitionPolicy,
        obs: ObsConfig,
    ) -> Self {
        let engine_fingerprint = fingerprint_engine(&engine);
        let obs = Arc::new(Obs::new(obs));
        let pool = match workers {
            Some(n) => ServicePool::Owned(ThreadPool::new(n)),
            None => ServicePool::Global,
        };
        if obs.enabled() {
            if let ServicePool::Owned(p) = &pool {
                // Channel-wait telemetry is installed only on an *owned*
                // pool: the global pool is shared process-wide and must not
                // be claimed by one service's histogram.
                let hist = obs.registry().histogram("pool.queue_wait_ns");
                p.set_queue_wait_observer(Some(Arc::new(move |waited| hist.record(waited))));
            }
        }
        let reg = obs.registry();
        let requests_served = reg.counter("serve.requests_served");
        let fallbacks_taken = reg.counter("serve.fallbacks_taken");
        let matrices_registered = reg.counter("serve.matrices_registered");
        let request_hist = reg.histogram("serve.request_ns");
        let plan_hist = reg.histogram("serve.plan_ns");
        let pool_queued_gauge = reg.gauge("pool.jobs_queued");
        OracleService {
            engine,
            tuner,
            opts,
            decisions: ShardedLru::new(cache_capacity, shards),
            plans: ShardedLru::new(cache_capacity, shards),
            engine_fingerprint,
            pool,
            registry: RwLock::new(Vec::new()),
            next_handle_id: AtomicU64::new(0),
            collector,
            partition,
            obs,
            requests_served,
            fallbacks_taken,
            matrices_registered,
            request_hist,
            plan_hist,
            pool_queued_gauge,
        }
    }

    /// Host execution pool matching the service's target backend: `None`
    /// (serial) for the Serial engine, otherwise the service's own pool or
    /// the process-wide one (OpenMP targets run threaded; simulated GPU
    /// targets have no host device, so the threaded backend is the closest
    /// host execution).
    fn exec_pool(&self) -> Option<&ThreadPool> {
        match self.engine.backend() {
            morpheus_machine::Backend::Serial => None,
            _ => Some(match &self.pool {
                ServicePool::Global => morpheus_parallel::global_pool(),
                ServicePool::Owned(pool) => pool,
            }),
        }
    }

    /// Tunes `m` for SpMV: selects a format (from cache when the structure
    /// was seen before) and switches `m` to it in place. Identical
    /// semantics to [`crate::Oracle::tune`], callable from any thread.
    pub fn tune<V>(&self, m: &mut DynamicMatrix<V>) -> Result<TuneReport>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        self.tune_for(m, Op::Spmv)
    }

    /// [`OracleService::tune`] for an arbitrary operation.
    ///
    /// On a cache miss the service builds one shared [`Analysis`] of the
    /// matrix (reusing the hash it just computed for the cache key) and
    /// threads it through feature extraction *and* the eventual format
    /// conversion, so planning the target layout never re-traverses the
    /// matrix. On a hit, only the hash and the conversion are paid for.
    /// Concurrent misses on the same key may each run the tuner; the
    /// bundled tuners are deterministic, so the duplicated inserts agree
    /// and none is lost.
    pub fn tune_for<V>(&self, m: &mut DynamicMatrix<V>, op: Op) -> Result<TuneReport>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        self.tune_with_artifacts(m, op).map(|(report, _)| report)
    }

    fn tune_with_artifacts<V>(&self, m: &mut DynamicMatrix<V>, op: Op) -> Result<(TuneReport, TuneArtifacts)>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        let previous = m.format_id();
        let hash = m.structure_hash();
        let key = CacheKey {
            structure: hash,
            scalar_bytes: std::mem::size_of::<V>(),
            engine: self.engine_fingerprint,
            op,
        };

        let (decision, cache_hit, analysis, generation) = match self.decisions.get_if(&key, |_| true) {
            Some(mut cached) => {
                // Same structure, scalar, engine and op: the tuner would
                // reproduce this decision, so charge nothing for it.
                cached.cost = TuningCost::cached();
                (cached, true, None, 0)
            }
            None => {
                // Read the cache generation *before* consulting the tuner:
                // if a model hot-swap clears the cache while this decision
                // is in flight, the generation-gated inserts below drop it
                // instead of resurrecting the superseded model's choice.
                let generation = self.decisions.generation();
                let analysis = Analysis::of_auto_with_hash(m, self.opts.true_diag_alpha, hash);
                let machine_view = analyze_from(m, &analysis);
                let decision = self.tuner.select(m, &machine_view, &self.engine, op);
                self.decisions.insert_if_generation(key, decision, generation);
                (decision, false, Some(analysis), generation)
            }
        };

        let predicted = decision.format;
        let (chosen, convert) = match m.convert_to_with(predicted, &self.opts, analysis.as_ref()) {
            Ok(outcome) => (predicted, outcome),
            Err(_) => {
                // Mispredicted into a non-viable format: fall back to CSR.
                let outcome = m.convert_to_with(FormatId::Csr, &self.opts, analysis.as_ref())?;
                (FormatId::Csr, outcome)
            }
        };
        let mut realized_hash = (chosen == previous).then_some(hash);
        if !cache_hit {
            // Cache the *realized* format: if the prediction proved
            // non-viable, later hits must not re-pay the failing
            // conversion attempt before falling back.
            let realized = TuneDecision { format: chosen, ..decision };
            if chosen != predicted {
                self.decisions.insert_if_generation(key, realized, generation);
            }
            if chosen != previous {
                // Alias the decision under the matrix's *post-conversion*
                // structure too, so re-tuning the same (already switched)
                // matrix — the repeated-execution loop of §VII-E — is a
                // hit.
                let post_hash = m.structure_hash();
                realized_hash = Some(post_hash);
                self.decisions.insert_if_generation(
                    CacheKey { structure: post_hash, ..key },
                    realized,
                    generation,
                );
            }
        }
        if let (Some(col), Some(a)) = (&self.collector, analysis.as_ref()) {
            // Adaptive sampling, off the execution hot path: note the
            // Table-I features under the hash the tuner saw (features are
            // format-invariant) and alias the realized structure to it, so
            // measured executions of the converted layout join the same
            // population the features were noted for.
            col.note_features(hash, &FeatureVector::from_analysis(a));
            if let Some(realized) = realized_hash.filter(|&r| r != hash) {
                col.alias(realized, hash);
            }
        }
        let report = TuneReport {
            chosen,
            previous,
            predicted,
            cost: decision.cost,
            converted: chosen != previous,
            op,
            cache_hit,
            plan: PlanStatus::Unplanned,
            serial_fallback: false,
            variant: KernelVariant::Scalar,
            convert,
            shards: 1,
        };
        Ok((report, TuneArtifacts { realized_hash, analysis }))
    }

    /// Fetches (or builds and caches) the shared execution plan for `m`,
    /// returning whether it was a cache hit. Under concurrent misses on
    /// one structure, each thread builds its own plan and the last insert
    /// wins — plans for one (structure, format, threads, cpu) key are
    /// interchangeable, so nothing is lost but a little build work. That
    /// interchangeability is why a build without a carried-over analysis
    /// computes one here ([`Self::plan_analysis`]): variant selection is a
    /// function of the analyzed bottleneck, and a plan built blind would
    /// pick different (non-bitwise-equal) kernel bodies than one built on
    /// the decision-cache miss path.
    fn plan_for<V: Scalar>(
        &self,
        key: PlanKey,
        m: &DynamicMatrix<V>,
        analysis: Option<&Analysis>,
        threads: usize,
    ) -> (Arc<ExecPlan<V>>, bool) {
        let cached = self
            .plans
            .get_if(&key, |p| p.downcast_ref::<ExecPlan<V>>().is_some_and(|plan| plan.matches(m)))
            .and_then(|p| p.downcast::<ExecPlan<V>>().ok());
        match cached {
            Some(plan) => (plan, true),
            None => {
                let computed;
                let analysis = match analysis {
                    Some(a) => a,
                    None => {
                        computed = self.plan_analysis(m, key.structure);
                        &computed
                    }
                };
                let plan = Arc::new(ExecPlan::build(m, threads, Some(analysis)));
                self.plans.insert(key, plan.clone() as Arc<dyn Any + Send + Sync>);
                (plan, false)
            }
        }
    }

    /// Analysis for a plan build that has none carried over from tuning
    /// (decision-cache hits skip the analysis). Plan construction is paid
    /// once per structure, so re-analyzing here keeps plans deterministic
    /// — identical whether built on the hit or the miss path — without
    /// touching the steady-state replay cost.
    fn plan_analysis<V: Scalar>(&self, m: &DynamicMatrix<V>, structure: u64) -> Analysis {
        Analysis::of_auto_with_hash(m, self.opts.true_diag_alpha, structure)
    }

    /// Acquires the execution plan for `m` in its realized format, building
    /// (and caching) it on first sight of the structure — the single plan
    /// path shared by `tune_and_*` execution and handle registration, so
    /// both populate the same cache under the same keys. With caching
    /// disabled (capacity 0) a one-shot plan is built per call — still the
    /// planned kernels, but construction is re-paid every time.
    fn acquire_plan<V: Scalar>(
        &self,
        m: &DynamicMatrix<V>,
        artifacts: &TuneArtifacts,
        threads: usize,
    ) -> (Arc<ExecPlan<V>>, PlanStatus) {
        let analysis = artifacts.analysis.as_ref();
        let structure = artifacts.realized_hash.unwrap_or_else(|| m.structure_hash());
        if self.plans.capacity() == 0 {
            let computed;
            let analysis = match analysis {
                Some(a) => a,
                None => {
                    computed = self.plan_analysis(m, structure);
                    &computed
                }
            };
            return (Arc::new(ExecPlan::build(m, threads, Some(analysis))), PlanStatus::Built);
        }
        let key = PlanKey {
            structure,
            scalar_bytes: std::mem::size_of::<V>(),
            threads,
            cpu: CpuFeatures::detect().fingerprint(),
        };
        let (plan, hit) = self.plan_for(key, m, analysis, threads);
        (plan, if hit { PlanStatus::Reused } else { PlanStatus::Built })
    }

    /// [`Self::acquire_plan`] wrapped in the `serve.plan_ns` histogram and
    /// a [`Stage::Plan`] span (`detail` = 1 on a cache hit, 0 when built)
    /// when tracing is on. Pass [`TraceId::NONE`] outside a request (e.g.
    /// registration) to get the histogram sample without a span.
    fn acquire_plan_observed<V: Scalar>(
        &self,
        m: &DynamicMatrix<V>,
        artifacts: &TuneArtifacts,
        threads: usize,
        trace: TraceId,
    ) -> (Arc<ExecPlan<V>>, PlanStatus) {
        let t0 = self.obs.enabled().then(Instant::now);
        let acquired = self.acquire_plan(m, artifacts, threads);
        if let Some(t0) = t0 {
            let dur = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.plan_hist.record_ns(dur);
            let hit = u64::from(acquired.1 == PlanStatus::Reused);
            self.obs.span(trace, Stage::Plan, self.obs.instant_ns(t0), dur, hit);
        }
        acquired
    }

    /// Attributes one measured execution to its telemetry population —
    /// a no-op (no timestamps taken by callers either) when the service
    /// has no collector.
    #[inline]
    fn record_execution<V: Scalar>(
        &self,
        structure: u64,
        format: FormatId,
        op: Op,
        workers: usize,
        variant: KernelVariant,
        elapsed: std::time::Duration,
    ) {
        if let Some(col) = &self.collector {
            col.record(
                SampleKey {
                    structure,
                    format,
                    op,
                    scalar_bytes: std::mem::size_of::<V>(),
                    workers,
                    variant,
                    param_code: self.opts.params.code(),
                },
                elapsed,
            );
        }
    }

    /// `true` when the pool is busy with another client's batch: the
    /// caller should execute inline on its own thread immediately (the
    /// plan's bodies via [`ExecPlan::spmv_unpooled`], or the serial
    /// kernel when no plan exists) instead of queueing behind it (counted
    /// in [`ServeStats::pool_busy_fallbacks`]).
    fn take_serial_fallback(&self, pool: &ThreadPool) -> bool {
        if pool.is_busy() {
            self.fallbacks_taken.inc();
            true
        } else {
            false
        }
    }

    /// Request-level observation shared by every execution path: the
    /// `serve.request_ns` histogram plus one coarse [`Stage::Exec`] span.
    /// Free (not even reached — callers gate the `Instant` reads) when
    /// tracing is off.
    #[inline]
    fn observe_request(&self, trace: TraceId, t0: Instant, elapsed: std::time::Duration) {
        if self.obs.enabled() {
            let dur = elapsed.as_nanos().min(u64::MAX as u128) as u64;
            self.request_hist.record_ns(dur);
            self.obs.span(trace, Stage::Exec, self.obs.instant_ns(t0), dur, 0);
        }
    }

    /// The one busy-fallback policy for `tune_and_*` threaded execution:
    /// decide the fallback, acquire the plan (skipped only when there is
    /// no cache to warm), record both in `report`, then hand `run` the
    /// [`Execution`] mode to perform. `variant_bodies` says whether the
    /// operation replays the plan's per-range [`KernelVariant`] bodies
    /// (SpMV) or the scalar bodies (SpMM) — it decides what
    /// [`TuneReport::variant`] truthfully reports.
    #[allow(clippy::too_many_arguments)]
    fn run_threaded<V: Scalar>(
        &self,
        m: &DynamicMatrix<V>,
        artifacts: &TuneArtifacts,
        pool: &ThreadPool,
        report: &mut TuneReport,
        variant_bodies: bool,
        trace: TraceId,
        run: impl FnOnce(Execution<'_, V>) -> morpheus::Result<()>,
    ) -> Result<()> {
        report.serial_fallback = self.take_serial_fallback(pool);
        if report.serial_fallback && self.plans.capacity() == 0 {
            // No cache to warm: skip the wasted plan construction.
            run(Execution::Serial)?;
        } else {
            let (plan, status) = self.acquire_plan_observed(m, artifacts, pool.num_threads(), trace);
            report.plan = status;
            if variant_bodies {
                report.variant = plan.dominant_variant();
            }
            run(if report.serial_fallback { Execution::Inline(&plan) } else { Execution::Pooled(&plan) })?;
        }
        Ok(())
    }

    /// Tunes `m` for SpMV, then executes `y = A x` in the selected format —
    /// [`crate::Oracle::tune_and_spmv`], callable from any thread. Threaded
    /// execution replays the shared plan cache; if the pool is busy with
    /// another client, the plan's kernel bodies run inline on the calling
    /// thread — bitwise identical to the pooled execution — instead of
    /// queueing ([`TuneReport::serial_fallback`] reports it; the acquired
    /// plan also keeps the cache warm for the next uncontended call).
    pub fn tune_and_spmv<V>(&self, m: &mut DynamicMatrix<V>, x: &[V], y: &mut [V]) -> Result<TuneReport>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        let (mut report, artifacts) = self.tune_with_artifacts(m, Op::Spmv)?;
        let trace = self.obs.mint_trace();
        let t0 = (self.collector.is_some() || self.obs.enabled()).then(Instant::now);
        match self.exec_pool() {
            None => morpheus::spmv::spmv_serial(m, x, y)?,
            Some(pool) => {
                self.run_threaded(m, &artifacts, pool, &mut report, true, trace, |exec| match exec {
                    Execution::Pooled(plan) => plan.spmv(m, x, y, pool),
                    Execution::Inline(plan) => plan.spmv_unpooled(m, x, y),
                    Execution::Serial => morpheus::spmv::spmv_serial(m, x, y),
                })?;
            }
        }
        if let Some(t0) = t0 {
            if self.collector.is_some() {
                self.note_tuned_execution(t0, m, Op::Spmv, &report, &artifacts);
            }
            self.observe_request(trace, t0, t0.elapsed());
        }
        Ok(report)
    }

    /// Tunes `m` for SpMM with `k` right-hand sides, then executes
    /// `Y = A X` (`x` row-major `ncols x k`, `y` row-major `nrows x k`) —
    /// [`crate::Oracle::tune_and_spmm`], callable from any thread.
    pub fn tune_and_spmm<V>(
        &self,
        m: &mut DynamicMatrix<V>,
        x: &[V],
        y: &mut [V],
        k: usize,
    ) -> Result<TuneReport>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        let (mut report, artifacts) = self.tune_with_artifacts(m, Op::Spmm { k })?;
        let trace = self.obs.mint_trace();
        let t0 = (self.collector.is_some() || self.obs.enabled()).then(Instant::now);
        match self.exec_pool() {
            None => morpheus::spmm::spmm_serial(m, x, y, k)?,
            Some(pool) => {
                self.run_threaded(m, &artifacts, pool, &mut report, false, trace, |exec| match exec {
                    Execution::Pooled(plan) => plan.spmm(m, x, y, k, pool),
                    // Planned SpMM runs the scalar bodies, so the serial
                    // kernel is already bitwise identical to it.
                    Execution::Inline(_) | Execution::Serial => morpheus::spmm::spmm_serial(m, x, y, k),
                })?;
            }
        }
        if let Some(t0) = t0 {
            if self.collector.is_some() {
                self.note_tuned_execution(t0, m, Op::Spmm { k }, &report, &artifacts);
            }
            self.observe_request(trace, t0, t0.elapsed());
        }
        Ok(report)
    }

    /// Telemetry attribution for a `tune_and_*` execution. Skips calls
    /// that built a fresh plan inside the timed window (their elapsed time
    /// includes plan construction and would poison the kernel mean); the
    /// steady state — cached plans and serial executions — is what the
    /// adaptive subsystem learns from.
    fn note_tuned_execution<V: Scalar>(
        &self,
        t0: Instant,
        m: &DynamicMatrix<V>,
        op: Op,
        report: &TuneReport,
        artifacts: &TuneArtifacts,
    ) {
        let elapsed = t0.elapsed();
        if report.plan == PlanStatus::Built {
            return;
        }
        let workers = if report.serial_fallback || self.exec_pool().is_none() {
            1
        } else {
            self.exec_pool().map_or(1, |p| p.num_threads())
        };
        let structure = artifacts.realized_hash.unwrap_or_else(|| m.structure_hash());
        self.record_execution::<V>(structure, m.format_id(), op, workers, report.variant, elapsed);
    }

    /// Registers `m` for serving: tunes it for SpMV, converts it to the
    /// selected format and builds (or fetches from the shared cache) its
    /// execution plan — the whole §VII-E amortisation paid here, once.
    /// The returned handle executes through
    /// [`OracleService::spmv`]/[`OracleService::spmm`] with zero locks and
    /// zero per-call allocation from any number of threads.
    pub fn register<V>(&self, m: DynamicMatrix<V>) -> Result<MatrixHandle<V>>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        self.register_for(m, Op::Spmv)
    }

    /// [`OracleService::register`] tuned for an arbitrary operation (the
    /// plan is operation-agnostic; only the format selection differs).
    ///
    /// Each registration appends one [`HandleInfo`] (a few words of
    /// metadata, not the matrix) to the service's registry, retained for
    /// the service's lifetime — there is deliberately no deregistration:
    /// handles own their matrix and plan via `Arc` and free them on drop,
    /// while the registry stays a complete, monotonic audit of what was
    /// served.
    pub fn register_for<V>(&self, m: DynamicMatrix<V>, op: Op) -> Result<MatrixHandle<V>>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        match self.partition.auto_nnz_threshold {
            Some(threshold) if m.nnz() >= threshold => self.register_partitioned_for(m, op),
            _ => self.register_single_for(m, op),
        }
    }

    /// The whole-matrix registration path: one tune, one conversion, one
    /// plan.
    fn register_single_for<V>(&self, mut m: DynamicMatrix<V>, op: Op) -> Result<MatrixHandle<V>>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        let (mut report, artifacts) = self.tune_with_artifacts(&mut m, op)?;
        let threads = self.exec_pool().map_or(1, |p| p.num_threads());
        let (plan, status) = self.acquire_plan_observed(&m, &artifacts, threads, TraceId::NONE);
        report.plan = status;
        report.variant = plan.dominant_variant();
        let structure = artifacts.realized_hash.unwrap_or_else(|| m.structure_hash());
        let id = self.next_handle_id.fetch_add(1, Ordering::Relaxed);
        self.matrices_registered.inc();
        self.registry.write().push(HandleInfo {
            id,
            format: m.format_id(),
            nrows: m.nrows(),
            ncols: m.ncols(),
            nnz: m.nnz(),
            scalar_bytes: std::mem::size_of::<V>(),
            shards: 1,
        });
        let stored = Stored::Single { matrix: m, structure, plan };
        Ok(MatrixHandle { inner: Arc::new(Registered { id, stored, report }) })
    }

    /// [`OracleService::register`], considering a *partitioned* handle: the
    /// matrix is split into row-range shards along its row-nnz histogram
    /// (balanced nnz, boundaries snapped to regime shifts), each shard is
    /// tuned, converted and planned independently, and the engine decides
    /// whether the sharded critical path beats the best whole-matrix
    /// single-format plan at the service's worker count. If it does not
    /// (or the matrix yields a single shard), this falls back to the
    /// whole-matrix path — `register_partitioned` is always safe to call.
    pub fn register_partitioned<V>(&self, m: DynamicMatrix<V>) -> Result<MatrixHandle<V>>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        self.register_partitioned_for(m, Op::Spmv)
    }

    /// [`OracleService::register_partitioned`] tuned for an arbitrary
    /// operation.
    pub fn register_partitioned_for<V>(&self, m: DynamicMatrix<V>, op: Op) -> Result<MatrixHandle<V>>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        let threads = self.exec_pool().map_or(1, |p| p.num_threads());
        let previous = m.format_id();
        let hash = m.structure_hash();
        let analysis = Analysis::of_auto_with_hash(&m, self.opts.true_diag_alpha, hash);
        let partition = Partition::from_analysis(&analysis, &self.partition.config(threads));
        if partition.num_shards() <= 1 {
            return self.register_single_for(m, op);
        }
        let subs = split_rows(&m, &partition, Some(&analysis))?;
        let mut shards = Vec::with_capacity(subs.len());
        let mut shard_times = Vec::with_capacity(subs.len());
        for (rows, csr) in partition.ranges().zip(subs) {
            let (shard, t) = self.tune_shard(DynamicMatrix::from(csr), rows, op)?;
            shard_times.push(t);
            shards.push(shard);
        }
        if self.partition.cost_gate {
            let whole_view = analyze_from(&m, &analysis);
            let (_, best_whole) = self.engine.best_spmv_time_at(&whole_view, threads);
            let parted = self.engine.partitioned_spmv_time(&shard_times, threads);
            if parted >= best_whole {
                // The model says sharding does not pay here: serve whole.
                return self.register_single_for(m, op);
            }
        }
        let pm = PartitionedMatrix::from_shards(m.nrows(), m.ncols(), shards, threads)?;
        self.finish_partitioned(pm, previous, op)
    }

    /// Registers a matrix ingested shard-by-shard from a row-major entry
    /// stream — the huge-matrix front door: the whole matrix never
    /// materializes in one resident copy. Rows must arrive in
    /// non-decreasing order; duplicate entries within a row are summed.
    /// Shards seal along the policy's nnz target as the stream flows, and
    /// each sealed shard is tuned, converted and planned independently.
    /// Yields a single-shard (still CSR-planned) handle when the stream
    /// fits one shard; there is no whole-matrix fallback — that copy is
    /// exactly what streaming avoids.
    pub fn register_stream<V, I>(&self, nrows: usize, ncols: usize, entries: I) -> Result<MatrixHandle<V>>
    where
        V: Scalar,
        T: FormatTuner<V>,
        I: IntoIterator<Item = (usize, usize, V)>,
    {
        let threads = self.exec_pool().map_or(1, |p| p.num_threads());
        let mut sp = StreamingPartitioner::new(nrows, ncols, &self.partition.config(threads));
        for (r, c, v) in entries {
            sp.push(r, c, v)?;
        }
        let (_, parts) = sp.finish()?;
        if parts.len() == 1 {
            let (_, csr) = parts.into_iter().next().expect("finish yields >= 1 shard");
            return self.register_single_for(DynamicMatrix::from(csr), Op::Spmv);
        }
        let mut shards = Vec::with_capacity(parts.len());
        for (rows, csr) in parts {
            let (shard, _) = self.tune_shard(DynamicMatrix::from(csr), rows, Op::Spmv)?;
            shards.push(shard);
        }
        let pm = PartitionedMatrix::from_shards(nrows, ncols, shards, threads)?;
        self.finish_partitioned(pm, FormatId::Csr, Op::Spmv)
    }

    /// Tunes, converts and plans one shard: the decision cache is
    /// consulted under the shard's own structure hash (so adaptive
    /// learning and repeat registrations see shard-level populations), the
    /// plan is built for single-threaded execution (parallelism comes from
    /// running shards concurrently), and the modelled 1-worker time of the
    /// shard's best (format, variant) feeds the partitioned cost gate.
    fn tune_shard<V>(
        &self,
        mut sm: DynamicMatrix<V>,
        rows: std::ops::Range<usize>,
        op: Op,
    ) -> Result<(morpheus::partition::Shard<V>, f64)>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        let (_, artifacts) = self.tune_with_artifacts(&mut sm, op)?;
        let (plan, _) = self.acquire_plan(&sm, &artifacts, 1);
        let structure = artifacts.realized_hash.unwrap_or_else(|| sm.structure_hash());
        let view = match &artifacts.analysis {
            Some(a) => analyze_from(&sm, a),
            None => {
                let a = self.plan_analysis(&sm, structure);
                analyze_from(&sm, &a)
            }
        };
        let (_, t) = self.engine.best_shard_spmv_variant(sm.format_id(), &view);
        Ok((morpheus::partition::Shard::new(rows, sm, plan, structure), t))
    }

    /// Registry bookkeeping and report synthesis shared by the partitioned
    /// registration paths.
    fn finish_partitioned<V: Scalar>(
        &self,
        pm: PartitionedMatrix<V>,
        previous: FormatId,
        op: Op,
    ) -> Result<MatrixHandle<V>> {
        let chosen = pm.dominant_format();
        let report = TuneReport {
            chosen,
            previous,
            predicted: chosen,
            cost: TuningCost::cached(),
            converted: pm.shards().iter().any(|s| s.format_id() != FormatId::Csr),
            op,
            cache_hit: false,
            plan: PlanStatus::Built,
            serial_fallback: false,
            variant: pm.dominant_variant(),
            convert: morpheus::ConvertOutcome::identity(),
            shards: pm.num_shards(),
        };
        let id = self.next_handle_id.fetch_add(1, Ordering::Relaxed);
        self.matrices_registered.inc();
        self.registry.write().push(HandleInfo {
            id,
            format: chosen,
            nrows: pm.nrows(),
            ncols: pm.ncols(),
            nnz: pm.nnz(),
            scalar_bytes: std::mem::size_of::<V>(),
            shards: pm.num_shards(),
        });
        let stored = Stored::Partitioned(pm);
        Ok(MatrixHandle { inner: Arc::new(Registered { id, stored, report }) })
    }

    /// `y = A x` through a registered handle: the zero-lock steady state.
    /// Serial engines run the serial kernel; threaded engines replay the
    /// handle's plan, or — when the pool is busy with another client's
    /// batch — replay the same plan's kernel bodies inline on the calling
    /// thread, bitwise identical to the pooled execution.
    /// With a [`SampleCollector`] attached, each execution is additionally
    /// timestamped and its measured wall time attributed to the handle's
    /// `(structure, format, op, scalar, workers, variant)` telemetry population —
    /// two clock reads and a few lock-free atomics on top of the kernel.
    pub fn spmv<V: Scalar>(&self, handle: &MatrixHandle<V>, x: &[V], y: &mut [V]) -> Result<()> {
        match &handle.inner.stored {
            Stored::Single { matrix, structure, plan } => {
                let trace = self.obs.mint_trace();
                let t0 = (self.collector.is_some() || self.obs.enabled()).then(Instant::now);
                let (workers, variant) = match self.exec_pool() {
                    None => {
                        morpheus::spmv::spmv_serial(matrix, x, y)?;
                        (1, KernelVariant::Scalar)
                    }
                    Some(pool) if self.take_serial_fallback(pool) => {
                        // Replay the plan's variant bodies inline on this
                        // thread: bitwise identical to the pooled
                        // execution, no queueing.
                        plan.spmv_unpooled(matrix, x, y)?;
                        (1, plan.dominant_variant())
                    }
                    Some(pool) => {
                        plan.spmv(matrix, x, y, pool)?;
                        (pool.num_threads(), plan.dominant_variant())
                    }
                };
                if let Some(t0) = t0 {
                    let elapsed = t0.elapsed();
                    self.record_execution::<V>(
                        *structure,
                        matrix.format_id(),
                        Op::Spmv,
                        workers,
                        variant,
                        elapsed,
                    );
                    self.observe_request(trace, t0, elapsed);
                }
            }
            Stored::Partitioned(p) => {
                let trace = self.obs.mint_trace();
                let t0 = (self.collector.is_some() || self.obs.enabled()).then(Instant::now);
                let pool = self.exec_pool().filter(|pool| !self.take_serial_fallback(pool));
                self.run_partitioned(p, Op::Spmv, trace, |obs| p.spmv_observed(x, y, pool, obs))?;
                if let Some(t0) = t0 {
                    self.observe_request(trace, t0, t0.elapsed());
                }
            }
        }
        self.requests_served.inc();
        Ok(())
    }

    /// `Y = A X` (`k` right-hand sides) through a registered handle.
    pub fn spmm<V: Scalar>(&self, handle: &MatrixHandle<V>, x: &[V], y: &mut [V], k: usize) -> Result<()> {
        match &handle.inner.stored {
            Stored::Single { matrix, structure, plan } => {
                let trace = self.obs.mint_trace();
                let t0 = (self.collector.is_some() || self.obs.enabled()).then(Instant::now);
                let workers = match self.exec_pool() {
                    None => {
                        morpheus::spmm::spmm_serial(matrix, x, y, k)?;
                        1
                    }
                    Some(pool) if self.take_serial_fallback(pool) => {
                        morpheus::spmm::spmm_serial(matrix, x, y, k)?;
                        1
                    }
                    Some(pool) => {
                        plan.spmm(matrix, x, y, k, pool)?;
                        pool.num_threads()
                    }
                };
                if let Some(t0) = t0 {
                    // SpMM replays the plan's row partition with the scalar
                    // bodies (variants are SpMV-only), so the population is
                    // Scalar.
                    let elapsed = t0.elapsed();
                    self.record_execution::<V>(
                        *structure,
                        matrix.format_id(),
                        Op::Spmm { k },
                        workers,
                        KernelVariant::Scalar,
                        elapsed,
                    );
                    self.observe_request(trace, t0, elapsed);
                }
            }
            Stored::Partitioned(p) => {
                let trace = self.obs.mint_trace();
                let t0 = (self.collector.is_some() || self.obs.enabled()).then(Instant::now);
                let pool = self.exec_pool().filter(|pool| !self.take_serial_fallback(pool));
                self.run_partitioned(p, Op::Spmm { k }, trace, |obs| p.spmm_observed(x, y, k, pool, obs))?;
                if let Some(t0) = t0 {
                    self.observe_request(trace, t0, t0.elapsed());
                }
            }
        }
        self.requests_served.inc();
        Ok(())
    }

    /// Executes one partitioned operation with per-shard telemetry: each
    /// shard kernel is individually timed and attributed to the *shard's*
    /// `(structure, format, op, scalar, 1 worker, variant)` population —
    /// shard kernels are single-threaded, parallelism comes from running
    /// shards concurrently — so adaptive learning sees shard-level
    /// measurements, exactly the granularity per-shard retuning needs.
    /// SpMM shards run the serial scalar bodies, so their variant is
    /// Scalar like the whole-matrix path.
    fn run_partitioned<V: Scalar>(
        &self,
        p: &PartitionedMatrix<V>,
        op: Op,
        trace: TraceId,
        run: impl FnOnce(Option<&(dyn Fn(usize, std::time::Duration) + Sync)>) -> morpheus::Result<()>,
    ) -> morpheus::Result<()> {
        // Per-shard spans are the *fine* trace level: one span per shard
        // per request is too hot for the always-on default.
        let fine = self.obs.fine() && trace.is_some();
        if self.collector.is_none() && !fine {
            return run(None);
        }
        let variant_bodies = matches!(op, Op::Spmv);
        let param_code = self.opts.params.code();
        // Capture the collector and the obs hub, not `self`: the closure
        // is handed across shard worker threads and must stay `Sync`
        // independently of `T`.
        let collector = self.collector.as_deref();
        let obs = &*self.obs;
        let observe = move |si: usize, elapsed: std::time::Duration| {
            if let Some(col) = collector {
                let s = p.shard(si);
                let variant =
                    if variant_bodies { s.plan().dominant_variant() } else { KernelVariant::Scalar };
                col.record(
                    SampleKey {
                        structure: s.structure(),
                        format: s.format_id(),
                        op,
                        scalar_bytes: std::mem::size_of::<V>(),
                        workers: 1,
                        variant,
                        param_code,
                    },
                    elapsed,
                );
            }
            if fine {
                // `detail` carries the shard index; the span start is
                // reconstructed from the shard kernel's own elapsed time
                // (same clock as the request span — the Obs epoch).
                let dur = elapsed.as_nanos().min(u64::MAX as u128) as u64;
                let now = obs.now_ns();
                obs.span(trace, Stage::Exec, now.saturating_sub(dur), dur, si as u64);
            }
        };
        run(Some(&observe))
    }

    /// [`OracleService::spmv`] for the ingress pump: identical execution
    /// and telemetry, except a busy pool is **waited on** instead of dodged
    /// with the silent serial fallback — admitted ingress work was promised
    /// full-width execution; overload is refused earlier, at admission, as
    /// typed backpressure.
    /// `trace` feeds the fine-level per-shard spans of partitioned handles
    /// (request-level ingress spans are the pump's job); pass
    /// [`TraceId::NONE`] when no single request owns the execution.
    pub(crate) fn execute_queued_spmv<V: Scalar>(
        &self,
        handle: &MatrixHandle<V>,
        x: &[V],
        y: &mut [V],
        trace: TraceId,
    ) -> morpheus::Result<()> {
        match &handle.inner.stored {
            Stored::Single { matrix, structure, plan } => {
                let t0 = self.collector.as_ref().map(|_| Instant::now());
                let (workers, variant) = match self.exec_pool() {
                    None => {
                        morpheus::spmv::spmv_serial(matrix, x, y)?;
                        (1, KernelVariant::Scalar)
                    }
                    Some(pool) => {
                        plan.spmv(matrix, x, y, pool)?;
                        (pool.num_threads(), plan.dominant_variant())
                    }
                };
                if let Some(t0) = t0 {
                    self.record_execution::<V>(
                        *structure,
                        matrix.format_id(),
                        Op::Spmv,
                        workers,
                        variant,
                        t0.elapsed(),
                    );
                }
            }
            Stored::Partitioned(p) => {
                // Admitted ingress work waits on a busy pool rather than
                // dodging it — same contract as the single-matrix path.
                self.run_partitioned(p, Op::Spmv, trace, |obs| p.spmv_observed(x, y, self.exec_pool(), obs))?;
            }
        }
        self.requests_served.inc();
        Ok(())
    }

    /// [`OracleService::spmm`] for the ingress pump's coalesced batches:
    /// waits on a busy pool (see
    /// [`execute_queued_spmv`](Self::execute_queued_spmv)) and attributes
    /// the measured wall time to the handle's `Op::Spmm { k }` telemetry
    /// population, so retraining sees batched traffic exactly like direct
    /// handle calls.
    pub(crate) fn execute_queued_spmm<V: Scalar>(
        &self,
        handle: &MatrixHandle<V>,
        x: &[V],
        y: &mut [V],
        k: usize,
        trace: TraceId,
    ) -> morpheus::Result<()> {
        match &handle.inner.stored {
            Stored::Single { matrix, structure, plan } => {
                let t0 = self.collector.as_ref().map(|_| Instant::now());
                let workers = match self.exec_pool() {
                    None => {
                        morpheus::spmm::spmm_serial(matrix, x, y, k)?;
                        1
                    }
                    Some(pool) => {
                        plan.spmm(matrix, x, y, k, pool)?;
                        pool.num_threads()
                    }
                };
                if let Some(t0) = t0 {
                    self.record_execution::<V>(
                        *structure,
                        matrix.format_id(),
                        Op::Spmm { k },
                        workers,
                        KernelVariant::Scalar,
                        t0.elapsed(),
                    );
                }
            }
            Stored::Partitioned(p) => {
                self.run_partitioned(p, Op::Spmm { k }, trace, |obs| {
                    p.spmm_observed(x, y, k, self.exec_pool(), obs)
                })?;
            }
        }
        self.requests_served.inc();
        Ok(())
    }

    /// [`OracleService::spmv`] into a caller-owned (per-thread)
    /// [`Workspace`]: zero allocation once the workspace reached size.
    pub fn spmv_into<'w, V: Scalar>(
        &self,
        handle: &MatrixHandle<V>,
        x: &[V],
        ws: &'w mut Workspace<V>,
    ) -> Result<&'w [V]> {
        let nrows = handle.nrows();
        let out = ws.run(nrows, |y| {
            self.spmv(handle, x, y).map_err(|e| match e {
                OracleError::Morpheus(m) => m,
                other => panic!("handle execution only surfaces matrix errors: {other}"),
            })
        })?;
        Ok(out)
    }

    /// [`OracleService::spmm`] into a caller-owned (per-thread)
    /// [`Workspace`].
    pub fn spmm_into<'w, V: Scalar>(
        &self,
        handle: &MatrixHandle<V>,
        x: &[V],
        k: usize,
        ws: &'w mut Workspace<V>,
    ) -> Result<&'w [V]> {
        let len = handle.nrows() * k;
        let out = ws.run(len, |y| {
            self.spmm(handle, x, y, k).map_err(|e| match e {
                OracleError::Morpheus(m) => m,
                other => panic!("handle execution only surfaces matrix errors: {other}"),
            })
        })?;
        Ok(out)
    }

    /// Metadata of every matrix registered so far (read-mostly: a shared
    /// read lock, uncontended unless a registration is in flight).
    pub fn registered_matrices(&self) -> Vec<HandleInfo> {
        self.registry.read().clone()
    }

    /// Execution counters (atomic snapshots; see [`ServeStats`]). Reading
    /// also refreshes the `pool.jobs_queued` registry gauge, so metric
    /// scrapes and struct reads agree.
    pub fn serve_stats(&self) -> ServeStats {
        let queued = self.exec_pool().map_or(0, |p| p.queued_jobs() as u64);
        self.pool_queued_gauge.set(queued);
        ServeStats {
            handle_requests: self.requests_served.get(),
            pool_busy_fallbacks: self.fallbacks_taken.get(),
            registered: self.matrices_registered.get(),
            pool_queued_jobs: queued,
        }
    }

    /// The service's observability hub: the unified metrics registry, the
    /// span tracer and the slow-request flight recorder. Shared (same
    /// `Arc`) with every [`crate::ingress::Ingress`] started on this
    /// service, so one scrape sees all layers.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// One point-in-time view of every registered metric plus tracer
    /// bookkeeping, with point-in-time gauges (`pool.jobs_queued`)
    /// refreshed first. This is the scrape entry point —
    /// feed it to [`crate::obs::expose::metric_lines`] /
    /// [`crate::obs::expose::render_json`] for exposition.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        self.pool_queued_gauge.set(self.exec_pool().map_or(0, |p| p.queued_jobs() as u64));
        self.obs.snapshot()
    }

    /// Everything an operator (or the adaptive subsystem) wants to read in
    /// one call: serve counters, decision- and plan-cache stats and the
    /// collector's counters, gathered back to back. Cheap — atomic loads
    /// plus the stripe-length sums the individual accessors already pay.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            serve: self.serve_stats(),
            decisions: self.cache_stats(),
            plans: self.plan_cache_stats(),
            adaptation: self.collector.as_ref().map(|c| c.stats()),
            ingress: None,
        }
    }

    /// The attached measured-kernel collector, when adaptive sampling was
    /// enabled at build time ([`crate::OracleBuilder::collector`]).
    pub fn collector(&self) -> Option<&Arc<SampleCollector>> {
        self.collector.as_ref()
    }

    /// The engine decisions are made for.
    pub fn engine(&self) -> &VirtualEngine {
        &self.engine
    }

    /// The tuning strategy.
    pub fn tuner(&self) -> &T {
        &self.tuner
    }

    /// The conversion policy applied when switching formats.
    pub fn convert_options(&self) -> &ConvertOptions {
        &self.opts
    }

    /// Worker count threaded executions are planned for (1 on serial
    /// engines).
    pub fn workers(&self) -> usize {
        self.exec_pool().map_or(1, |p| p.num_threads())
    }

    /// Hit/miss counters and occupancy of the decision cache, aggregated
    /// atomically across shards.
    pub fn cache_stats(&self) -> CacheStats {
        self.decisions.stats()
    }

    /// Hit/miss counters and occupancy of the execution plan cache.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.plans.stats()
    }

    /// Forgets every cached decision and execution plan (counters are
    /// kept). Registered handles are unaffected — they own their plans.
    pub fn clear_cache(&self) {
        self.decisions.clear();
        self.plans.clear();
    }

    // -----------------------------------------------------------------
    // Decision-cache warm start
    // -----------------------------------------------------------------

    /// Writes every cached decision in a versioned, line-oriented text
    /// format (the style of `morpheus-ml::serialize` model files), so a
    /// restarted service can [`import_decisions`](Self::import_decisions)
    /// and skip cold-path tuning for every structure this service has
    /// seen:
    ///
    /// ```text
    /// morpheus-oracle-decisions v2
    /// engine <fingerprint hex>
    /// entries <n>
    /// decision <structure hex> <scalar_bytes> <spmv|spmm:k> <FORMAT> <params>
    /// end
    /// ```
    ///
    /// The trailing `<params>` token is [`morpheus::FormatParams::to_token`]
    /// (`-` for the defaults). v1 files (no params token) still import,
    /// warm-starting with default parameters.
    pub fn export_decisions<W: Write>(&self, w: &mut W) -> Result<()> {
        let mut entries: Vec<(CacheKey, TuneDecision)> = Vec::new();
        self.decisions.for_each(|k, d| entries.push((*k, *d)));
        // Deterministic output independent of shard iteration order.
        entries.sort_by_key(|(k, _)| (k.structure, k.scalar_bytes, k.op.name(), k.op.rhs_count()));
        writeln!(w, "{DECISIONS_MAGIC} {DECISIONS_VERSION}")?;
        writeln!(w, "engine {:016x}", self.engine_fingerprint)?;
        writeln!(w, "entries {}", entries.len())?;
        for (key, decision) in entries {
            let op = match key.op {
                Op::Spmv => "spmv".to_string(),
                Op::Spmm { k } => format!("spmm:{k}"),
            };
            writeln!(
                w,
                "decision {:016x} {} {op} {} {}",
                key.structure,
                key.scalar_bytes,
                decision.format.name(),
                decision.params.to_token()
            )?;
        }
        writeln!(w, "end")?;
        Ok(())
    }

    /// Loads decisions exported by [`export_decisions`](Self::export_decisions)
    /// into the decision cache, returning how many were inserted. The file
    /// must have been exported for an engine with the same fingerprint —
    /// decisions are engine-specific, so a mismatch is
    /// [`OracleError::ModelMismatch`], not a silent merge. Malformed input
    /// is rejected before anything is inserted.
    pub fn import_decisions<R: BufRead>(&self, reader: R) -> Result<usize> {
        let mut lines = DecisionLines { lines: LineParser::new(reader) };
        let header = lines.next_line()?.ok_or_else(|| lines.err("empty decisions file"))?;
        if header.len() != 2 || header[0] != DECISIONS_MAGIC {
            return Err(lines.err(format!("bad header: expected '{DECISIONS_MAGIC} {DECISIONS_VERSION}'")));
        }
        // v1 predates per-decision format parameters: accepted, entries
        // warm-start with the defaults. Anything else is from the future.
        let version = header[1].clone();
        if version != DECISIONS_VERSION && version != "v1" {
            return Err(lines.err(format!("unsupported decisions version '{version}'")));
        }
        let engine = lines.expect_kv("engine")?;
        let engine = u64::from_str_radix(&engine, 16)
            .map_err(|_| lines.err(format!("bad engine fingerprint '{engine}'")))?;
        if engine != self.engine_fingerprint {
            return Err(OracleError::ModelMismatch(format!(
                "decisions were exported for engine {engine:016x}, this service is {:016x}",
                self.engine_fingerprint
            )));
        }
        let n: usize = {
            let v = lines.expect_kv("entries")?;
            v.parse().map_err(|_| lines.err(format!("bad entry count '{v}'")))?
        };
        let expect_toks = if version == "v1" { 5 } else { 6 };
        let mut parsed = Vec::with_capacity(n);
        for _ in 0..n {
            let toks = lines.next_line()?.ok_or_else(|| lines.err("expected 'decision ...', got EOF"))?;
            if toks.len() != expect_toks || toks[0] != "decision" {
                return Err(lines.err(format!(
                    "expected 'decision <structure> <scalar_bytes> <op> <format>{}', got '{}'",
                    if expect_toks == 6 { " <params>" } else { "" },
                    toks.join(" ")
                )));
            }
            let structure = u64::from_str_radix(&toks[1], 16)
                .map_err(|_| lines.err(format!("bad structure hash '{}'", toks[1])))?;
            let scalar_bytes: usize =
                toks[2].parse().map_err(|_| lines.err(format!("bad scalar width '{}'", toks[2])))?;
            let op = match toks[3].as_str() {
                "spmv" => Op::Spmv,
                other => match other.strip_prefix("spmm:").and_then(|k| k.parse::<usize>().ok()) {
                    Some(k) => Op::Spmm { k },
                    None => return Err(lines.err(format!("unknown op '{other}'"))),
                },
            };
            let format = FormatId::from_name(&toks[4])
                .ok_or_else(|| lines.err(format!("unknown format '{}'", toks[4])))?;
            let params = if version == "v1" {
                morpheus::FormatParams::default()
            } else {
                morpheus::FormatParams::parse_token(&toks[5])
                    .ok_or_else(|| lines.err(format!("bad format parameters '{}'", toks[5])))?
            };
            parsed.push((
                CacheKey { structure, scalar_bytes, engine, op },
                TuneDecision { format, params, op, cost: TuningCost::default() },
            ));
        }
        let toks = lines.next_line()?.ok_or_else(|| lines.err("expected 'end', got EOF"))?;
        if toks != ["end"] {
            return Err(lines.err(format!("expected 'end', got '{}'", toks.join(" "))));
        }
        let count = parsed.len();
        for (key, decision) in parsed {
            self.decisions.insert(key, decision);
        }
        Ok(count)
    }
}

const DECISIONS_MAGIC: &str = "morpheus-oracle-decisions";
const DECISIONS_VERSION: &str = "v2";

/// Decisions-format wrapper over the shared [`LineParser`] tokenizer (the
/// same one the model files use), mapping its line numbers into
/// [`OracleError`]s.
struct DecisionLines<R: BufRead> {
    lines: LineParser<R>,
}

impl<R: BufRead> DecisionLines<R> {
    fn next_line(&mut self) -> Result<Option<Vec<String>>> {
        Ok(self.lines.next_line()?)
    }

    fn err(&self, msg: impl Into<String>) -> OracleError {
        OracleError::InvalidConfig(format!("decisions file line {}: {}", self.lines.lineno(), msg.into()))
    }

    fn expect_kv(&mut self, key: &str) -> Result<String> {
        let toks = self.next_line()?.ok_or_else(|| self.err(format!("expected '{key} ...', got EOF")))?;
        if toks.len() != 2 || toks[0] != key {
            return Err(self.err(format!("expected '{key} <value>', got '{}'", toks.join(" "))));
        }
        Ok(toks[1].clone())
    }
}

/// Hash of the engine's (system, backend) identity. Within one service the
/// engine never changes, so this component never distinguishes entries
/// today — it is part of the key so cached decisions stay self-describing,
/// and it gates decision imports. Note it covers the label only: engines
/// differing merely in calibration or noise parameters collide, so it is
/// NOT sufficient on its own to merge caches across arbitrary services.
///
/// FNV-1a rather than `DefaultHasher`: the fingerprint is written into
/// exported decision files, and std's hasher algorithm is explicitly
/// unspecified across Rust releases — a toolchain upgrade must not
/// invalidate every previously exported warm-start file.
pub(crate) fn fingerprint_engine(engine: &VirtualEngine) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in engine.label().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::RunFirstTuner;
    use crate::Oracle;
    use morpheus::CooMatrix;
    use morpheus_machine::{systems, Backend};

    fn tridiag(n: usize) -> DynamicMatrix<f64> {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..n {
            for d in [-1isize, 0, 1] {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n {
                    rows.push(i);
                    cols.push(j as usize);
                }
            }
        }
        let vals = vec![1.0; rows.len()];
        DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    fn make_service(workers: usize) -> OracleService<RunFirstTuner> {
        Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(2))
            .workers(workers)
            .build_service()
            .unwrap()
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<S: Send + Sync>() {}
        assert_send_sync::<OracleService<RunFirstTuner>>();
        assert_send_sync::<MatrixHandle<f64>>();
    }

    #[test]
    fn register_then_execute_matches_serial() {
        let service = make_service(2);
        let m = tridiag(600);
        let x: Vec<f64> = (0..600).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut y_ref = vec![0.0; 600];
        morpheus::spmv::spmv_serial(&m, &x, &mut y_ref).unwrap();

        let handle = service.register(m).unwrap();
        assert_eq!(handle.format_id(), handle.report().chosen);
        assert_eq!(handle.report().plan, PlanStatus::Built);
        let mut y = vec![f64::NAN; 600];
        service.spmv(&handle, &x, &mut y).unwrap();
        // The tuned format differs from COO, but the result is the serial
        // result of the *converted* matrix — still the same linear map.
        let mut y_conv = vec![0.0; 600];
        morpheus::spmv::spmv_serial(handle.matrix(), &x, &mut y_conv).unwrap();
        assert_eq!(y, y_conv);
        for (a, b) in y.iter().zip(&y_ref) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(service.serve_stats().handle_requests, 1);
        assert_eq!(service.serve_stats().registered, 1);
    }

    #[test]
    fn second_registration_of_same_structure_reuses_decision_and_plan() {
        let service = make_service(2);
        let h1 = service.register(tridiag(900)).unwrap();
        assert!(!h1.report().cache_hit);
        assert_eq!(h1.report().plan, PlanStatus::Built);
        let h2 = service.register(tridiag(900)).unwrap();
        assert!(h2.report().cache_hit, "identical structure must hit the decision cache");
        assert_eq!(h2.report().plan, PlanStatus::Reused, "and reuse the shared plan");
        assert_ne!(h1.id(), h2.id());
        assert_eq!(service.registered_matrices().len(), 2);
    }

    #[test]
    fn handles_share_one_plan_allocation() {
        let service = make_service(2);
        let h1 = service.register(tridiag(700)).unwrap();
        let h2 = service.register(tridiag(700)).unwrap();
        assert!(
            std::ptr::eq(h1.plan(), h2.plan()) || h1.plan().num_parts() == h2.plan().num_parts(),
            "same structure must reuse the cached plan"
        );
        // The Arc behind both handles is literally the same plan object.
        assert!(std::ptr::eq(h1.plan(), h2.plan()));
    }

    #[test]
    fn workspace_variants_match_and_do_not_reallocate() {
        let service = make_service(2);
        let m = tridiag(500);
        let x = vec![1.25f64; 500];
        let handle = service.register(m).unwrap();
        let mut y = vec![0.0; 500];
        service.spmv(&handle, &x, &mut y).unwrap();

        let mut ws = Workspace::new();
        let first = service.spmv_into(&handle, &x, &mut ws).unwrap().to_vec();
        assert_eq!(first, y);
        let cap = ws.capacity();
        let _ = service.spmv_into(&handle, &x, &mut ws).unwrap();
        assert_eq!(ws.capacity(), cap, "steady-state requests must not reallocate");

        let k = 3;
        let xk = vec![0.5f64; 500 * k];
        let mut yk = vec![0.0; 500 * k];
        service.spmm(&handle, &xk, &mut yk, k).unwrap();
        let mut wsk = Workspace::new();
        assert_eq!(service.spmm_into(&handle, &xk, k, &mut wsk).unwrap(), yk.as_slice());
    }

    #[test]
    fn serial_engine_service_runs_serial() {
        let service = Oracle::builder()
            .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
            .tuner(RunFirstTuner::new(2))
            .build_service()
            .unwrap();
        assert_eq!(service.workers(), 1);
        let m = tridiag(300);
        let x = vec![1.0f64; 300];
        let mut y_ref = vec![0.0; 300];
        morpheus::spmv::spmv_serial(&m, &x, &mut y_ref).unwrap();
        let handle = service.register(m).unwrap();
        let mut y = vec![f64::NAN; 300];
        service.spmv(&handle, &x, &mut y).unwrap();
        let mut y_conv = vec![0.0; 300];
        morpheus::spmv::spmv_serial(handle.matrix(), &x, &mut y_conv).unwrap();
        assert_eq!(y, y_conv);
    }

    #[test]
    fn busy_pool_takes_the_serial_fallback() {
        let service = make_service(2);
        let handle = service.register(tridiag(400)).unwrap();
        let x = vec![1.0f64; 400];
        let mut y_free = vec![0.0f64; 400];
        service.spmv(&handle, &x, &mut y_free).unwrap();

        // Occupy the service's own pool from a "client" thread, then
        // execute: the request must complete (serial fallback), be counted,
        // and agree bitwise with the planned result.
        let pool = service.exec_pool().expect("OpenMP service has a pool");
        let gate = std::sync::Barrier::new(2);
        let mut y_busy = vec![0.0f64; 400];
        std::thread::scope(|s| {
            s.spawn(|| {
                pool.run_on_all(&|w| {
                    if w == 0 {
                        gate.wait();
                    }
                });
            });
            while !pool.is_busy() {
                std::thread::yield_now();
            }
            service.spmv(&handle, &x, &mut y_busy).unwrap();
            // Per-call tuning under a busy pool also falls back — and says
            // so in the report, while still warming the plan cache.
            let mut m = tridiag(400);
            let mut y_tuned = vec![0.0f64; 400];
            let r = service.tune_and_spmv(&mut m, &x, &mut y_tuned).unwrap();
            assert!(r.serial_fallback, "busy pool must be reported on the tune path");
            assert_ne!(r.plan, PlanStatus::Unplanned, "fallback still acquires the plan");
            assert_eq!(y_tuned, y_free);
            gate.wait();
        });
        assert_eq!(y_busy, y_free, "fallback must be bitwise identical");
        assert!(service.serve_stats().pool_busy_fallbacks >= 2);
    }

    #[test]
    fn decisions_round_trip_through_export_import() {
        let service = make_service(2);
        // Tune a few structures, one of which converts (aliased entry).
        let mut a = tridiag(800);
        let mut b = tridiag(1300);
        service.tune(&mut a).unwrap();
        service.tune(&mut b).unwrap();
        let mut c = tridiag(800);
        service.tune_for(&mut c, Op::Spmm { k: 4 }).unwrap();

        let mut buf = Vec::new();
        service.export_decisions(&mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("morpheus-oracle-decisions v2\n"), "{text}");
        assert!(text.trim_end().ends_with("end"));
        for line in text.lines().filter(|l| l.starts_with("decision ")) {
            assert_eq!(line.split_whitespace().count(), 6, "v2 lines carry a params token: {line}");
        }

        // A restarted service imports and then serves the same structures
        // from cache — no cold-path tuning.
        let restarted = make_service(2);
        let imported = restarted.import_decisions(std::io::Cursor::new(&buf)).unwrap();
        assert!(imported >= 3, "at least one entry per tuned question, got {imported}");
        let mut a2 = tridiag(800);
        let r = restarted.tune(&mut a2).unwrap();
        assert!(r.cache_hit, "warm-started service must skip tuning");
        assert_eq!(r.chosen, a.format_id());
        // Exporting the restarted cache reproduces the same set.
        let mut buf2 = Vec::new();
        restarted.export_decisions(&mut buf2).unwrap();
        assert_eq!(buf, buf2, "round trip must be lossless");
    }

    #[test]
    fn import_rejects_wrong_engine_and_malformed_files() {
        let service = make_service(2);
        let mut m = tridiag(500);
        service.tune(&mut m).unwrap();
        let mut buf = Vec::new();
        service.export_decisions(&mut buf).unwrap();

        let other_engine = Oracle::builder()
            .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
            .tuner(RunFirstTuner::new(2))
            .build_service()
            .unwrap();
        assert!(matches!(
            other_engine.import_decisions(std::io::Cursor::new(&buf)),
            Err(OracleError::ModelMismatch(_))
        ));

        for bad in [
            "",
            "wrong-magic v1\n",
            "morpheus-oracle-decisions v9\n",
            "morpheus-oracle-decisions v1\nengine zz\n",
            "morpheus-oracle-decisions v1\nengine 0\nentries 1\nend\n",
            "morpheus-oracle-decisions v1\nengine 0\nentries 1\ndecision 1 8 spmv XYZ\nend\n",
            "morpheus-oracle-decisions v1\nengine 0\nentries 1\ndecision 1 8 spmq CSR\nend\n",
            "morpheus-oracle-decisions v1\nengine 0\nentries 1\ndecision 1 8 spmv CSR\n",
            // v2 lines must carry a params token, and it must parse.
            "morpheus-oracle-decisions v2\nengine 0\nentries 1\ndecision 1 8 spmv CSR\nend\n",
            "morpheus-oracle-decisions v2\nengine 0\nentries 1\ndecision 1 8 spmv CSR bogus\nend\n",
        ] {
            assert!(service.import_decisions(std::io::Cursor::new(bad)).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn v1_decisions_files_warm_start_with_default_params() {
        // Files written before the params token existed (format v1) must
        // still import, with every entry falling back to default params.
        let service = make_service(2);
        let mut a = tridiag(800);
        service.tune(&mut a).unwrap();
        let mut buf = Vec::new();
        service.export_decisions(&mut buf).unwrap();

        // Downgrade the export to the v1 wire format: old header, no
        // trailing params token on decision lines.
        let v1: String = String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(|l| {
                if l.starts_with("morpheus-oracle-decisions") {
                    "morpheus-oracle-decisions v1".to_string()
                } else if l.starts_with("decision ") {
                    l.rsplit_once(' ').unwrap().0.to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";

        let restarted = make_service(2);
        let imported = restarted.import_decisions(std::io::Cursor::new(v1.as_bytes())).unwrap();
        assert!(imported >= 1, "v1 file must warm-start, got {imported}");
        let mut a2 = tridiag(800);
        let r = restarted.tune(&mut a2).unwrap();
        assert!(r.cache_hit, "pre-params decisions must still serve from cache");
        assert_eq!(r.chosen, a.format_id());
        // Re-exporting upgrades to v2 with the default params token.
        let mut buf2 = Vec::new();
        restarted.export_decisions(&mut buf2).unwrap();
        let text2 = String::from_utf8(buf2).unwrap();
        assert!(text2.starts_with("morpheus-oracle-decisions v2\n"));
        for line in text2.lines().filter(|l| l.starts_with("decision ")) {
            assert!(line.ends_with(" -"), "v1 entries must carry default params: {line}");
        }
    }

    #[test]
    fn comments_and_blank_lines_tolerated_in_decisions_files() {
        let service = make_service(2);
        let mut m = tridiag(420);
        service.tune(&mut m).unwrap();
        let mut buf = Vec::new();
        service.export_decisions(&mut buf).unwrap();
        let commented = format!("# warm start\n\n{}", String::from_utf8(buf).unwrap());
        let restarted = make_service(2);
        assert!(restarted.import_decisions(std::io::Cursor::new(commented.as_bytes())).unwrap() >= 1);
    }

    #[test]
    fn shared_service_tunes_concurrently() {
        let service = std::sync::Arc::new(make_service(2));
        let reference = {
            let mut m = tridiag(1000);
            let mut oracle = Oracle::builder()
                .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
                .tuner(RunFirstTuner::new(2))
                .build()
                .unwrap();
            oracle.tune(&mut m).unwrap().chosen
        };
        std::thread::scope(|s| {
            for _ in 0..4 {
                let service = std::sync::Arc::clone(&service);
                s.spawn(move || {
                    for _ in 0..3 {
                        let mut m = tridiag(1000);
                        let r = service.tune(&mut m).unwrap();
                        assert_eq!(r.chosen, reference, "every client must see the same decision");
                    }
                });
            }
        });
        let stats = service.cache_stats();
        assert_eq!(stats.hits + stats.misses, 12, "every tune does exactly one counted lookup");
        assert!(stats.hits >= 8, "after the first misses the rest must hit: {stats:?}");
    }
}
