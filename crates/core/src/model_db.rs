//! The on-disk model database (Figure 1's "Model Database").
//!
//! One model file per (system, backend, model kind); users "use the
//! pre-trained models from the Model Database" or drop in their own. File
//! names follow `<system>_<backend>.<kind>.model` (lower-case), e.g.
//! `p3_cuda.forest.model`.

use crate::tuner::{DecisionTreeTuner, GbtTuner, RandomForestTuner};
use crate::{OracleError, Result};
use morpheus_machine::Backend;
use morpheus_ml::{DecisionTree, GradientBoostedTrees, RandomForest};
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// Model kind stored in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Single decision tree.
    Tree,
    /// Random forest.
    Forest,
    /// Gradient-boosted tree ensemble.
    Gbt,
}

impl ModelKind {
    fn ext(self) -> &'static str {
        match self {
            ModelKind::Tree => "tree",
            ModelKind::Forest => "forest",
            ModelKind::Gbt => "gbt",
        }
    }
}

/// A directory of trained models, keyed by (system, backend, kind).
#[derive(Debug, Clone)]
pub struct ModelDatabase {
    dir: PathBuf,
}

impl ModelDatabase {
    /// Opens (or designates) a database directory; created on first save.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ModelDatabase { dir: dir.into() }
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Canonical file name for a (system, backend, kind) triple.
    pub fn file_name(system: &str, backend: Backend, kind: ModelKind) -> String {
        format!(
            "{}_{}.{}.model",
            system.to_ascii_lowercase().replace([' ', '/'], "-"),
            backend.name().to_ascii_lowercase(),
            kind.ext()
        )
    }

    /// Full path for a triple.
    pub fn path_for(&self, system: &str, backend: Backend, kind: ModelKind) -> PathBuf {
        self.dir.join(Self::file_name(system, backend, kind))
    }

    /// Saves a forest model for the pair.
    pub fn save_forest(&self, system: &str, backend: Backend, model: &RandomForest) -> Result<PathBuf> {
        std::fs::create_dir_all(&self.dir).map_err(morpheus_ml::MlError::Io)?;
        let path = self.path_for(system, backend, ModelKind::Forest);
        let file = std::fs::File::create(&path).map_err(morpheus_ml::MlError::Io)?;
        morpheus_ml::serialize::save_forest(&mut BufWriter::new(file), model)?;
        Ok(path)
    }

    /// Saves a tree model for the pair.
    pub fn save_tree(&self, system: &str, backend: Backend, model: &DecisionTree) -> Result<PathBuf> {
        std::fs::create_dir_all(&self.dir).map_err(morpheus_ml::MlError::Io)?;
        let path = self.path_for(system, backend, ModelKind::Tree);
        let file = std::fs::File::create(&path).map_err(morpheus_ml::MlError::Io)?;
        morpheus_ml::serialize::save_tree(&mut BufWriter::new(file), model)?;
        Ok(path)
    }

    /// Saves a gradient-boosted ensemble for the pair.
    pub fn save_gbt(&self, system: &str, backend: Backend, model: &GradientBoostedTrees) -> Result<PathBuf> {
        std::fs::create_dir_all(&self.dir).map_err(morpheus_ml::MlError::Io)?;
        let path = self.path_for(system, backend, ModelKind::Gbt);
        let file = std::fs::File::create(&path).map_err(morpheus_ml::MlError::Io)?;
        morpheus_ml::serialize::save_gbt(&mut BufWriter::new(file), model)?;
        Ok(path)
    }

    /// Loads the forest tuner for a pair.
    pub fn load_forest_tuner(&self, system: &str, backend: Backend) -> Result<RandomForestTuner> {
        let path = self.path_for(system, backend, ModelKind::Forest);
        let file = std::fs::File::open(&path).map_err(|e| {
            OracleError::Ml(morpheus_ml::MlError::Io(std::io::Error::new(
                e.kind(),
                format!("{}: {e}", path.display()),
            )))
        })?;
        RandomForestTuner::from_reader(BufReader::new(file))
    }

    /// Loads the tree tuner for a pair.
    pub fn load_tree_tuner(&self, system: &str, backend: Backend) -> Result<DecisionTreeTuner> {
        let path = self.path_for(system, backend, ModelKind::Tree);
        let file = std::fs::File::open(&path).map_err(|e| {
            OracleError::Ml(morpheus_ml::MlError::Io(std::io::Error::new(
                e.kind(),
                format!("{}: {e}", path.display()),
            )))
        })?;
        DecisionTreeTuner::from_reader(BufReader::new(file))
    }

    /// Loads the gradient-boosted tuner for a pair.
    pub fn load_gbt_tuner(&self, system: &str, backend: Backend) -> Result<GbtTuner> {
        let path = self.path_for(system, backend, ModelKind::Gbt);
        let file = std::fs::File::open(&path).map_err(|e| {
            OracleError::Ml(morpheus_ml::MlError::Io(std::io::Error::new(
                e.kind(),
                format!("{}: {e}", path.display()),
            )))
        })?;
        GbtTuner::from_reader(BufReader::new(file))
    }

    /// Lists the (file-name) entries present in the database.
    pub fn list(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".model"))
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus::format::FORMAT_COUNT;
    use morpheus_ml::{Dataset, ForestParams, TreeParams};

    fn toy_dataset() -> Dataset {
        let mut ds = Dataset::empty(crate::NUM_FEATURES, FORMAT_COUNT, vec![]).unwrap();
        for i in 0..60 {
            let wide = i % 2 == 0;
            let row = [
                500.0,
                500.0,
                2000.0,
                4.0,
                0.008,
                if wide { 40.0 } else { 4.0 },
                1.0,
                1.5,
                20.0,
                1.0,
                0.2,
                1.1,
            ];
            ds.push(&row, if wide { 3 } else { 1 }).unwrap();
        }
        ds
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("morpheus-oracle-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn file_names_are_canonical() {
        assert_eq!(ModelDatabase::file_name("P3", Backend::Cuda, ModelKind::Forest), "p3_cuda.forest.model");
        assert_eq!(
            ModelDatabase::file_name("ARCHER2", Backend::OpenMp, ModelKind::Tree),
            "archer2_openmp.tree.model"
        );
        assert_eq!(ModelDatabase::file_name("XCI", Backend::Serial, ModelKind::Gbt), "xci_serial.gbt.model");
    }

    #[test]
    fn gbt_save_load_roundtrip() {
        let dir = tempdir("gbt-roundtrip");
        let db = ModelDatabase::new(&dir);
        let ds = toy_dataset();
        let model = morpheus_ml::GradientBoostedTrees::fit(&ds, &morpheus_ml::GbtParams::default()).unwrap();
        let path = db.save_gbt("Cirrus", Backend::OpenMp, &model).unwrap();
        assert!(path.ends_with("cirrus_openmp.gbt.model"));

        let loaded = db.load_gbt_tuner("Cirrus", Backend::OpenMp).unwrap();
        for i in 0..ds.len() {
            assert_eq!(loaded.model().predict(ds.row(i)), model.predict(ds.row(i)), "sample {i}");
        }
        assert!(db.list().contains(&"cirrus_openmp.gbt.model".to_string()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_gbt_model_reports_path() {
        let db = ModelDatabase::new(tempdir("missing-gbt"));
        let err = db.load_gbt_tuner("P3", Backend::Cuda).unwrap_err();
        assert!(err.to_string().contains("p3_cuda.gbt.model"), "{err}");
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tempdir("roundtrip");
        let db = ModelDatabase::new(&dir);
        let ds = toy_dataset();
        let forest = RandomForest::fit(&ds, &ForestParams { n_estimators: 4, ..Default::default() }).unwrap();
        let tree = DecisionTree::fit(&ds, &TreeParams::default()).unwrap();
        db.save_forest("Cirrus", Backend::Cuda, &forest).unwrap();
        db.save_tree("Cirrus", Backend::Cuda, &tree).unwrap();

        let loaded = db.load_forest_tuner("Cirrus", Backend::Cuda).unwrap();
        let probe = ds.row(0);
        assert_eq!(loaded.model().predict(probe), forest.predict(probe));
        let loaded_tree = db.load_tree_tuner("Cirrus", Backend::Cuda).unwrap();
        assert_eq!(loaded_tree.model().predict(probe), tree.predict(probe));

        let listing = db.list();
        assert_eq!(listing.len(), 2);
        assert!(listing.contains(&"cirrus_cuda.forest.model".to_string()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_model_reports_path() {
        let db = ModelDatabase::new(tempdir("missing"));
        let err = db.load_forest_tuner("XCI", Backend::Serial).unwrap_err();
        assert!(err.to_string().contains("xci_serial.forest.model"), "{err}");
    }

    #[test]
    fn list_on_missing_dir_is_empty() {
        let db = ModelDatabase::new(tempdir("empty"));
        assert!(db.list().is_empty());
    }
}
