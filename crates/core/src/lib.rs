//! Morpheus-Oracle: a lightweight auto-tuner for automatic sparse matrix
//! storage format selection — the paper's primary contribution (§VI).
//!
//! Oracle complements the dynamic format-switching of the `morpheus` crate
//! by automating the *choice* of format for a sparse operation on a given
//! target (system, backend). The public API is the [`Oracle`] **session
//! facade**: one session owns the execution engine, a tuning strategy, the
//! conversion policy and an LRU decision cache, and serves a stream of
//! tuning requests — the shape of a production workload, where the cost of
//! a prediction must amortise across many repeated executions (§VII-E).
//!
//! Following the paper's design, "containers are separated from the
//! algorithms": tuners encapsulate selection strategy and implement
//! [`FormatTuner`] for every matrix scalar (`f32` and `f64`), since format
//! selection depends only on sparsity structure:
//!
//! * [`RunFirstTuner`] — converts to every viable format and times the
//!   actual operation: most accurate, most expensive;
//! * [`DecisionTreeTuner`] — extracts the ten features of Table I and
//!   traverses a single tree: cheapest, least accurate;
//! * [`RandomForestTuner`] — traverses an ensemble and majority-votes:
//!   the paper's recommended operating point.
//!
//! Sessions are *operation-aware*: [`Oracle::tune`] targets SpMV,
//! [`Oracle::tune_and_spmm`] targets the blocked product, and
//! [`Oracle::tune_for`] takes any [`Op`] — the engine's cost model ranks
//! formats differently per operation, and cached decisions are keyed by it.
//!
//! Sessions are also *executors*: `tune_and_spmv` / `tune_and_spmm` run the
//! operation on the backend matching the engine, and threaded execution
//! goes through a cached per-structure [`morpheus::ExecPlan`] — thread
//! schedules are computed once per matrix structure and replayed on every
//! later call ([`TuneReport::plan`] reports `Built` vs `Reused`).
//!
//! For production serving, the session machinery is also available as the
//! `Send + Sync` [`OracleService`] (module [`serve`]): sharded lock-striped
//! caches shared by any number of client threads, plus a registered-matrix
//! path ([`OracleService::register`] → [`MatrixHandle`]) that executes with
//! zero locks and zero per-call allocation.
//!
//! # Example: a tuning session
//! ```
//! use morpheus::{CooMatrix, DynamicMatrix};
//! use morpheus_machine::{systems, Backend, VirtualEngine};
//! use morpheus_oracle::{Oracle, RunFirstTuner};
//!
//! // A banded matrix on the A64FX Serial backend: the run-first tuner
//! // should discover a diagonal-friendly format.
//! let n: usize = 2000;
//! let mut rows = Vec::new();
//! let mut cols = Vec::new();
//! let mut vals = Vec::new();
//! for i in 0..n {
//!     for d in [-1isize, 0, 1] {
//!         let j = i as isize + d;
//!         if j >= 0 && (j as usize) < n {
//!             rows.push(i);
//!             cols.push(j as usize);
//!             vals.push(1.0f64);
//!         }
//!     }
//! }
//! let coo = CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap();
//! let mut matrix = DynamicMatrix::from(coo);
//!
//! let mut oracle = Oracle::builder()
//!     .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
//!     .tuner(RunFirstTuner::new(10))
//!     .cache_capacity(128)
//!     .build()
//!     .unwrap();
//!
//! let report = oracle.tune(&mut matrix).unwrap();
//! assert_eq!(matrix.format_id(), report.chosen);
//! assert!(!report.cache_hit);
//!
//! // Tuning a structurally identical matrix again is (virtually) free.
//! let mut again = DynamicMatrix::from(
//!     CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap(),
//! );
//! let cached = oracle.tune(&mut again).unwrap();
//! assert!(cached.cache_hit);
//! assert_eq!(cached.cost.total(), 0.0);
//! assert_eq!(cached.chosen, report.chosen);
//! ```

mod cache;

pub mod adapt;
pub mod features;
pub mod ingress;
pub mod model_db;
pub mod obs;
pub mod oracle;
pub mod params;
pub mod serve;
pub mod tune;
pub mod tuner;

pub use adapt::{
    AdaptiveConfig, AdaptiveEngine, AdaptiveTuner, CollectorConfig, RetrainOutcome, RetrainReport,
    SampleCollector,
};
pub use cache::CacheStats;
pub use features::{FeatureVector, FEATURE_NAMES, NUM_FEATURES};
pub use ingress::{Backpressure, CoalescePolicy, Ingress, IngressConfig, IngressError, IngressStats, Ticket};
pub use model_db::{ModelDatabase, ModelKind};
pub use obs::{
    Counter, Gauge, HistSummary, Histogram, MetricsRegistry, MetricsSnapshot, Obs, ObsConfig, ObsSnapshot,
    SlowRequest, SpanRecord, Stage, TraceId, TraceLevel,
};
pub use oracle::{Oracle, OracleBuilder, DEFAULT_CACHE_CAPACITY};
pub use params::{heuristic_params, propose_params, ParamRegressor, ParamStrategy};
pub use serve::{HandleInfo, MatrixHandle, OracleService, PartitionPolicy, ServeStats, ServiceSnapshot};
pub use tune::{PlanStatus, TuneReport};
pub use tuner::{
    DecisionTreeTuner, FormatTuner, GbtTuner, RandomForestTuner, RunFirstTuner, TuneDecision, TuningCost,
};

/// Re-exported so downstream code can name operations without depending on
/// `morpheus-machine` directly.
pub use morpheus_machine::Op;

/// Errors produced by the Oracle layer.
#[derive(Debug)]
pub enum OracleError {
    /// Underlying matrix/format error.
    Morpheus(morpheus::MorpheusError),
    /// Underlying model error.
    Ml(morpheus_ml::MlError),
    /// A model incompatible with the tuner or feature schema was supplied.
    ModelMismatch(String),
    /// An [`Oracle`] was misconfigured (e.g. built without an engine).
    InvalidConfig(String),
    /// I/O failure while exporting or importing cached decisions.
    Io(std::io::Error),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Morpheus(e) => write!(f, "{e}"),
            OracleError::Ml(e) => write!(f, "{e}"),
            OracleError::ModelMismatch(m) => write!(f, "model mismatch: {m}"),
            OracleError::InvalidConfig(m) => write!(f, "invalid Oracle configuration: {m}"),
            OracleError::Io(e) => write!(f, "decision cache I/O: {e}"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<morpheus::MorpheusError> for OracleError {
    fn from(e: morpheus::MorpheusError) -> Self {
        OracleError::Morpheus(e)
    }
}

impl From<morpheus_ml::MlError> for OracleError {
    fn from(e: morpheus_ml::MlError) -> Self {
        OracleError::Ml(e)
    }
}

impl From<std::io::Error> for OracleError {
    fn from(e: std::io::Error) -> Self {
        OracleError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OracleError>;
