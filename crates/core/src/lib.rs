//! Morpheus-Oracle: a lightweight auto-tuner for automatic sparse matrix
//! storage format selection — the paper's primary contribution (§VI).
//!
//! Oracle complements the dynamic format-switching of the `morpheus` crate
//! by automating the *choice* of format for the SpMV operation on a given
//! target (system, backend). Following the paper's design, "containers are
//! separated from the algorithms": tuners encapsulate selection strategy
//! ([`RunFirstTuner`], [`DecisionTreeTuner`], [`RandomForestTuner`], §VI-A)
//! and a single [`tune_multiply`] operation drives any of them (§VI-B).
//!
//! The three tuners trade prediction cost against accuracy:
//!
//! * **Run-first** — converts to every viable format and times the actual
//!   operation: most accurate, most expensive;
//! * **DecisionTreeTuner** — extracts the ten features of Table I and
//!   traverses a single tree: cheapest, least accurate;
//! * **RandomForestTuner** — traverses an ensemble and majority-votes:
//!   the paper's recommended operating point.
//!
//! # Example: tune, switch, multiply
//! ```
//! use morpheus::{ConvertOptions, CooMatrix, DynamicMatrix};
//! use morpheus_machine::{systems, Backend, VirtualEngine};
//! use morpheus_oracle::{tune_multiply, RunFirstTuner};
//!
//! // A banded matrix on the A64FX Serial backend: the run-first tuner
//! // should discover a diagonal-friendly format.
//! let n: usize = 2000;
//! let mut rows = Vec::new();
//! let mut cols = Vec::new();
//! let mut vals = Vec::new();
//! for i in 0..n {
//!     for d in [-1isize, 0, 1] {
//!         let j = i as isize + d;
//!         if j >= 0 && (j as usize) < n {
//!             rows.push(i);
//!             cols.push(j as usize);
//!             vals.push(1.0f64);
//!         }
//!     }
//! }
//! let coo = CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap();
//! let mut matrix = DynamicMatrix::from(coo);
//!
//! let engine = VirtualEngine::new(systems::a64fx(), Backend::Serial);
//! let tuner = RunFirstTuner::new(10);
//! let report = tune_multiply(&mut matrix, &tuner, &engine, &ConvertOptions::default()).unwrap();
//! assert_eq!(matrix.format_id(), report.chosen);
//! ```

pub mod features;
pub mod model_db;
pub mod tune;
pub mod tuner;

pub use features::{FeatureVector, FEATURE_NAMES, NUM_FEATURES};
pub use model_db::ModelDatabase;
pub use tune::{tune_multiply, TuneReport};
pub use tuner::{DecisionTreeTuner, FormatTuner, RandomForestTuner, RunFirstTuner, TuneDecision, TuningCost};

/// Errors produced by the Oracle layer.
#[derive(Debug)]
pub enum OracleError {
    /// Underlying matrix/format error.
    Morpheus(morpheus::MorpheusError),
    /// Underlying model error.
    Ml(morpheus_ml::MlError),
    /// A model incompatible with the tuner or feature schema was supplied.
    ModelMismatch(String),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Morpheus(e) => write!(f, "{e}"),
            OracleError::Ml(e) => write!(f, "{e}"),
            OracleError::ModelMismatch(m) => write!(f, "model mismatch: {m}"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<morpheus::MorpheusError> for OracleError {
    fn from(e: morpheus::MorpheusError) -> Self {
        OracleError::Morpheus(e)
    }
}

impl From<morpheus_ml::MlError> for OracleError {
    fn from(e: morpheus_ml::MlError) -> Self {
        OracleError::Ml(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OracleError>;
