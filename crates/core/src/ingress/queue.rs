//! The ingress submission queue, per-tenant admission and the type-erased
//! request representation the pump drains.
//!
//! The queue is a bounded `VecDeque` under a `std::sync::Mutex` with a
//! `Condvar` pump wake-up — deliberately the plainest possible MPSC: the
//! vendored channel exposes neither depth nor timed receives, and the pump
//! needs both a drain-everything primitive (for coalescing) and a depth
//! gauge (for the stats surface). Submitters never block: a full queue is
//! an immediate [`Backpressure::QueueFull`], the explicit replacement for
//! queueing behind other clients.
//!
//! Requests are stored type-erased ([`ErasedJob`]) so one queue carries
//! `f32` and `f64` traffic at once; the coalescer downcasts same-scalar,
//! same-handle runs back to concrete [`Job<V>`]s (see
//! [`super::batch`]).

use super::slo::Backpressure;
use super::{IngressError, StatsCells};
use crate::obs::{SpanRecord, Stage, TraceId};
use crate::serve::{MatrixHandle, OracleService};
use crate::OracleError;
use morpheus::Scalar;
use parking_lot::Mutex as PlMutex;
use std::any::{Any, TypeId};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// One tenant's admission ticket: holds the tenant's in-flight count
/// incremented until dropped, so every exit path — scatter, shed, error —
/// releases the quota slot exactly once.
#[derive(Debug)]
pub(crate) struct TenantSlot {
    inflight: Arc<AtomicUsize>,
}

impl Drop for TenantSlot {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Per-tenant in-flight accounting. Tenants are created on first sight;
/// the table is consulted once per submission (one short mutex hold to
/// fetch the counter, then lock-free CAS admission against the quota).
#[derive(Debug, Default)]
pub(crate) struct TenantTable {
    counters: PlMutex<HashMap<String, Arc<AtomicUsize>>>,
}

impl TenantTable {
    /// Admits one request for `tenant` under `quota`, or refuses with the
    /// quota that was hit. The returned slot releases on drop.
    pub(crate) fn acquire(&self, tenant: &str, quota: usize) -> Result<TenantSlot, Backpressure> {
        let counter = {
            let mut map = self.counters.lock();
            match map.get(tenant) {
                Some(c) => Arc::clone(c),
                None => {
                    let c = Arc::new(AtomicUsize::new(0));
                    map.insert(tenant.to_string(), Arc::clone(&c));
                    c
                }
            }
        };
        let mut current = counter.load(Ordering::Relaxed);
        loop {
            if current >= quota {
                return Err(Backpressure::TenantQuota { limit: quota });
            }
            match counter.compare_exchange_weak(current, current + 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return Ok(TenantSlot { inflight: counter }),
                Err(seen) => current = seen,
            }
        }
    }

    /// Current in-flight count for `tenant` (0 if never seen).
    pub(crate) fn inflight(&self, tenant: &str) -> usize {
        self.counters.lock().get(tenant).map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Scheduling metadata shared by every request regardless of scalar type.
pub(crate) struct JobMeta {
    /// Quota slot, released when the request leaves the system.
    pub(crate) _tenant: TenantSlot,
    /// Absolute deadline, resolved at submission.
    pub(crate) deadline: Option<Instant>,
    /// Trace id minted at admission ([`TraceId::NONE`] when tracing is
    /// off — every observation site gates on it).
    pub(crate) trace: TraceId,
    /// Submission timestamp: queue-wait and total-latency baseline.
    pub(crate) submitted: Instant,
    /// Locally-assembled span tree, mirrored from the global ring so the
    /// flight recorder can capture a breached request's full tree even
    /// after the ring wrapped. Empty for untraced requests.
    pub(crate) spans: Vec<SpanRecord>,
}

/// A concrete queued SpMV request for scalar `V`.
pub(crate) struct Job<V: Scalar> {
    pub(crate) handle: MatrixHandle<V>,
    pub(crate) x: Vec<V>,
    pub(crate) tx: SyncSender<Result<Vec<V>, IngressError>>,
}

impl<V: Scalar> Job<V> {
    /// Resolves the ticket; a receiver that gave up (dropped) is fine.
    pub(crate) fn send(&self, result: Result<Vec<V>, IngressError>) {
        let _ = self.tx.send(result);
    }
}

/// Scalar-erased view of a [`Job<V>`], so one queue and one pump loop
/// carry every scalar type. Grouping happens on `(scalar, handle_id)`;
/// the coalescer downcasts groups of the two `Scalar` impls back to
/// concrete jobs, and anything else still executes through
/// [`ErasedJob::run_direct`].
pub(crate) trait ErasedJob<T>: Send {
    /// Registration id of the target handle (coalescing group key).
    fn handle_id(&self) -> u64;
    /// Scalar type of the request (coalescing group key).
    fn scalar(&self) -> TypeId;
    /// Downcast access for the coalescer.
    fn as_any(&mut self) -> &mut dyn Any;
    /// Executes this single request through the service's queued-execution
    /// path, accounts the outcome (completed/failed/deadline-miss) in
    /// `stats`, records its Exec/Resolve spans and exec-latency sample,
    /// and resolves its ticket — counters and spans strictly *before* the
    /// ticket, so a caller returning from `wait()` never reads stale stats.
    fn run_direct(&mut self, service: &OracleService<T>, stats: &StatsCells, meta: &mut JobMeta);
    /// Resolves the ticket with typed backpressure; nothing executes.
    fn shed(&mut self, reason: Backpressure);
}

impl<T: Send + Sync, V: Scalar> ErasedJob<T> for Job<V> {
    fn handle_id(&self) -> u64 {
        self.handle.id()
    }

    fn scalar(&self) -> TypeId {
        TypeId::of::<V>()
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn run_direct(&mut self, service: &OracleService<T>, stats: &StatsCells, meta: &mut JobMeta) {
        let mut y = vec![V::ZERO; self.handle.nrows()];
        let t0 = meta.trace.is_some().then(Instant::now);
        match service.execute_queued_spmv(&self.handle, &self.x, &mut y, meta.trace) {
            Ok(()) => {
                let missed = super::slo::expired(meta.deadline, Instant::now());
                stats.completed.inc();
                if missed {
                    stats.deadline_misses.inc();
                }
                if let Some(t0) = t0 {
                    let dur = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    stats.exec_hist.record_ns(dur);
                    stats.stage_span(meta, Stage::Exec, stats.obs.instant_ns(t0), dur, 0);
                }
                stats.resolve_request(meta, u64::from(missed));
                self.send(Ok(y));
            }
            Err(e) => {
                stats.failed.inc();
                stats.resolve_request(meta, 3);
                self.send(Err(IngressError::Exec(Arc::new(OracleError::Morpheus(e)))));
            }
        }
    }

    fn shed(&mut self, reason: Backpressure) {
        self.send(Err(IngressError::Backpressure(reason)));
    }
}

/// One queued request: scheduling metadata plus the scalar-erased job.
pub(crate) struct QueuedRequest<T> {
    pub(crate) meta: JobMeta,
    pub(crate) job: Box<dyn ErasedJob<T>>,
}

/// Outcome of a push attempt; the request is handed back on refusal so
/// the submitter can resolve its ticket (and release the tenant slot).
pub(crate) enum PushRefused<T> {
    Full(QueuedRequest<T>),
    Closed(QueuedRequest<T>),
}

struct QueueState<T> {
    items: VecDeque<QueuedRequest<T>>,
    closed: bool,
    paused: bool,
}

/// The bounded MPSC between submitters and the pump. See the
/// [module docs](self) for why this is a mutex + condvar rather than a
/// channel.
pub(crate) struct SubmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    wakeup: Condvar,
    capacity: usize,
    /// Lock-free mirror of the current queue length for the stats gauge.
    depth: AtomicU64,
}

impl<T> SubmissionQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        SubmissionQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false, paused: false }),
            wakeup: Condvar::new(),
            capacity: capacity.max(1),
            depth: AtomicU64::new(0),
        }
    }

    /// Enqueues without blocking; refuses when full or closed.
    pub(crate) fn push(&self, req: QueuedRequest<T>) -> Result<(), PushRefused<T>> {
        let mut st = self.state.lock().expect("ingress queue poisoned");
        if st.closed {
            return Err(PushRefused::Closed(req));
        }
        if st.items.len() >= self.capacity {
            return Err(PushRefused::Full(req));
        }
        st.items.push_back(req);
        self.depth.store(st.items.len() as u64, Ordering::Relaxed);
        self.wakeup.notify_one();
        Ok(())
    }

    /// Blocks until work is available (and the queue is not paused), then
    /// drains **everything** queued at that instant — the coalescing
    /// window is "whatever accumulated while the pump was busy". Returns
    /// `None` once the queue is closed and empty; after close, remaining
    /// items are still handed out (paused or not) so the pump can shed
    /// them.
    pub(crate) fn drain(&self) -> Option<Vec<QueuedRequest<T>>> {
        let mut st = self.state.lock().expect("ingress queue poisoned");
        loop {
            let ready = st.closed || (!st.items.is_empty() && !st.paused);
            if ready {
                if st.items.is_empty() {
                    return None; // only reachable when closed
                }
                let batch: Vec<_> = st.items.drain(..).collect();
                self.depth.store(0, Ordering::Relaxed);
                return Some(batch);
            }
            st = self.wakeup.wait(st).expect("ingress queue poisoned");
        }
    }

    /// Current queue length (lock-free; the stats gauge).
    pub(crate) fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// `true` once [`SubmissionQueue::close`] ran: drained batches must be
    /// shed, not executed.
    pub(crate) fn is_closed(&self) -> bool {
        self.state.lock().expect("ingress queue poisoned").closed
    }

    /// Stops admission and wakes the pump for final shedding.
    pub(crate) fn close(&self) {
        self.state.lock().expect("ingress queue poisoned").closed = true;
        self.wakeup.notify_all();
    }

    /// Holds queued work back from the pump (used to build deterministic
    /// coalescing batches; see [`Ingress::pause`](super::Ingress::pause)).
    pub(crate) fn pause(&self) {
        self.state.lock().expect("ingress queue poisoned").paused = true;
    }

    /// Releases a [`SubmissionQueue::pause`].
    pub(crate) fn resume(&self) {
        self.state.lock().expect("ingress queue poisoned").paused = false;
        self.wakeup.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_quota_admits_up_to_limit_and_releases_on_drop() {
        let table = TenantTable::default();
        let a = table.acquire("a", 2).unwrap();
        let b = table.acquire("a", 2).unwrap();
        assert_eq!(table.inflight("a"), 2);
        assert!(matches!(table.acquire("a", 2), Err(Backpressure::TenantQuota { limit: 2 })));
        // A different tenant is unaffected.
        let other = table.acquire("b", 2).unwrap();
        assert_eq!(table.inflight("b"), 1);
        drop(a);
        assert_eq!(table.inflight("a"), 1);
        let _c = table.acquire("a", 2).unwrap();
        drop(b);
        drop(other);
        assert_eq!(table.inflight("b"), 0);
    }
}
