//! SLO semantics of the ingress layer: deadlines, shedding and the typed
//! backpressure surface.
//!
//! Every request resolves to an **absolute deadline** at submission (an
//! explicit per-request deadline, or `now + default_slo` from the
//! [`IngressConfig`](crate::ingress::IngressConfig), or none). The pump
//! checks the deadline immediately before execution:
//!
//! * expired before execution → the request is **shed**: its ticket
//!   resolves to [`IngressError::Backpressure`] with
//!   [`Backpressure::DeadlineExpired`] and no kernel runs — a shed request
//!   never observes partial results;
//! * expired *during* execution → the result is still delivered (the work
//!   is already paid for) and the overrun is counted as a deadline miss in
//!   [`IngressStats::deadline_misses`](crate::ingress::IngressStats::deadline_misses).
//!
//! Admission failures (full queue, exhausted tenant quota) use the same
//! [`Backpressure`] type, so callers branch on one explicit enum instead
//! of inferring overload from latency — the replacement for the serving
//! layer's silent pool-busy serial fallback.
//!
//! [`IngressError`]: crate::ingress::IngressError

use std::fmt;
use std::time::{Duration, Instant};

/// Why the ingress layer refused admission or abandoned a queued request.
///
/// Carried by [`IngressError::Backpressure`](crate::ingress::IngressError):
/// the *typed* overload signal of the serving path. Every variant means
/// "not executed" — a backpressured request never produces partial output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// The submission queue is at capacity; retry later or shed load
    /// upstream.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The tenant already has its full quota of requests in flight;
    /// admission would let one tenant starve the rest.
    TenantQuota {
        /// The tenant's in-flight quota that was hit.
        limit: usize,
    },
    /// The request's deadline expired while it was queued; it was shed
    /// before any kernel ran.
    DeadlineExpired,
    /// The ingress is shutting down; queued work is shed, not executed.
    ShuttingDown,
}

impl fmt::Display for Backpressure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backpressure::QueueFull { capacity } => {
                write!(f, "submission queue full ({capacity} requests)")
            }
            Backpressure::TenantQuota { limit } => {
                write!(f, "tenant quota exhausted ({limit} in flight)")
            }
            Backpressure::DeadlineExpired => write!(f, "deadline expired before execution"),
            Backpressure::ShuttingDown => write!(f, "ingress shutting down"),
        }
    }
}

/// Resolves a request's SLO to an absolute deadline at submission time:
/// an explicit deadline wins, otherwise the configured default budget is
/// anchored at `submitted`, otherwise the request has no deadline.
pub(crate) fn resolve_deadline(
    submitted: Instant,
    explicit: Option<Instant>,
    default_budget: Option<Duration>,
) -> Option<Instant> {
    explicit.or_else(|| default_budget.map(|b| submitted + b))
}

/// `true` when a deadline has passed at `now` — the single shed/miss
/// predicate, so queued-shed and post-execution-miss accounting can never
/// disagree on what "late" means.
pub(crate) fn expired(deadline: Option<Instant>, now: Instant) -> bool {
    deadline.is_some_and(|d| d <= now)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_deadline_wins_over_default_budget() {
        let t0 = Instant::now();
        let explicit = t0 + Duration::from_millis(3);
        assert_eq!(resolve_deadline(t0, Some(explicit), Some(Duration::from_secs(9))), Some(explicit));
        assert_eq!(
            resolve_deadline(t0, None, Some(Duration::from_millis(5))),
            Some(t0 + Duration::from_millis(5))
        );
        assert_eq!(resolve_deadline(t0, None, None), None);
    }

    #[test]
    fn expiry_is_inclusive_and_no_deadline_never_expires() {
        let t0 = Instant::now();
        assert!(expired(Some(t0), t0), "a deadline exactly at now is late");
        assert!(!expired(Some(t0 + Duration::from_secs(1)), t0));
        assert!(!expired(None, t0 + Duration::from_secs(3600)));
    }

    #[test]
    fn backpressure_displays_its_cause() {
        assert!(Backpressure::QueueFull { capacity: 7 }.to_string().contains('7'));
        assert!(Backpressure::TenantQuota { limit: 3 }.to_string().contains('3'));
        assert!(Backpressure::DeadlineExpired.to_string().contains("deadline"));
        assert!(Backpressure::ShuttingDown.to_string().contains("shutting down"));
    }
}
