//! Async batched ingress: the admission-controlled, coalescing front door
//! over [`OracleService`].
//!
//! The direct handle path ([`OracleService::spmv`]) is synchronous and
//! one-request-per-call: under N contending clients, requests serialize on
//! the pool and silently degrade to serial kernels. This module replaces
//! that degradation with an explicit request lifecycle:
//!
//! ```text
//!   submit ──► admit ──────► queue ──► coalesce-or-direct ──► execute ──► scatter
//!              │  │            │            │                 (planned       │
//!   tenant quota  queue cap    │       cost-model gate         SpMM/SpMV)    ▼
//!   Backpressure::TenantQuota  │       spmm_time(k) <                     Ticket
//!   Backpressure::QueueFull    │         k·spmv_time?                    resolves
//!                              ▼
//!               deadline expired while queued?
//!               shed: Backpressure::DeadlineExpired
//! ```
//!
//! * **Admission** — every request names a tenant; a tenant may hold at
//!   most its quota of in-flight requests
//!   ([`IngressConfig::tenant_quota`]), so a greedy client saturates its
//!   own quota, not the queue. The queue itself is bounded; both refusals
//!   are immediate typed [`Backpressure`] errors, never blocking waits.
//! * **Coalescing** — a single pump thread drains everything queued at
//!   once. Runs of requests against the same [`MatrixHandle`] (same
//!   scalar) become *one* planned SpMM over the handle's shared
//!   [`ExecPlan`](morpheus::ExecPlan) when the engine's cost model prices
//!   `spmm_time(k)` under `k × spmv_time` — the paper's op-aware cost
//!   model collecting the batching payoff. Results are scattered back
//!   per-request, **bitwise identical** to individual SpMVs (the SpMM
//!   kernels accumulate each output column in exactly the SpMV order).
//! * **SLO enforcement** — requests carry deadlines (explicit, or
//!   [`IngressConfig::default_slo`]). Work that expires while queued is
//!   shed with [`Backpressure::DeadlineExpired`] *before* any kernel runs;
//!   work that finishes late still delivers and is counted as a deadline
//!   miss. See [`slo`] for the exact semantics.
//!
//! Because the pump is the only thread driving ingress work into the
//! pool, ingress traffic never contends with itself — the silent
//! pool-busy serial fallback of the direct path cannot trigger from
//! inside this layer; overload surfaces as typed backpressure instead.
//! Executions are timestamped into the adaptive-sampling
//! [`Telemetry`](crate::adapt::Telemetry) under `Op::Spmm{k}` /
//! `Op::Spmv` keys exactly like direct handle calls, so retraining learns
//! from batched traffic too.
//!
//! # Example
//! ```
//! use morpheus::{CooMatrix, DynamicMatrix};
//! use morpheus_machine::{systems, Backend, VirtualEngine};
//! use morpheus_oracle::{Ingress, IngressConfig, Oracle, RunFirstTuner};
//! use std::sync::Arc;
//!
//! let service = Arc::new(
//!     Oracle::builder()
//!         .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
//!         .tuner(RunFirstTuner::new(2))
//!         .workers(2)
//!         .build_service()
//!         .unwrap(),
//! );
//! let m = DynamicMatrix::from(
//!     CooMatrix::<f64>::from_triplets(3, 3, &[0, 1, 2], &[0, 1, 2], &[1.0, 2.0, 3.0]).unwrap(),
//! );
//! let handle = service.register(m).unwrap();
//!
//! let ingress = Ingress::start(Arc::clone(&service), IngressConfig::default());
//! let ticket = ingress.submit("tenant-a", &handle, vec![1.0, 1.0, 1.0]).unwrap();
//! assert_eq!(ticket.wait().unwrap(), vec![1.0, 2.0, 3.0]);
//! ```

mod batch;
mod queue;
pub mod slo;

pub use slo::Backpressure;

use crate::obs::{Counter, Gauge, Histogram, Obs, SlowRequest, SpanRecord, Stage, TraceId};
use crate::serve::{MatrixHandle, OracleService, ServiceSnapshot};
use crate::OracleError;
use morpheus::Scalar;
use queue::{Job, JobMeta, PushRefused, QueuedRequest, SubmissionQueue, TenantTable};
use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc::{sync_channel, Receiver, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When the pump may merge queued same-handle SpMV requests into one
/// planned SpMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoalescePolicy {
    /// Coalesce only when the engine prices `spmm_time(k)` below
    /// `k × spmv_time` for the handle's realized format — the default.
    #[default]
    CostModel,
    /// Always coalesce same-handle runs (benchmarking / testing).
    Always,
    /// Never coalesce; every request executes as an individual SpMV.
    Never,
}

/// Configuration of an [`Ingress`] front door.
#[derive(Debug, Clone)]
pub struct IngressConfig {
    /// Maximum queued (admitted, not yet drained) requests; submissions
    /// beyond it fail with [`Backpressure::QueueFull`].
    pub queue_capacity: usize,
    /// Default per-tenant in-flight quota; submissions beyond it fail
    /// with [`Backpressure::TenantQuota`].
    pub tenant_quota: usize,
    /// Per-tenant quota overrides (tenant name → in-flight limit).
    pub tenant_overrides: HashMap<String, usize>,
    /// Deadline budget applied to requests submitted without an explicit
    /// deadline; `None` means such requests never expire.
    pub default_slo: Option<Duration>,
    /// Coalescing policy (see [`CoalescePolicy`]).
    pub coalesce: CoalescePolicy,
    /// Largest number of requests merged into one SpMM; bigger runs are
    /// split into chunks of this size.
    pub max_batch: usize,
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig {
            queue_capacity: 1024,
            tenant_quota: 64,
            tenant_overrides: HashMap::new(),
            default_slo: None,
            coalesce: CoalescePolicy::CostModel,
            max_batch: 32,
        }
    }
}

impl IngressConfig {
    /// Sets a per-tenant in-flight quota override.
    pub fn with_tenant_quota(mut self, tenant: &str, limit: usize) -> Self {
        self.tenant_overrides.insert(tenant.to_string(), limit);
        self
    }

    fn quota_for(&self, tenant: &str) -> usize {
        self.tenant_overrides.get(tenant).copied().unwrap_or(self.tenant_quota)
    }
}

/// Errors surfaced by the ingress layer — including the **typed
/// backpressure** that replaces silent degradation on the serving path.
#[derive(Debug, Clone)]
pub enum IngressError {
    /// The request was refused or shed under load; see [`Backpressure`]
    /// for the exact cause. Nothing executed.
    Backpressure(Backpressure),
    /// The request was malformed (e.g. input length does not match the
    /// handle's column count). Caught at submission; nothing was queued.
    Rejected(String),
    /// Execution itself failed; the underlying error is shared across
    /// every request of a failed coalesced batch.
    Exec(Arc<OracleError>),
    /// The pump disappeared without resolving the ticket (it panicked);
    /// a bug, not an overload signal.
    Disconnected,
}

impl fmt::Display for IngressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngressError::Backpressure(b) => write!(f, "backpressure: {b}"),
            IngressError::Rejected(why) => write!(f, "request rejected: {why}"),
            IngressError::Exec(e) => write!(f, "execution failed: {e}"),
            IngressError::Disconnected => write!(f, "ingress pump disconnected"),
        }
    }
}

impl std::error::Error for IngressError {}

/// Ingress counters, exposed via [`Ingress::stats`] and folded into
/// [`ServiceSnapshot::ingress`] by [`Ingress::snapshot`]. All counters
/// are monotonic except the [`queue_depth`](Self::queue_depth) gauge.
///
/// These values live in the service's unified
/// [`MetricsRegistry`](crate::obs::MetricsRegistry) under canonical
/// `ingress.*` names (noted per field below); this struct is a
/// point-in-time copy whose field names are **deprecated aliases kept
/// for one release** — scrape the registry
/// ([`OracleService::obs_snapshot`](crate::serve::OracleService::obs_snapshot))
/// for the canonical surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngressStats {
    /// Submission attempts (admitted or not). Deprecated alias of the
    /// registry counter `ingress.requests_submitted`.
    pub submitted: u64,
    /// Submissions refused with [`Backpressure::QueueFull`]. Deprecated
    /// alias of `ingress.queue_rejected`.
    pub rejected_queue_full: u64,
    /// Submissions refused with [`Backpressure::TenantQuota`]. Deprecated
    /// alias of `ingress.quota_rejected`.
    pub rejected_quota: u64,
    /// Queued requests shed with [`Backpressure::DeadlineExpired`].
    /// Deprecated alias of `ingress.deadline_shed`.
    pub shed_deadline: u64,
    /// Queued requests shed with [`Backpressure::ShuttingDown`].
    /// Deprecated alias of `ingress.shutdown_shed`.
    pub shed_shutdown: u64,
    /// Requests whose results were delivered. Deprecated alias of
    /// `ingress.requests_completed`.
    pub completed: u64,
    /// Requests whose execution failed ([`IngressError::Exec`]).
    /// Deprecated alias of `ingress.requests_failed`.
    pub failed: u64,
    /// Requests served as individual planned SpMVs. Deprecated alias of
    /// `ingress.direct_served`.
    pub direct_requests: u64,
    /// Requests served through a coalesced SpMM. Deprecated alias of
    /// `ingress.coalesced_served`.
    pub coalesced_requests: u64,
    /// Coalesced SpMM executions (each serving ≥ 2 requests). Deprecated
    /// alias of `ingress.batches_coalesced`.
    pub coalesced_batches: u64,
    /// Chunks the cost-model gate declined to coalesce. Deprecated alias
    /// of `ingress.coalesce_declined`.
    pub cost_gate_declined: u64,
    /// Delivered results that finished after their deadline. Deprecated
    /// alias of `ingress.deadlines_missed`.
    pub deadline_misses: u64,
    /// Requests currently queued (gauge, not monotonic). Deprecated
    /// alias of `ingress.queue_depth`.
    pub queue_depth: u64,
}

impl IngressStats {
    /// Fraction of delivered results that were served through a coalesced
    /// SpMM (0 when nothing has completed).
    pub fn coalescing_ratio(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.coalesced_requests as f64 / self.completed as f64
        }
    }
}

/// Registry-backed cells behind [`IngressStats`]: every counter, the
/// queue-depth gauge and the stage-latency histograms are handles into
/// the service's [`MetricsRegistry`](crate::obs::MetricsRegistry), so
/// ingress traffic lands in the same scrape surface as the serve-layer
/// metrics. Also carries the observability hub for span emission and
/// flight capture.
pub(crate) struct StatsCells {
    pub(crate) obs: Arc<Obs>,
    /// `ingress.requests_submitted`
    pub(crate) submitted: Counter,
    /// `ingress.queue_rejected`
    pub(crate) rejected_queue_full: Counter,
    /// `ingress.quota_rejected`
    pub(crate) rejected_quota: Counter,
    /// `ingress.deadline_shed`
    pub(crate) shed_deadline: Counter,
    /// `ingress.shutdown_shed`
    pub(crate) shed_shutdown: Counter,
    /// `ingress.requests_completed`
    pub(crate) completed: Counter,
    /// `ingress.requests_failed`
    pub(crate) failed: Counter,
    /// `ingress.direct_served`
    pub(crate) direct_requests: Counter,
    /// `ingress.coalesced_served`
    pub(crate) coalesced_requests: Counter,
    /// `ingress.batches_coalesced`
    pub(crate) coalesced_batches: Counter,
    /// `ingress.coalesce_declined`
    pub(crate) cost_gate_declined: Counter,
    /// `ingress.deadlines_missed`
    pub(crate) deadline_misses: Counter,
    /// `ingress.queue_depth`
    pub(crate) queue_depth: Gauge,
    /// `ingress.queue_wait_ns` — submission to pump pickup.
    pub(crate) queue_wait_hist: Arc<Histogram>,
    /// `ingress.coalesce_ns` — cost-gate evaluation per chunk.
    pub(crate) coalesce_hist: Arc<Histogram>,
    /// `ingress.exec_ns` — one sample per kernel execution (a coalesced
    /// batch records once for its k requests).
    pub(crate) exec_hist: Arc<Histogram>,
    /// `ingress.scatter_ns` — per-request result scatter + delivery.
    pub(crate) scatter_hist: Arc<Histogram>,
}

impl StatsCells {
    pub(crate) fn new(obs: Arc<Obs>) -> Self {
        let r = obs.registry();
        StatsCells {
            submitted: r.counter("ingress.requests_submitted"),
            rejected_queue_full: r.counter("ingress.queue_rejected"),
            rejected_quota: r.counter("ingress.quota_rejected"),
            shed_deadline: r.counter("ingress.deadline_shed"),
            shed_shutdown: r.counter("ingress.shutdown_shed"),
            completed: r.counter("ingress.requests_completed"),
            failed: r.counter("ingress.requests_failed"),
            direct_requests: r.counter("ingress.direct_served"),
            coalesced_requests: r.counter("ingress.coalesced_served"),
            coalesced_batches: r.counter("ingress.batches_coalesced"),
            cost_gate_declined: r.counter("ingress.coalesce_declined"),
            deadline_misses: r.counter("ingress.deadlines_missed"),
            queue_depth: r.gauge("ingress.queue_depth"),
            queue_wait_hist: r.histogram("ingress.queue_wait_ns"),
            coalesce_hist: r.histogram("ingress.coalesce_ns"),
            exec_hist: r.histogram("ingress.exec_ns"),
            scatter_hist: r.histogram("ingress.scatter_ns"),
            obs,
        }
    }

    /// Records a stage span both to the global ring and into the
    /// request's locally-assembled tree (the flight recorder captures
    /// the local copy, so a breached request's tree survives ring
    /// overwrites). No-op for untraced requests.
    pub(crate) fn stage_span(
        &self,
        meta: &mut JobMeta,
        stage: Stage,
        start_ns: u64,
        dur_ns: u64,
        detail: u64,
    ) {
        if meta.trace.is_some() {
            let rec = SpanRecord { trace: meta.trace, stage, start_ns, dur_ns, detail };
            self.obs.span(meta.trace, stage, start_ns, dur_ns, detail);
            meta.spans.push(rec);
        }
    }

    /// Request-terminal observation: the [`Stage::Resolve`] span
    /// (detail 0 delivered / 1 delivered late / 2 shed / 3 failed)
    /// spanning submission → now, plus flight capture when the request
    /// breached — shed or delivered late against its deadline, or
    /// slower than [`ObsConfig::slow_threshold`](crate::obs::ObsConfig).
    /// Callers invoke this *before* resolving the ticket, preserving the
    /// counters-before-send invariant for the whole observation surface.
    pub(crate) fn resolve_request(&self, meta: &mut JobMeta, outcome: u64) {
        if meta.trace.is_none() {
            return;
        }
        let total_ns = meta.submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let start_ns = self.obs.instant_ns(meta.submitted);
        self.stage_span(meta, Stage::Resolve, start_ns, total_ns, outcome);
        let slow = self.obs.slow_threshold_ns();
        let breached = outcome != 0 || slow.is_some_and(|t| total_ns > t);
        if breached {
            let threshold_ns = meta
                .deadline
                .filter(|_| outcome == 1 || outcome == 2)
                .map(|d| d.saturating_duration_since(meta.submitted).as_nanos().min(u64::MAX as u128) as u64)
                .or(slow)
                .unwrap_or(0);
            self.obs.flight().capture(SlowRequest {
                trace: meta.trace,
                total_ns,
                threshold_ns,
                spans: std::mem::take(&mut meta.spans),
            });
        }
    }
}

/// A pending request's receipt: resolves to the SpMV result or a typed
/// [`IngressError`]. One-shot; waiting consumes it.
#[derive(Debug)]
pub struct Ticket<V: Scalar> {
    rx: Receiver<Result<Vec<V>, IngressError>>,
    trace: TraceId,
}

impl<V: Scalar> Ticket<V> {
    /// The request's trace id ([`TraceId::NONE`] when tracing is off) —
    /// correlates this ticket with its span tree in
    /// [`Obs::trace_spans`](crate::obs::Obs::trace_spans) and in flight
    /// recorder dumps.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// Blocks until the request resolves: `y = A x` on success, typed
    /// backpressure or the execution error otherwise.
    pub fn wait(self) -> Result<Vec<V>, IngressError> {
        self.rx.recv().unwrap_or(Err(IngressError::Disconnected))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Vec<V>, IngressError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(IngressError::Disconnected)),
        }
    }
}

struct Shared<T> {
    service: Arc<OracleService<T>>,
    queue: SubmissionQueue<T>,
    tenants: TenantTable,
    stats: StatsCells,
    cfg: IngressConfig,
}

/// The async batched front door over an [`OracleService`]: submissions
/// from any number of threads, one pump thread draining, coalescing and
/// executing. See the [module docs](self) for the request lifecycle.
///
/// Dropping the `Ingress` closes admission, sheds everything still queued
/// with [`Backpressure::ShuttingDown`] and joins the pump; tickets are
/// always resolved.
pub struct Ingress<T: Send + Sync + 'static> {
    shared: Arc<Shared<T>>,
    pump: Option<std::thread::JoinHandle<()>>,
}

impl<T: Send + Sync + 'static> fmt::Debug for Ingress<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ingress").field("stats", &self.stats()).finish()
    }
}

impl<T: Send + Sync + 'static> Ingress<T> {
    /// Starts the front door over `service`, spawning its pump thread.
    ///
    /// Ingress metrics register into the *service's* unified registry
    /// under `ingress.*` names; two `Ingress` instances over the same
    /// service therefore share counters (their traffic aggregates into
    /// one scrape surface). Run each front door over its own service if
    /// per-ingress metrics are needed.
    pub fn start(service: Arc<OracleService<T>>, cfg: IngressConfig) -> Self {
        let stats = StatsCells::new(Arc::clone(service.obs()));
        let shared = Arc::new(Shared {
            service,
            queue: SubmissionQueue::new(cfg.queue_capacity),
            tenants: TenantTable::default(),
            stats,
            cfg,
        });
        let pump_shared = Arc::clone(&shared);
        let pump = std::thread::Builder::new()
            .name("morpheus-ingress-pump".into())
            .spawn(move || pump_loop(&pump_shared))
            .expect("failed to spawn ingress pump thread");
        Ingress { shared, pump: Some(pump) }
    }

    /// Submits `y = A x` for `handle` under `tenant`, applying the
    /// configured default SLO (if any). Fails fast with
    /// [`IngressError::Backpressure`] when the tenant quota or queue
    /// capacity is exhausted, and with [`IngressError::Rejected`] when
    /// `x` does not match the handle's column count.
    pub fn submit<V: Scalar>(
        &self,
        tenant: &str,
        handle: &MatrixHandle<V>,
        x: Vec<V>,
    ) -> Result<Ticket<V>, IngressError> {
        self.submit_inner(tenant, handle, x, None)
    }

    /// [`Ingress::submit`] with an explicit absolute deadline overriding
    /// the default SLO. A request still queued at its deadline is shed
    /// with [`Backpressure::DeadlineExpired`] and never executes.
    pub fn submit_with_deadline<V: Scalar>(
        &self,
        tenant: &str,
        handle: &MatrixHandle<V>,
        x: Vec<V>,
        deadline: Instant,
    ) -> Result<Ticket<V>, IngressError> {
        self.submit_inner(tenant, handle, x, Some(deadline))
    }

    fn submit_inner<V: Scalar>(
        &self,
        tenant: &str,
        handle: &MatrixHandle<V>,
        x: Vec<V>,
        deadline: Option<Instant>,
    ) -> Result<Ticket<V>, IngressError> {
        let shared = &*self.shared;
        shared.stats.submitted.inc();
        if x.len() != handle.ncols() {
            return Err(IngressError::Rejected(format!(
                "input vector has {} elements, handle {} expects {}",
                x.len(),
                handle.id(),
                handle.ncols()
            )));
        }
        let tenant_slot = shared.tenants.acquire(tenant, shared.cfg.quota_for(tenant)).map_err(|b| {
            shared.stats.rejected_quota.inc();
            IngressError::Backpressure(b)
        })?;
        let submitted = Instant::now();
        let deadline = slo::resolve_deadline(submitted, deadline, shared.cfg.default_slo);
        let (tx, rx) = sync_channel(1);
        let trace = shared.stats.obs.mint_trace();
        let mut meta = JobMeta { _tenant: tenant_slot, deadline, trace, submitted, spans: Vec::new() };
        // The Admit span (dur 0, detail = queue depth observed at
        // admission) is staged locally now but hits the global ring only
        // after the push succeeds, so refused submissions leave no
        // orphaned trace behind.
        let admit = trace.is_some().then(|| {
            let rec = SpanRecord {
                trace,
                stage: Stage::Admit,
                start_ns: shared.stats.obs.instant_ns(submitted),
                dur_ns: 0,
                detail: shared.queue.depth(),
            };
            meta.spans.push(rec);
            rec
        });
        let req = QueuedRequest { meta, job: Box::new(Job { handle: handle.clone(), x, tx }) };
        match shared.queue.push(req) {
            Ok(()) => {
                if let Some(rec) = admit {
                    shared.stats.obs.span(rec.trace, rec.stage, rec.start_ns, 0, rec.detail);
                }
                shared.stats.queue_depth.set(shared.queue.depth());
                Ok(Ticket { rx, trace })
            }
            Err(PushRefused::Full(req)) => {
                // Dropping the refused request releases the tenant slot.
                drop(req);
                shared.stats.rejected_queue_full.inc();
                Err(IngressError::Backpressure(Backpressure::QueueFull {
                    capacity: shared.cfg.queue_capacity,
                }))
            }
            Err(PushRefused::Closed(req)) => {
                drop(req);
                Err(IngressError::Backpressure(Backpressure::ShuttingDown))
            }
        }
    }

    /// Current counters (see [`IngressStats`]) — a point-in-time copy of
    /// the registry cells, with the queue-depth gauge refreshed.
    pub fn stats(&self) -> IngressStats {
        let s = &self.shared.stats;
        let depth = self.shared.queue.depth();
        s.queue_depth.set(depth);
        IngressStats {
            submitted: s.submitted.get(),
            rejected_queue_full: s.rejected_queue_full.get(),
            rejected_quota: s.rejected_quota.get(),
            shed_deadline: s.shed_deadline.get(),
            shed_shutdown: s.shed_shutdown.get(),
            completed: s.completed.get(),
            failed: s.failed.get(),
            direct_requests: s.direct_requests.get(),
            coalesced_requests: s.coalesced_requests.get(),
            coalesced_batches: s.coalesced_batches.get(),
            cost_gate_declined: s.cost_gate_declined.get(),
            deadline_misses: s.deadline_misses.get(),
            queue_depth: depth,
        }
    }

    /// The service snapshot with [`ServiceSnapshot::ingress`] populated —
    /// one coherent operator view of the serving stack including this
    /// front door.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let mut snap = self.shared.service.snapshot();
        snap.ingress = Some(self.stats());
        snap
    }

    /// The service this front door executes on.
    pub fn service(&self) -> &Arc<OracleService<T>> {
        &self.shared.service
    }

    /// A tenant's current in-flight request count.
    pub fn tenant_inflight(&self, tenant: &str) -> usize {
        self.shared.tenants.inflight(tenant)
    }

    /// Holds queued work back from the pump. Submissions still admit (up
    /// to queue capacity and quotas); nothing executes until
    /// [`Ingress::resume`]. Deterministic-batch construction for tests
    /// and benchmarks — paused queues do not shed on a timer, the pump
    /// re-checks deadlines when resumed.
    pub fn pause(&self) {
        self.shared.queue.pause();
    }

    /// Releases [`Ingress::pause`]; everything queued drains as one
    /// coalescing window.
    pub fn resume(&self) {
        self.shared.queue.resume();
    }
}

impl<T: Send + Sync + 'static> Drop for Ingress<T> {
    fn drop(&mut self) {
        self.shared.queue.close();
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
    }
}

/// The pump: drain → (shed on shutdown | coalesce-and-execute), until the
/// queue closes and empties.
fn pump_loop<T: Send + Sync>(shared: &Shared<T>) {
    let mut state = batch::PumpState::new();
    while let Some(drained) = shared.queue.drain() {
        shared.stats.queue_depth.set(shared.queue.depth());
        if shared.queue.is_closed() {
            for mut req in drained {
                shared.stats.shed_shutdown.inc();
                shared.stats.resolve_request(&mut req.meta, 2);
                req.job.shed(Backpressure::ShuttingDown);
            }
            continue;
        }
        batch::process_batch(&shared.service, &shared.cfg, &shared.stats, &mut state, drained);
    }
}
