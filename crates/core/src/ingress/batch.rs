//! The coalescer: turns a drained batch of queued SpMV requests into the
//! cheapest equivalent set of planned executions.
//!
//! A drained batch is grouped by `(scalar type, handle id)` — only
//! requests against the *same* registered matrix with the *same* scalar
//! can share a kernel launch. Each group (chunked to
//! [`IngressConfig::max_batch`](super::IngressConfig::max_batch)) is then
//! either:
//!
//! * **coalesced** — the k input vectors are gathered into the row-major
//!   `ncols x k` block of [`morpheus::BatchWorkspace`], executed as *one*
//!   planned SpMM through the handle's shared
//!   [`ExecPlan`](morpheus::ExecPlan), and scattered back to the k
//!   tickets. Per-row accumulation order of the SpMM kernels matches the
//!   SpMV kernels column by column, so every ticket receives a result
//!   **bitwise identical** to a direct SpMV; or
//! * **executed directly**, one planned SpMV per request, when the group
//!   is a singleton, coalescing is disabled, or the cost-model gate
//!   declines.
//!
//! The gate consults the engine the service tunes with: coalescing k
//! requests is taken only when `spmm_time(k) < k * spmv_time` for the
//! handle's realized format — the same [`VirtualEngine`] arithmetic the
//! tuner trusts for format selection ([`MatrixAnalysis`] is computed once
//! per handle and cached for the pump's lifetime). Expired requests are
//! shed *before* grouping and never execute.
//!
//! [`VirtualEngine`]: morpheus_machine::VirtualEngine
//! [`MatrixAnalysis`]: morpheus_machine::MatrixAnalysis

use super::queue::{Job, QueuedRequest};
use super::slo::{expired, Backpressure};
use super::{CoalescePolicy, IngressConfig, IngressError, StatsCells};
use crate::serve::OracleService;
use crate::OracleError;
use morpheus::{BatchWorkspace, Scalar};
use morpheus_machine::{analyze, MatrixAnalysis};
use std::any::TypeId;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Pump-lifetime scratch: the per-scalar gather/scatter blocks and the
/// per-handle [`MatrixAnalysis`] cache feeding the cost gate.
pub(crate) struct PumpState {
    analyses: HashMap<u64, MatrixAnalysis>,
    bw_f32: BatchWorkspace<f32>,
    bw_f64: BatchWorkspace<f64>,
}

impl PumpState {
    pub(crate) fn new() -> Self {
        PumpState { analyses: HashMap::new(), bw_f32: BatchWorkspace::new(), bw_f64: BatchWorkspace::new() }
    }
}

/// Sheds expired requests, groups the rest and executes every group —
/// one pump cycle over a drained batch.
pub(crate) fn process_batch<T: Send + Sync>(
    service: &OracleService<T>,
    cfg: &IngressConfig,
    stats: &StatsCells,
    state: &mut PumpState,
    batch: Vec<QueuedRequest<T>>,
) {
    let now = Instant::now();
    let mut groups: Vec<Vec<QueuedRequest<T>>> = Vec::new();
    let mut index: HashMap<(TypeId, u64), usize> = HashMap::new();
    for mut req in batch {
        if expired(req.meta.deadline, now) {
            stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
            req.job.shed(Backpressure::DeadlineExpired);
            continue;
        }
        let key = (req.job.scalar(), req.job.handle_id());
        let gi = *index.entry(key).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[gi].push(req);
    }
    for mut group in groups {
        let scalar = group[0].job.scalar();
        if scalar == TypeId::of::<f32>() {
            execute_group::<T, f32>(service, cfg, stats, &mut state.analyses, &mut state.bw_f32, &mut group);
        } else if scalar == TypeId::of::<f64>() {
            execute_group::<T, f64>(service, cfg, stats, &mut state.analyses, &mut state.bw_f64, &mut group);
        } else {
            // A scalar this pump has no gather block for: still served,
            // one planned SpMV per request — never dropped.
            for req in group.iter_mut() {
                finish_direct(service, stats, req);
            }
        }
    }
}

/// Runs one request through the queued (no-silent-fallback) SpMV path and
/// settles its ticket and counters.
fn finish_direct<T: Send + Sync>(service: &OracleService<T>, stats: &StatsCells, req: &mut QueuedRequest<T>) {
    stats.direct_requests.fetch_add(1, Ordering::Relaxed);
    req.job.run_direct(service, stats, req.meta.deadline);
}

/// Executes one same-scalar, same-handle group: chunks it to the batch
/// cap, runs the cost gate per chunk, and coalesces or falls back to
/// direct execution accordingly.
fn execute_group<T: Send + Sync, V: Scalar>(
    service: &OracleService<T>,
    cfg: &IngressConfig,
    stats: &StatsCells,
    analyses: &mut HashMap<u64, MatrixAnalysis>,
    bw: &mut BatchWorkspace<V>,
    group: &mut [QueuedRequest<T>],
) {
    let cap = cfg.max_batch.max(1);
    for chunk in group.chunks_mut(cap) {
        let k = chunk.len();
        let coalesce = k >= 2
            && match cfg.coalesce {
                CoalescePolicy::Never => false,
                CoalescePolicy::Always => true,
                CoalescePolicy::CostModel => {
                    let passes = cost_gate_passes::<T, V>(service, analyses, chunk);
                    if !passes {
                        stats.cost_gate_declined.fetch_add(1, Ordering::Relaxed);
                    }
                    passes
                }
            };
        if coalesce {
            coalesce_chunk::<T, V>(service, stats, bw, chunk);
        } else {
            for req in chunk.iter_mut() {
                finish_direct(service, stats, req);
            }
        }
    }
}

/// The cost-model gate: coalescing `k` requests must beat `k` independent
/// SpMVs under the service's engine for the handle's realized format.
fn cost_gate_passes<T: Send + Sync, V: Scalar>(
    service: &OracleService<T>,
    analyses: &mut HashMap<u64, MatrixAnalysis>,
    chunk: &mut [QueuedRequest<T>],
) -> bool {
    let k = chunk.len();
    let job = chunk[0].job.as_any().downcast_mut::<Job<V>>().expect("chunk grouped by scalar");
    let fmt = job.handle.format_id();
    let Some(m) = job.handle.try_matrix() else {
        // Partitioned handles coalesce unconditionally: shard SpMM shares
        // the matrix-array streaming amortisation of the single-matrix
        // case on every shard, so batching k right-hand sides never loses.
        return true;
    };
    let a = analyses.entry(job.handle.id()).or_insert_with(|| analyze(m));
    let engine = service.engine();
    engine.spmm_time(fmt, a, k) < k as f64 * engine.spmv_time(fmt, a)
}

/// Gathers a chunk's input vectors, executes one planned SpMM, scatters
/// result columns back to the tickets — bitwise identical to k direct
/// SpMVs. On execution failure every ticket receives the (shared) error;
/// no ticket is left dangling and none sees partial results.
fn coalesce_chunk<T: Send + Sync, V: Scalar>(
    service: &OracleService<T>,
    stats: &StatsCells,
    bw: &mut BatchWorkspace<V>,
    chunk: &mut [QueuedRequest<T>],
) {
    let k = chunk.len();
    let deadlines: Vec<Option<Instant>> = chunk.iter().map(|r| r.meta.deadline).collect();
    let jobs: Vec<&Job<V>> = chunk
        .iter_mut()
        .map(|r| &*r.job.as_any().downcast_mut::<Job<V>>().expect("chunk grouped by scalar"))
        .collect();
    let handle = jobs[0].handle.clone();
    let columns: Vec<&[V]> = jobs.iter().map(|j| j.x.as_slice()).collect();
    match bw.run(handle.nrows(), &columns, |x, y| service.execute_queued_spmm(&handle, x, y, k)) {
        Ok(()) => {
            // Counters strictly before the ticket sends, so a client
            // returning from `wait()` never reads stale stats.
            let now = Instant::now();
            stats.coalesced_requests.fetch_add(k as u64, Ordering::Relaxed);
            stats.coalesced_batches.fetch_add(1, Ordering::Relaxed);
            stats.completed.fetch_add(k as u64, Ordering::Relaxed);
            let misses = deadlines.iter().filter(|d| expired(**d, now)).count();
            if misses > 0 {
                stats.deadline_misses.fetch_add(misses as u64, Ordering::Relaxed);
            }
            for (j, job) in jobs.iter().enumerate() {
                let mut out = Vec::new();
                bw.scatter_into(j, &mut out);
                job.send(Ok(out));
            }
        }
        Err(e) => {
            stats.failed.fetch_add(k as u64, Ordering::Relaxed);
            let shared = Arc::new(OracleError::Morpheus(e));
            for job in &jobs {
                job.send(Err(IngressError::Exec(Arc::clone(&shared))));
            }
        }
    }
}
