//! The coalescer: turns a drained batch of queued SpMV requests into the
//! cheapest equivalent set of planned executions.
//!
//! A drained batch is grouped by `(scalar type, handle id)` — only
//! requests against the *same* registered matrix with the *same* scalar
//! can share a kernel launch. Each group (chunked to
//! [`IngressConfig::max_batch`](super::IngressConfig::max_batch)) is then
//! either:
//!
//! * **coalesced** — the k input vectors are gathered into the row-major
//!   `ncols x k` block of [`morpheus::BatchWorkspace`], executed as *one*
//!   planned SpMM through the handle's shared
//!   [`ExecPlan`](morpheus::ExecPlan), and scattered back to the k
//!   tickets. Per-row accumulation order of the SpMM kernels matches the
//!   SpMV kernels column by column, so every ticket receives a result
//!   **bitwise identical** to a direct SpMV; or
//! * **executed directly**, one planned SpMV per request, when the group
//!   is a singleton, coalescing is disabled, or the cost-model gate
//!   declines.
//!
//! The gate consults the engine the service tunes with: coalescing k
//! requests is taken only when `spmm_time(k) < k * spmv_time` for the
//! handle's realized format — the same [`VirtualEngine`] arithmetic the
//! tuner trusts for format selection ([`MatrixAnalysis`] is computed once
//! per handle and cached for the pump's lifetime). Expired requests are
//! shed *before* grouping and never execute.
//!
//! [`VirtualEngine`]: morpheus_machine::VirtualEngine
//! [`MatrixAnalysis`]: morpheus_machine::MatrixAnalysis

use super::queue::{Job, QueuedRequest};
use super::slo::{expired, Backpressure};
use super::{CoalescePolicy, IngressConfig, IngressError, StatsCells};
use crate::obs::{Stage, TraceId};
use crate::serve::OracleService;
use crate::OracleError;
use morpheus::{BatchWorkspace, Scalar};
use morpheus_machine::{analyze, MatrixAnalysis};
use std::any::TypeId;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

#[inline]
fn ns(d: std::time::Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Pump-lifetime scratch: the per-scalar gather/scatter blocks and the
/// per-handle [`MatrixAnalysis`] cache feeding the cost gate.
pub(crate) struct PumpState {
    analyses: HashMap<u64, MatrixAnalysis>,
    bw_f32: BatchWorkspace<f32>,
    bw_f64: BatchWorkspace<f64>,
}

impl PumpState {
    pub(crate) fn new() -> Self {
        PumpState { analyses: HashMap::new(), bw_f32: BatchWorkspace::new(), bw_f64: BatchWorkspace::new() }
    }
}

/// Sheds expired requests, groups the rest and executes every group —
/// one pump cycle over a drained batch.
pub(crate) fn process_batch<T: Send + Sync>(
    service: &OracleService<T>,
    cfg: &IngressConfig,
    stats: &StatsCells,
    state: &mut PumpState,
    batch: Vec<QueuedRequest<T>>,
) {
    let now = Instant::now();
    let mut groups: Vec<Vec<QueuedRequest<T>>> = Vec::new();
    let mut index: HashMap<(TypeId, u64), usize> = HashMap::new();
    for mut req in batch {
        if expired(req.meta.deadline, now) {
            stats.shed_deadline.inc();
            stats.resolve_request(&mut req.meta, 2);
            req.job.shed(Backpressure::DeadlineExpired);
            continue;
        }
        if req.meta.trace.is_some() {
            let wait_ns = ns(now.saturating_duration_since(req.meta.submitted));
            stats.queue_wait_hist.record_ns(wait_ns);
            let start_ns = stats.obs.instant_ns(req.meta.submitted);
            stats.stage_span(&mut req.meta, Stage::QueueWait, start_ns, wait_ns, 0);
        }
        let key = (req.job.scalar(), req.job.handle_id());
        let gi = *index.entry(key).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[gi].push(req);
    }
    for mut group in groups {
        let scalar = group[0].job.scalar();
        if scalar == TypeId::of::<f32>() {
            execute_group::<T, f32>(service, cfg, stats, &mut state.analyses, &mut state.bw_f32, &mut group);
        } else if scalar == TypeId::of::<f64>() {
            execute_group::<T, f64>(service, cfg, stats, &mut state.analyses, &mut state.bw_f64, &mut group);
        } else {
            // A scalar this pump has no gather block for: still served,
            // one planned SpMV per request — never dropped.
            for req in group.iter_mut() {
                finish_direct(service, stats, req);
            }
        }
    }
}

/// Runs one request through the queued (no-silent-fallback) SpMV path and
/// settles its ticket, spans and counters.
fn finish_direct<T: Send + Sync>(service: &OracleService<T>, stats: &StatsCells, req: &mut QueuedRequest<T>) {
    stats.direct_requests.inc();
    req.job.run_direct(service, stats, &mut req.meta);
}

/// Executes one same-scalar, same-handle group: chunks it to the batch
/// cap, runs the cost gate per chunk, and coalesces or falls back to
/// direct execution accordingly.
fn execute_group<T: Send + Sync, V: Scalar>(
    service: &OracleService<T>,
    cfg: &IngressConfig,
    stats: &StatsCells,
    analyses: &mut HashMap<u64, MatrixAnalysis>,
    bw: &mut BatchWorkspace<V>,
    group: &mut [QueuedRequest<T>],
) {
    let cap = cfg.max_batch.max(1);
    for chunk in group.chunks_mut(cap) {
        let k = chunk.len();
        let t_gate = stats.obs.enabled().then(Instant::now);
        let coalesce = k >= 2
            && match cfg.coalesce {
                CoalescePolicy::Never => false,
                CoalescePolicy::Always => true,
                CoalescePolicy::CostModel => {
                    let passes = cost_gate_passes::<T, V>(service, analyses, chunk);
                    if !passes {
                        stats.cost_gate_declined.inc();
                    }
                    passes
                }
            };
        if let Some(t_gate) = t_gate {
            // One CoalesceDecision per request: detail = the batch width
            // the request executed under (k when coalesced, 0 when it
            // went direct); dur = the chunk's gate-evaluation time.
            let gate_ns = ns(t_gate.elapsed());
            stats.coalesce_hist.record_ns(gate_ns);
            let start_ns = stats.obs.instant_ns(t_gate);
            let detail = if coalesce { k as u64 } else { 0 };
            for req in chunk.iter_mut() {
                stats.stage_span(&mut req.meta, Stage::CoalesceDecision, start_ns, gate_ns, detail);
            }
        }
        if coalesce {
            coalesce_chunk::<T, V>(service, stats, bw, chunk);
        } else {
            for req in chunk.iter_mut() {
                finish_direct(service, stats, req);
            }
        }
    }
}

/// The cost-model gate: coalescing `k` requests must beat `k` independent
/// SpMVs under the service's engine for the handle's realized format.
fn cost_gate_passes<T: Send + Sync, V: Scalar>(
    service: &OracleService<T>,
    analyses: &mut HashMap<u64, MatrixAnalysis>,
    chunk: &mut [QueuedRequest<T>],
) -> bool {
    let k = chunk.len();
    let job = chunk[0].job.as_any().downcast_mut::<Job<V>>().expect("chunk grouped by scalar");
    let fmt = job.handle.format_id();
    let Some(m) = job.handle.try_matrix() else {
        // Partitioned handles coalesce unconditionally: shard SpMM shares
        // the matrix-array streaming amortisation of the single-matrix
        // case on every shard, so batching k right-hand sides never loses.
        return true;
    };
    let a = analyses.entry(job.handle.id()).or_insert_with(|| analyze(m));
    let engine = service.engine();
    engine.spmm_time(fmt, a, k) < k as f64 * engine.spmv_time(fmt, a)
}

/// Gathers a chunk's input vectors, executes one planned SpMM, scatters
/// result columns back to the tickets — bitwise identical to k direct
/// SpMVs. On execution failure every ticket receives the (shared) error;
/// no ticket is left dangling and none sees partial results.
fn coalesce_chunk<T: Send + Sync, V: Scalar>(
    service: &OracleService<T>,
    stats: &StatsCells,
    bw: &mut BatchWorkspace<V>,
    chunk: &mut [QueuedRequest<T>],
) {
    let k = chunk.len();
    let obs_on = stats.obs.enabled();
    // (start_ns, dur_ns) of the shared kernel execution — every request
    // of the chunk gets the same Exec span, and the exec histogram takes
    // one sample per execution, not per request.
    let mut exec_span: Option<(u64, u64)> = None;
    let run = {
        let jobs: Vec<&Job<V>> = chunk
            .iter_mut()
            .map(|r| &*r.job.as_any().downcast_mut::<Job<V>>().expect("chunk grouped by scalar"))
            .collect();
        let handle = jobs[0].handle.clone();
        let columns: Vec<&[V]> = jobs.iter().map(|j| j.x.as_slice()).collect();
        let exec_span = &mut exec_span;
        bw.run(handle.nrows(), &columns, move |x, y| {
            // A coalesced execution serves k requests at once; no single
            // request owns it, so the service-side fine spans get NONE and
            // the per-request Exec spans are emitted below from this one
            // measurement.
            let t0 = obs_on.then(Instant::now);
            let r = service.execute_queued_spmm(&handle, x, y, k, TraceId::NONE);
            if let Some(t0) = t0 {
                let dur = ns(t0.elapsed());
                stats.exec_hist.record_ns(dur);
                *exec_span = Some((stats.obs.instant_ns(t0), dur));
            }
            r
        })
    };
    match run {
        Ok(()) => {
            // Counters strictly before the ticket sends, so a client
            // returning from `wait()` never reads stale stats.
            let now = Instant::now();
            stats.coalesced_requests.add(k as u64);
            stats.coalesced_batches.inc();
            stats.completed.add(k as u64);
            let misses = chunk.iter().filter(|r| expired(r.meta.deadline, now)).count();
            if misses > 0 {
                stats.deadline_misses.add(misses as u64);
            }
            for (j, req) in chunk.iter_mut().enumerate() {
                let missed = expired(req.meta.deadline, now);
                let t_sc = req.meta.trace.is_some().then(Instant::now);
                let mut out = Vec::new();
                bw.scatter_into(j, &mut out);
                if let Some(t_sc) = t_sc {
                    if let Some((start_ns, dur_ns)) = exec_span {
                        stats.stage_span(&mut req.meta, Stage::Exec, start_ns, dur_ns, 0);
                    }
                    let sc_ns = ns(t_sc.elapsed());
                    stats.scatter_hist.record_ns(sc_ns);
                    let start_ns = stats.obs.instant_ns(t_sc);
                    stats.stage_span(&mut req.meta, Stage::Scatter, start_ns, sc_ns, 0);
                }
                stats.resolve_request(&mut req.meta, u64::from(missed));
                let job = req.job.as_any().downcast_mut::<Job<V>>().expect("chunk grouped by scalar");
                job.send(Ok(out));
            }
        }
        Err(e) => {
            stats.failed.add(k as u64);
            let shared = Arc::new(OracleError::Morpheus(e));
            for req in chunk.iter_mut() {
                stats.resolve_request(&mut req.meta, 3);
                let job = req.job.as_any().downcast_mut::<Job<V>>().expect("chunk grouped by scalar");
                job.send(Err(IngressError::Exec(Arc::clone(&shared))));
            }
        }
    }
}
