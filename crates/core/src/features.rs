//! The ten-feature matrix characterisation of Table I.
//!
//! "Feature extraction ... refers to the process of transforming the
//! original sparse matrix into a set of numerical 'features' that can be
//! processed by the model while preserving the information about the
//! sparsity pattern" (§IV). The features capture matrix size (M, N, NNZ),
//! density, the row-occupancy distribution (mean/max/min/std — the
//! ELL-suitability signals) and the diagonal structure (ND, NTD — the
//! DIA/HDC-suitability signals).

use morpheus::hdc::DEFAULT_TRUE_DIAG_ALPHA;
use morpheus::stats::{stats_of, MatrixStats};
use morpheus::{DynamicMatrix, Scalar};

/// Number of features in the vector: the ten Table-I columns plus the two
/// parameterized-format signals (block compactness for BSR, bucket padding
/// skew for BELL).
pub const NUM_FEATURES: usize = 12;

/// Feature names, in vector order (Table I, then the block-format signals).
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "M",             // number of rows
    "N",             // number of columns
    "NNZ",           // number of non-zeros
    "avg_nnz",       // mean non-zeros per row
    "density",       // NNZ / (M * N)
    "max_nnz",       // max non-zeros per row
    "min_nnz",       // min non-zeros per row
    "std_nnz",       // std of non-zeros per row
    "ndiags",        // non-empty diagonals
    "ntrue_diags",   // true diagonals
    "block_density", // entry fraction on adjacent-diagonal runs (BSR signal)
    "bucket_skew",   // default-ladder BELL padding over nnz (BELL signal)
];

/// A Table-I feature vector for one matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureVector(pub [f64; NUM_FEATURES]);

impl FeatureVector {
    /// Builds the vector from precomputed statistics.
    pub fn from_stats(s: &MatrixStats) -> Self {
        FeatureVector([
            s.nrows as f64,
            s.ncols as f64,
            s.nnz as f64,
            s.row_nnz_mean,
            s.density(),
            s.row_nnz_max as f64,
            s.row_nnz_min as f64,
            s.row_nnz_std,
            s.ndiags as f64,
            s.ntrue_diags as f64,
            s.block_density,
            s.bucket_skew,
        ])
    }

    /// Builds the vector from a shared [`morpheus::Analysis`] — zero
    /// additional matrix traversals (the statistics were reduced when the
    /// analysis was computed).
    pub fn from_analysis(a: &morpheus::Analysis) -> Self {
        Self::from_stats(&a.stats)
    }

    /// Extracts features directly from a matrix in its *active* format
    /// (§VI-C: no conversion, no data transfer).
    pub fn extract<V: Scalar>(m: &DynamicMatrix<V>) -> Self {
        Self::extract_with_alpha(m, DEFAULT_TRUE_DIAG_ALPHA)
    }

    /// [`FeatureVector::extract`] with an explicit true-diagonal fraction.
    pub fn extract_with_alpha<V: Scalar>(m: &DynamicMatrix<V>, alpha: f64) -> Self {
        Self::from_stats(&stats_of(m, alpha))
    }

    /// The raw values, in [`FEATURE_NAMES`] order.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// The SpMV bottleneck label implied by these features — the same
    /// classification [`morpheus::Analysis::bottleneck`] derives, so a
    /// stored feature vector (e.g. a telemetry sample or a training row)
    /// can be bucketed by bottleneck without the matrix at hand.
    pub fn bottleneck(&self) -> morpheus::Bottleneck {
        let f = &self.0;
        morpheus::Bottleneck::classify(
            f[0] as usize,
            f[1] as usize,
            f[2] as usize,
            f[3],
            f[5] as usize,
            f[7],
            f[8] as usize,
        )
    }
}

impl std::fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (name, v)) in FEATURE_NAMES.iter().zip(self.0.iter()).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}={v:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus::format::ALL_FORMATS;
    use morpheus::{ConvertOptions, CooMatrix};

    fn sample() -> DynamicMatrix<f64> {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let n = 60usize;
        for i in 0..n {
            rows.push(i);
            cols.push(i);
            if i + 2 < n {
                rows.push(i);
                cols.push(i + 2);
            }
        }
        let vals = vec![1.0; rows.len()];
        DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    #[test]
    fn vector_matches_table_i() {
        let fv = FeatureVector::extract(&sample());
        assert_eq!(fv.0[0], 60.0); // M
        assert_eq!(fv.0[1], 60.0); // N
        assert_eq!(fv.0[2], 118.0); // NNZ = 60 + 58
        assert!((fv.0[3] - 118.0 / 60.0).abs() < 1e-12); // avg
        assert!((fv.0[4] - 118.0 / 3600.0).abs() < 1e-12); // density
        assert_eq!(fv.0[5], 2.0); // max per row
        assert_eq!(fv.0[6], 1.0); // min per row
        assert_eq!(fv.0[8], 2.0); // two diagonals
        assert_eq!(fv.0[9], 2.0); // both true at alpha 0.2
    }

    #[test]
    fn extraction_invariant_across_active_formats() {
        let base = sample();
        let reference = FeatureVector::extract(&base);
        for &fmt in &ALL_FORMATS {
            let m = base.to_format(fmt, &ConvertOptions::default()).unwrap();
            assert_eq!(FeatureVector::extract(&m), reference, "{fmt}");
        }
    }

    #[test]
    fn alpha_changes_ntd_only() {
        let m = sample();
        let loose = FeatureVector::extract_with_alpha(&m, 0.1);
        let strict = FeatureVector::extract_with_alpha(&m, 1.0);
        assert_eq!(loose.0[..9], strict.0[..9]);
        assert!(strict.0[9] <= loose.0[9]);
    }

    #[test]
    fn bottleneck_label_agrees_with_the_analysis_classification() {
        let m = sample();
        let fv = FeatureVector::extract(&m);
        let an = morpheus::Analysis::of(&m, 0.2);
        assert_eq!(fv.bottleneck(), an.bottleneck());
        assert_eq!(fv.bottleneck(), morpheus::Bottleneck::Bandwidth);
    }

    #[test]
    fn names_align_with_count() {
        assert_eq!(FEATURE_NAMES.len(), NUM_FEATURES);
        let fv = FeatureVector::extract(&sample());
        assert_eq!(fv.as_slice().len(), NUM_FEATURES);
        let shown = fv.to_string();
        for name in FEATURE_NAMES {
            assert!(shown.contains(name), "missing {name} in display");
        }
    }
}
