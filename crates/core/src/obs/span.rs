//! Span-based request tracing: a lock-free fixed-capacity ring of
//! [`SpanRecord`]s plus a bounded flight recorder for slow requests.
//!
//! The ring follows the drop-not-stall discipline of the adapt telemetry
//! ring: writers claim a slot with one `fetch_add` on a global cursor and
//! publish through a per-slot sequence word (a seqlock), so a writer never
//! blocks a request and a reader never blocks a writer. When the ring
//! wraps, the oldest spans are overwritten — [`SpanRing::overwritten`]
//! reports how many, so consumers know whether a trace may be incomplete.
//!
//! Timestamps are nanoseconds from the owning `Obs` hub's monotonic epoch
//! (`Instant`-based), shared with the `adapt` sampling clock: spans and
//! `SampleKey` telemetry agree on *time*, while keeping separate storage.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use std::collections::VecDeque;

/// Identifies one request across every layer it passes through.
///
/// `0` is reserved for "untraced" (tracing off, or a span recorded
/// outside any request); real ids start at 1 and are minted by
/// `Obs::mint_trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The reserved "no trace" id.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this is a real (non-zero) trace id.
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }

    /// Whether this is the reserved [`TraceId::NONE`].
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// The stage a span measures. A complete ingress request produces the
/// tree `Admit → QueueWait → CoalesceDecision → Exec → Scatter → Resolve`
/// (plus `Plan` when a plan is fetched or built, and per-shard `Exec`
/// spans at `TraceLevel::Fine`); a direct registered-path request
/// produces `Plan → Exec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Request accepted by `Ingress::submit`; `detail` = queue depth at
    /// admission, duration 0.
    Admit,
    /// Time spent in the submission queue before the pump drained it.
    QueueWait,
    /// The pump's coalesce gate; `detail` = batch size when coalesced,
    /// 0 when declined or ineligible.
    CoalesceDecision,
    /// Plan acquisition; `detail` = 1 on cache hit, 0 when built.
    Plan,
    /// Kernel execution. Request-level on the coarse path; `detail`
    /// carries the shard index on fine-level per-shard spans.
    Exec,
    /// Scattering a coalesced SpMM column back into the caller's vector.
    Scatter,
    /// End of the request's life; duration = submit→resolve, `detail` =
    /// 0 delivered, 1 delivered after its deadline, 2 shed, 3 failed.
    Resolve,
}

impl Stage {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admit => "admit",
            Stage::QueueWait => "queue_wait",
            Stage::CoalesceDecision => "coalesce_decision",
            Stage::Plan => "plan",
            Stage::Exec => "exec",
            Stage::Scatter => "scatter",
            Stage::Resolve => "resolve",
        }
    }

    fn from_code(c: u64) -> Stage {
        match c {
            0 => Stage::Admit,
            1 => Stage::QueueWait,
            2 => Stage::CoalesceDecision,
            3 => Stage::Plan,
            4 => Stage::Exec,
            5 => Stage::Scatter,
            _ => Stage::Resolve,
        }
    }

    fn code(self) -> u64 {
        match self {
            Stage::Admit => 0,
            Stage::QueueWait => 1,
            Stage::CoalesceDecision => 2,
            Stage::Plan => 3,
            Stage::Exec => 4,
            Stage::Scatter => 5,
            Stage::Resolve => 6,
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request this span belongs to.
    pub trace: TraceId,
    /// What was measured.
    pub stage: Stage,
    /// Start, ns since the `Obs` epoch.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
    /// Stage-specific detail (see [`Stage`] variants).
    pub detail: u64,
}

/// Slot sentinel: sequence word value while a writer owns the slot.
const WRITING: u64 = u64::MAX;

#[derive(Debug)]
struct Slot {
    /// Seqlock word: `WRITING` while a claim is in flight, else
    /// `claim_index + 1` of the last published record (0 = never written).
    seq: AtomicU64,
    trace: AtomicU64,
    stage: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    detail: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            stage: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            detail: AtomicU64::new(0),
        }
    }
}

/// Lock-free fixed-capacity span ring (power-of-two capacity).
///
/// Writers: `cursor.fetch_add(1)` claims slot `idx & mask`; the slot's
/// sequence word is set to [`WRITING`], the payload stored, then the
/// sequence published as `idx + 1` (release). Readers re-check the
/// sequence around the payload read and drop torn records. A wrapped
/// writer simply overwrites — recording never stalls a request.
#[derive(Debug)]
pub struct SpanRing {
    slots: Box<[Slot]>,
    mask: u64,
    cursor: AtomicU64,
}

impl SpanRing {
    /// Creates a ring holding `capacity` spans (rounded up to a power of
    /// two, minimum 64).
    pub fn new(capacity: usize) -> SpanRing {
        let cap = capacity.next_power_of_two().max(64);
        SpanRing {
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            mask: (cap - 1) as u64,
            cursor: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Spans lost to ring wrap so far.
    pub fn overwritten(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// Records one span. Lock-free; safe from any thread.
    pub fn record(&self, rec: SpanRecord) {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx & self.mask) as usize];
        slot.seq.store(WRITING, Ordering::Release);
        slot.trace.store(rec.trace.0, Ordering::Relaxed);
        slot.stage.store(rec.stage.code(), Ordering::Relaxed);
        slot.start_ns.store(rec.start_ns, Ordering::Relaxed);
        slot.dur_ns.store(rec.dur_ns, Ordering::Relaxed);
        slot.detail.store(rec.detail, Ordering::Relaxed);
        slot.seq.store(idx + 1, Ordering::Release);
    }

    /// Copies out every currently readable span, oldest first. Records
    /// being concurrently overwritten are skipped (seqlock validation),
    /// never returned torn.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let cursor = self.cursor.load(Ordering::Acquire);
        let cap = self.capacity() as u64;
        let start = cursor.saturating_sub(cap);
        let mut out = Vec::with_capacity((cursor - start) as usize);
        for idx in start..cursor {
            let slot = &self.slots[(idx & self.mask) as usize];
            let seq0 = slot.seq.load(Ordering::Acquire);
            if seq0 != idx + 1 {
                // Not yet published for this claim, or already overwritten.
                continue;
            }
            let rec = SpanRecord {
                trace: TraceId(slot.trace.load(Ordering::Relaxed)),
                stage: Stage::from_code(slot.stage.load(Ordering::Relaxed)),
                start_ns: slot.start_ns.load(Ordering::Relaxed),
                dur_ns: slot.dur_ns.load(Ordering::Relaxed),
                detail: slot.detail.load(Ordering::Relaxed),
            };
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == seq0 {
                out.push(rec);
            }
        }
        out
    }
}

/// One retained slow request: its full span tree plus the totals that
/// triggered capture.
#[derive(Debug, Clone)]
pub struct SlowRequest {
    /// The breaching request.
    pub trace: TraceId,
    /// Submit→resolve latency, ns.
    pub total_ns: u64,
    /// The SLO/threshold the request was judged against, ns.
    pub threshold_ns: u64,
    /// The request's spans, in recording order.
    pub spans: Vec<SpanRecord>,
}

/// Bounded ring of [`SlowRequest`]s for postmortems. Capture happens
/// only on threshold breach — off the hot path by construction — so a
/// mutex-guarded deque is the right tool, not another lock-free ring.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<SlowRequest>>,
    capacity: usize,
    captured: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder retaining at most `capacity` requests
    /// (oldest evicted first).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            captured: AtomicU64::new(0),
        }
    }

    /// Retains one breaching request.
    pub fn capture(&self, req: SlowRequest) {
        self.captured.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(req);
    }

    /// Total captures ever (including evicted ones).
    pub fn captured_total(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// The currently retained requests, oldest first.
    pub fn snapshot(&self) -> Vec<SlowRequest> {
        self.ring.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, stage: Stage, start: u64) -> SpanRecord {
        SpanRecord { trace: TraceId(trace), stage, start_ns: start, dur_ns: 5, detail: 0 }
    }

    #[test]
    fn ring_keeps_newest_when_wrapped() {
        let ring = SpanRing::new(64);
        for i in 0..100u64 {
            ring.record(span(i, Stage::Exec, i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 64);
        assert_eq!(ring.overwritten(), 36);
        assert_eq!(snap.first().unwrap().trace, TraceId(36));
        assert_eq!(snap.last().unwrap().trace, TraceId(99));
    }

    #[test]
    fn stage_codes_round_trip() {
        for s in [
            Stage::Admit,
            Stage::QueueWait,
            Stage::CoalesceDecision,
            Stage::Plan,
            Stage::Exec,
            Stage::Scatter,
            Stage::Resolve,
        ] {
            assert_eq!(Stage::from_code(s.code()), s);
        }
    }

    #[test]
    fn concurrent_writers_never_produce_torn_records() {
        let ring = SpanRing::new(128);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..2000u64 {
                        // Encode writer+iteration in every field so a torn
                        // record is detectable.
                        let v = t * 10_000 + i;
                        ring.record(SpanRecord {
                            trace: TraceId(v),
                            stage: Stage::Exec,
                            start_ns: v,
                            dur_ns: v,
                            detail: v,
                        });
                    }
                });
            }
            // Snapshot concurrently with the writers.
            for _ in 0..50 {
                for rec in ring.snapshot() {
                    assert_eq!(rec.trace.0, rec.start_ns);
                    assert_eq!(rec.start_ns, rec.dur_ns);
                    assert_eq!(rec.dur_ns, rec.detail);
                }
            }
        });
        assert_eq!(ring.recorded(), 8000);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 128);
    }

    #[test]
    fn flight_recorder_evicts_oldest() {
        let fr = FlightRecorder::new(2);
        for i in 0..3u64 {
            fr.capture(SlowRequest {
                trace: TraceId(i + 1),
                total_ns: 1000 * (i + 1),
                threshold_ns: 500,
                spans: vec![span(i + 1, Stage::Resolve, 0)],
            });
        }
        assert_eq!(fr.captured_total(), 3);
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].trace, TraceId(2));
        assert_eq!(snap[1].trace, TraceId(3));
    }
}
