//! Log-bucketed latency histograms, mergeable across threads.
//!
//! A [`Histogram`] is 64 atomic buckets — bucket `b ≥ 1` counts values
//! whose bit length is `b`, i.e. the nanosecond range `[2^(b-1), 2^b)` —
//! plus count/sum/max cells. Recording is a handful of relaxed atomic
//! adds, cheap enough for the serving hot path; quantiles are estimated
//! at read time by walking the cumulative bucket counts and interpolating
//! linearly inside the landing bucket (log₂ buckets bound the relative
//! error of any quantile by 2x, far below the run-to-run variance of the
//! latencies being measured).
//!
//! [`percentile_exact`] is the *exact* sample percentile (numpy's default
//! linear interpolation), shared with `morpheus-bench` so benchmark and
//! runtime quantile math cannot drift apart.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count of a [`Histogram`]: one per possible bit length of a
/// `u64` nanosecond value (bucket 0 holds exact zeros; the top bucket
/// absorbs everything from `2^62` on).
pub const HIST_BUCKETS: usize = 64;

/// A lock-free log₂-bucketed histogram of nanosecond durations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

#[inline]
fn bucket_of(ns: u64) -> usize {
    // Bit length, clamped so 2^63.. shares the top bucket.
    ((u64::BITS - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration (relaxed atomics; callers may race freely).
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records one [`std::time::Duration`].
    #[inline]
    pub fn record(&self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Recorded samples so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the cells. Buckets are read individually
    /// (relaxed), so a snapshot taken under concurrent writes may be off
    /// by the in-flight samples — fine for the monitoring surface it
    /// feeds.
    pub fn summary(&self) -> HistSummary {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (b, cell) in buckets.iter_mut().zip(&self.buckets) {
            *b = cell.load(Ordering::Relaxed);
        }
        HistSummary {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// An owned point-in-time view of a [`Histogram`]: the quantile and
/// merge/delta arithmetic lives here so summaries from different threads,
/// services or bench phases compose without touching the live cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    /// Per-bucket counts (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all recorded durations, ns.
    pub sum_ns: u64,
    /// Largest recorded duration, ns.
    pub max_ns: u64,
}

impl Default for HistSummary {
    fn default() -> Self {
        HistSummary { buckets: [0; HIST_BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }
}

impl HistSummary {
    /// Arithmetic mean, ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), ns: walks the cumulative
    /// bucket counts to the bucket holding the target rank and
    /// interpolates linearly inside its `[2^(b-1), 2^b)` range, clamped to
    /// the observed maximum. 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based target rank: the smallest value with at least this many
        // samples at or below it.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= target {
                let lo: u64 = if b <= 1 { 0 } else { 1u64 << (b - 1) };
                let hi: u64 = if b == 0 {
                    0
                } else if b == HIST_BUCKETS - 1 {
                    self.max_ns.max(lo)
                } else {
                    (1u64 << b).min(self.max_ns.max(lo))
                };
                let frac = (target - cum) as f64 / n as f64;
                return (lo as f64 + frac * (hi - lo) as f64).round() as u64;
            }
            cum += n;
        }
        self.max_ns
    }

    /// Median estimate, ns.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 90th percentile estimate, ns.
    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    /// 99th percentile estimate, ns.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Folds another summary in (counts and sums add, maxima take the
    /// larger) — how per-thread or per-shard histograms aggregate.
    pub fn merge(&mut self, other: &HistSummary) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The samples recorded *since* `earlier` was taken of the same
    /// histogram: per-bucket and count/sum subtraction (saturating, so a
    /// mismatched pair degrades to zeros instead of wrapping). The
    /// maximum is not subtractable — the delta keeps the current max,
    /// which upper-bounds the window's true max.
    pub fn delta_since(&self, earlier: &HistSummary) -> HistSummary {
        let mut buckets = [0u64; HIST_BUCKETS];
        for ((d, b), e) in buckets.iter_mut().zip(&self.buckets).zip(&earlier.buckets) {
            *d = b.saturating_sub(*e);
        }
        HistSummary {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
            max_ns: self.max_ns,
        }
    }
}

/// Linear-interpolation percentile of an *unsorted* sample (numpy's
/// default method): `p` in `[0, 1]`. The one exact-percentile
/// implementation in the workspace — `morpheus-bench` report code
/// delegates here, so bench and runtime quantile conventions cannot
/// diverge.
///
/// # Panics
/// On an empty sample.
pub fn percentile_exact(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = p.clamp(0.0, 1.0) * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_by_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn quantiles_bound_known_samples() {
        let h = Histogram::new();
        for ns in [100u64, 200, 300, 400, 100_000] {
            h.record_ns(ns);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.max_ns, 100_000);
        assert_eq!(s.sum_ns, 101_000);
        // Log buckets guarantee at most 2x relative error upward.
        let p50 = s.p50_ns();
        assert!((100..=512).contains(&p50), "p50 {p50}");
        // The top quantile lands in the max's bucket, clamped to max.
        let p99 = s.p99_ns();
        assert!((65_536..=100_000).contains(&p99), "p99 {p99}");
        assert!(s.quantile_ns(1.0) <= s.max_ns);
    }

    #[test]
    fn empty_summary_is_all_zeros() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ns(), 0);
        assert_eq!(s.mean_ns(), 0.0);
    }

    #[test]
    fn merge_adds_and_delta_subtracts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for ns in [10u64, 20, 30] {
            a.record_ns(ns);
        }
        b.record_ns(1000);
        let mut m = a.summary();
        m.merge(&b.summary());
        assert_eq!(m.count, 4);
        assert_eq!(m.sum_ns, 1060);
        assert_eq!(m.max_ns, 1000);

        let before = a.summary();
        a.record_ns(500);
        a.record_ns(600);
        let d = a.summary().delta_since(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum_ns, 1100);
        let p50 = d.p50_ns();
        assert!((256..=1024).contains(&p50), "windowed p50 {p50}");
    }

    #[test]
    fn exact_percentile_interpolates_like_numpy() {
        let v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile_exact(&v, 0.0), 1.0);
        assert_eq!(percentile_exact(&v, 0.5), 2.5);
        assert_eq!(percentile_exact(&v, 1.0), 4.0);
        assert!((percentile_exact(&v, 0.99) - 3.97).abs() < 1e-12);
        assert_eq!(percentile_exact(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record_ns(t * 1000 + i);
                    }
                });
            }
        });
        let s = h.summary();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
        assert_eq!(s.max_ns, 3999);
    }
}
