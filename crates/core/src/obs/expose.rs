//! Metric exposition: a stable line-oriented text format and a JSON dump.
//!
//! The text format follows the workspace's model/decision-file
//! conventions (magic header, whitespace-tokenized lines, `#` comments,
//! `end` terminator) and is parsed with the same `morpheus-ml`
//! [`LineParser`], so one tokenizer rules every on-disk schema:
//!
//! ```text
//! morpheus-metrics v1
//! # any comment
//! counter ingress.requests_submitted 128
//! gauge pool.jobs_queued 0
//! hist ingress.exec_ns 128 91244032 1310720 524288 917504 1245184
//! end
//! ```
//!
//! Histogram lines carry `count sum max p50 p90 p99`, all integer
//! nanoseconds, so `render(parse(render(x))) == render(x)` exactly — the
//! round-trip property the exposition test asserts.

use std::fmt;
use std::io::BufRead;

use morpheus_ml::serialize::LineParser;

use super::hist::HistSummary;
use super::registry::MetricsSnapshot;
use super::span::SlowRequest;
use super::ObsSnapshot;

/// Magic first line of the text exposition.
pub const METRICS_MAGIC: &str = "morpheus-metrics v1";

/// One line of the text exposition, in render order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricLine {
    /// `counter <name> <value>`
    Counter {
        /// Metric name (`layer.noun_verb`).
        name: String,
        /// Counter value.
        value: u64,
    },
    /// `gauge <name> <value>`
    Gauge {
        /// Metric name.
        name: String,
        /// Gauge value.
        value: u64,
    },
    /// `hist <name> <count> <sum> <max> <p50> <p90> <p99>` (ns)
    Hist {
        /// Metric name.
        name: String,
        /// Sample count.
        count: u64,
        /// Sum of samples, ns.
        sum_ns: u64,
        /// Max sample, ns.
        max_ns: u64,
        /// Median estimate, ns.
        p50_ns: u64,
        /// 90th percentile estimate, ns.
        p90_ns: u64,
        /// 99th percentile estimate, ns.
        p99_ns: u64,
    },
}

/// A malformed exposition document.
#[derive(Debug)]
pub struct ExpositionError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ExpositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exposition parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ExpositionError {}

/// Flattens a metrics snapshot into exposition lines (counters, then
/// gauges, then histograms — each already name-sorted by the snapshot).
pub fn metric_lines(snap: &MetricsSnapshot) -> Vec<MetricLine> {
    let mut out = Vec::with_capacity(snap.counters.len() + snap.gauges.len() + snap.hists.len());
    for (name, value) in &snap.counters {
        out.push(MetricLine::Counter { name: name.clone(), value: *value });
    }
    for (name, value) in &snap.gauges {
        out.push(MetricLine::Gauge { name: name.clone(), value: *value });
    }
    for (name, h) in &snap.hists {
        out.push(hist_line(name, h));
    }
    out
}

fn hist_line(name: &str, h: &HistSummary) -> MetricLine {
    MetricLine::Hist {
        name: name.to_string(),
        count: h.count,
        sum_ns: h.sum_ns,
        max_ns: h.max_ns,
        p50_ns: h.p50_ns(),
        p90_ns: h.p90_ns(),
        p99_ns: h.p99_ns(),
    }
}

/// Renders exposition lines to the text format (always `\n`-terminated,
/// ending with `end`).
pub fn render_text(lines: &[MetricLine]) -> String {
    let mut out = String::new();
    out.push_str(METRICS_MAGIC);
    out.push('\n');
    for line in lines {
        match line {
            MetricLine::Counter { name, value } => {
                out.push_str(&format!("counter {name} {value}\n"));
            }
            MetricLine::Gauge { name, value } => {
                out.push_str(&format!("gauge {name} {value}\n"));
            }
            MetricLine::Hist { name, count, sum_ns, max_ns, p50_ns, p90_ns, p99_ns } => {
                out.push_str(&format!("hist {name} {count} {sum_ns} {max_ns} {p50_ns} {p90_ns} {p99_ns}\n"));
            }
        }
    }
    out.push_str("end\n");
    out
}

fn parse_u64(parser: &LineParser<impl BufRead>, tok: &str, what: &str) -> Result<u64, ExpositionError> {
    tok.parse::<u64>()
        .map_err(|_| ExpositionError { line: parser.lineno(), msg: format!("invalid {what}: {tok:?}") })
}

/// Parses a text exposition document back into lines. Tolerates blank
/// lines and `#` comments anywhere (the `LineParser` skips them);
/// requires the magic header and the `end` terminator.
pub fn parse_text(reader: impl BufRead) -> Result<Vec<MetricLine>, ExpositionError> {
    let mut parser = LineParser::new(reader);
    let io_err = |p: &LineParser<_>, e: std::io::Error| ExpositionError {
        line: p.lineno(),
        msg: format!("read failed: {e}"),
    };
    let header = parser
        .next_line()
        .map_err(|e| io_err(&parser, e))?
        .ok_or(ExpositionError { line: 1, msg: "empty document".into() })?;
    if header.join(" ") != METRICS_MAGIC {
        return Err(ExpositionError {
            line: parser.lineno(),
            msg: format!("bad magic, expected {METRICS_MAGIC:?}"),
        });
    }
    let mut out = Vec::new();
    loop {
        let Some(toks) = parser.next_line().map_err(|e| io_err(&parser, e))? else {
            return Err(ExpositionError { line: parser.lineno(), msg: "missing `end` terminator".into() });
        };
        let bad_arity = |p: &LineParser<_>| ExpositionError {
            line: p.lineno(),
            msg: format!("wrong field count for {:?}", toks[0]),
        };
        match toks[0].as_str() {
            "end" => return Ok(out),
            "counter" => {
                if toks.len() != 3 {
                    return Err(bad_arity(&parser));
                }
                let value = parse_u64(&parser, &toks[2], "counter value")?;
                out.push(MetricLine::Counter { name: toks[1].clone(), value });
            }
            "gauge" => {
                if toks.len() != 3 {
                    return Err(bad_arity(&parser));
                }
                let value = parse_u64(&parser, &toks[2], "gauge value")?;
                out.push(MetricLine::Gauge { name: toks[1].clone(), value });
            }
            "hist" => {
                if toks.len() != 8 {
                    return Err(bad_arity(&parser));
                }
                out.push(MetricLine::Hist {
                    name: toks[1].clone(),
                    count: parse_u64(&parser, &toks[2], "hist count")?,
                    sum_ns: parse_u64(&parser, &toks[3], "hist sum")?,
                    max_ns: parse_u64(&parser, &toks[4], "hist max")?,
                    p50_ns: parse_u64(&parser, &toks[5], "hist p50")?,
                    p90_ns: parse_u64(&parser, &toks[6], "hist p90")?,
                    p99_ns: parse_u64(&parser, &toks[7], "hist p99")?,
                });
            }
            other => {
                return Err(ExpositionError {
                    line: parser.lineno(),
                    msg: format!("unknown record kind {other:?}"),
                });
            }
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a full hub snapshot as a JSON object (`morpheus-obs/v1`).
pub fn render_json(snap: &ObsSnapshot) -> String {
    let mut out = String::from("{\n  \"schema\": \"morpheus-obs/v1\",\n");
    out.push_str("  \"counters\": {");
    for (i, (name, value)) in snap.metrics.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", json_escape(name), value));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, value)) in snap.metrics.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {}", json_escape(name), value));
    }
    out.push_str("\n  },\n  \"hists\": {");
    for (i, (name, h)) in snap.metrics.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}",
            json_escape(name),
            h.count,
            h.sum_ns,
            h.max_ns,
            h.p50_ns(),
            h.p90_ns(),
            h.p99_ns()
        ));
    }
    out.push_str("\n  },\n");
    out.push_str(&format!("  \"spans_recorded\": {},\n", snap.spans_recorded));
    out.push_str(&format!("  \"spans_overwritten\": {},\n", snap.spans_overwritten));
    out.push_str(&format!("  \"slow_captured\": {},\n", snap.slow_captured));
    out.push_str(&format!("  \"slow_retained\": {}\n}}\n", snap.slow_retained));
    out
}

/// Renders retained slow requests (their full span trees) as a JSON
/// array, for postmortem export.
pub fn render_flight_json(slow: &[SlowRequest]) -> String {
    let mut out = String::from("[");
    for (i, req) in slow.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"trace\": {}, \"total_ns\": {}, \"threshold_ns\": {}, \"spans\": [",
            req.trace.0, req.total_ns, req.threshold_ns
        ));
        for (j, s) in req.spans.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"stage\": \"{}\", \"start_ns\": {}, \"dur_ns\": {}, \"detail\": {}}}",
                s.stage.name(),
                s.start_ns,
                s.dur_ns,
                s.detail
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::super::registry::MetricsRegistry;
    use super::super::span::{SpanRecord, Stage, TraceId};
    use super::*;

    fn sample_lines() -> Vec<MetricLine> {
        let r = MetricsRegistry::new();
        r.counter("ingress.requests_submitted").add(128);
        r.counter("serve.requests_served").add(64);
        r.gauge("pool.jobs_queued").set(3);
        let h = r.histogram("ingress.exec_ns");
        for ns in [10_000u64, 20_000, 500_000, 1_000_000] {
            h.record_ns(ns);
        }
        metric_lines(&r.snapshot())
    }

    #[test]
    fn text_round_trips_exactly() {
        let lines = sample_lines();
        let text = render_text(&lines);
        assert!(text.starts_with(METRICS_MAGIC));
        assert!(text.ends_with("end\n"));
        let parsed = parse_text(text.as_bytes()).expect("parses");
        assert_eq!(parsed, lines);
        assert_eq!(render_text(&parsed), text);
    }

    #[test]
    fn parser_tolerates_comments_and_rejects_garbage() {
        let doc = format!("{METRICS_MAGIC}\n# scraped at t0\n\ncounter a.b 1\nend\n");
        let parsed = parse_text(doc.as_bytes()).expect("comments ok");
        assert_eq!(parsed.len(), 1);

        assert!(parse_text("not-metrics v1\nend\n".as_bytes()).is_err());
        let err =
            parse_text(format!("{METRICS_MAGIC}\ncounter a.b NaN\nend\n").as_bytes()).expect_err("bad value");
        assert_eq!(err.line, 2);
        assert!(parse_text(format!("{METRICS_MAGIC}\ncounter a.b 1\n").as_bytes()).is_err());
        assert!(parse_text(format!("{METRICS_MAGIC}\nbogus x 1\nend\n").as_bytes()).is_err());
    }

    #[test]
    fn json_renders_all_families() {
        let r = MetricsRegistry::new();
        r.counter("serve.requests_served").add(9);
        r.histogram("serve.request_ns").record_ns(77);
        let snap = ObsSnapshot {
            metrics: r.snapshot(),
            spans_recorded: 5,
            spans_overwritten: 0,
            slow_captured: 1,
            slow_retained: 1,
        };
        let json = render_json(&snap);
        assert!(json.contains("\"morpheus-obs/v1\""));
        assert!(json.contains("\"serve.requests_served\": 9"));
        assert!(json.contains("\"serve.request_ns\""));
        assert!(json.contains("\"slow_captured\": 1"));
    }

    #[test]
    fn flight_json_lists_span_trees() {
        let json = render_flight_json(&[SlowRequest {
            trace: TraceId(4),
            total_ns: 9_000_000,
            threshold_ns: 5_000_000,
            spans: vec![
                SpanRecord { trace: TraceId(4), stage: Stage::Admit, start_ns: 0, dur_ns: 0, detail: 2 },
                SpanRecord {
                    trace: TraceId(4),
                    stage: Stage::Resolve,
                    start_ns: 0,
                    dur_ns: 9_000_000,
                    detail: 1,
                },
            ],
        }]);
        assert!(json.contains("\"trace\": 4"));
        assert!(json.contains("\"stage\": \"admit\""));
        assert!(json.contains("\"stage\": \"resolve\""));
    }
}
