//! End-to-end observability: request tracing, unified metrics, and a
//! slow-request flight recorder.
//!
//! One [`Obs`] hub lives on each `OracleService` and is shared (via
//! `Arc`) with every `Ingress` pump started on it. It owns:
//!
//! - the [`MetricsRegistry`] all layers register their counters, gauges
//!   and stage-latency [`Histogram`]s into (names: `layer.noun_verb`);
//! - the [`SpanRing`] request tracer — every request is minted a
//!   [`TraceId`] at the service/ingress boundary and leaves a span tree
//!   `admit → queue_wait → coalesce_decision → plan → exec → scatter →
//!   resolve` behind;
//! - the [`FlightRecorder`], which retains the full span tree of any
//!   request that breaches its SLO or the configured latency threshold.
//!
//! Overhead discipline: with [`TraceLevel::Off`] the hot path takes the
//! same no-clock-read route it took before this subsystem existed (the
//! `Instant::now` calls are gated exactly like the adapt collector's).
//! [`TraceLevel::Coarse`] — the default — records request-level spans and
//! histograms only; per-shard spans need [`TraceLevel::Fine`].

mod hist;
mod registry;
mod span;

pub mod expose;

pub use hist::{percentile_exact, HistSummary, Histogram, HIST_BUCKETS};
pub use registry::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
pub use span::{FlightRecorder, SlowRequest, SpanRecord, SpanRing, Stage, TraceId};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How much tracing detail to record. Metrics (counters/gauges/
/// histograms) are always live — the level governs spans only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// No spans, no trace ids, no clock reads for tracing.
    Off,
    /// Request-level spans (admit/queue_wait/coalesce/plan/exec/scatter/
    /// resolve). The default: cheap enough to leave on in production.
    #[default]
    Coarse,
    /// Coarse plus per-shard `Exec` spans on partitioned handles.
    Fine,
}

/// Observability configuration, passed to the oracle builder.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Span verbosity (default [`TraceLevel::Coarse`]).
    pub trace: TraceLevel,
    /// Span ring capacity (rounded up to a power of two; default 4096).
    pub span_capacity: usize,
    /// Flight-recorder capacity in retained requests (default 32).
    pub flight_capacity: usize,
    /// Latency threshold that triggers flight capture for requests with
    /// no explicit deadline. Requests with an SLO deadline are judged
    /// against that deadline instead. `None` (default) captures only
    /// SLO-breaching requests.
    pub slow_threshold: Option<Duration>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            trace: TraceLevel::default(),
            span_capacity: 4096,
            flight_capacity: 32,
            slow_threshold: None,
        }
    }
}

/// The per-service observability hub. See the module docs.
#[derive(Debug)]
pub struct Obs {
    level: TraceLevel,
    registry: MetricsRegistry,
    ring: SpanRing,
    flight: FlightRecorder,
    epoch: Instant,
    next_trace: AtomicU64,
    slow_threshold_ns: Option<u64>,
}

impl Obs {
    /// Builds a hub from its configuration.
    pub fn new(cfg: ObsConfig) -> Obs {
        Obs {
            level: cfg.trace,
            registry: MetricsRegistry::new(),
            ring: SpanRing::new(cfg.span_capacity),
            flight: FlightRecorder::new(cfg.flight_capacity),
            epoch: Instant::now(),
            next_trace: AtomicU64::new(1),
            slow_threshold_ns: cfg.slow_threshold.map(|d| d.as_nanos().min(u64::MAX as u128) as u64),
        }
    }

    /// The configured trace level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Whether any spans are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level != TraceLevel::Off
    }

    /// Whether per-shard spans are recorded.
    #[inline]
    pub fn fine(&self) -> bool {
        self.level == TraceLevel::Fine
    }

    /// Mints a fresh trace id ([`TraceId::NONE`] when tracing is off, so
    /// callers can thread the id unconditionally).
    #[inline]
    pub fn mint_trace(&self) -> TraceId {
        if self.enabled() {
            TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed))
        } else {
            TraceId::NONE
        }
    }

    /// Nanoseconds since this hub's monotonic epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Converts an `Instant` captured elsewhere to epoch nanoseconds.
    #[inline]
    pub fn instant_ns(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos().min(u64::MAX as u128) as u64
    }

    /// Records one span if tracing is on and the trace is real.
    #[inline]
    pub fn span(&self, trace: TraceId, stage: Stage, start_ns: u64, dur_ns: u64, detail: u64) {
        if self.enabled() && trace.is_some() {
            self.ring.record(SpanRecord { trace, stage, start_ns, dur_ns, detail });
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The slow-request flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The capture threshold for deadline-less requests, ns.
    pub fn slow_threshold_ns(&self) -> Option<u64> {
        self.slow_threshold_ns
    }

    /// Copies out the currently readable spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.ring.snapshot()
    }

    /// The spans of one trace, in recording order (empty if the trace
    /// was overwritten or never recorded).
    pub fn trace_spans(&self, trace: TraceId) -> Vec<SpanRecord> {
        self.ring.snapshot().into_iter().filter(|s| s.trace == trace).collect()
    }

    /// Spans lost to ring wrap so far.
    pub fn spans_overwritten(&self) -> u64 {
        self.ring.overwritten()
    }

    /// A point-in-time view of the whole hub.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            metrics: self.registry.snapshot(),
            spans_recorded: self.ring.recorded(),
            spans_overwritten: self.ring.overwritten(),
            slow_captured: self.flight.captured_total(),
            slow_retained: self.flight.snapshot().len() as u64,
        }
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new(ObsConfig::default())
    }
}

/// Owned snapshot of the hub's state: the metric values plus tracer
/// bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct ObsSnapshot {
    /// Every registered metric (see [`MetricsRegistry::snapshot`]).
    pub metrics: MetricsSnapshot,
    /// Total spans ever recorded.
    pub spans_recorded: u64,
    /// Spans lost to ring wrap.
    pub spans_overwritten: u64,
    /// Slow requests ever captured.
    pub slow_captured: u64,
    /// Slow requests currently retained.
    pub slow_retained: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_level_mints_none_and_drops_spans() {
        let obs = Obs::new(ObsConfig { trace: TraceLevel::Off, ..ObsConfig::default() });
        assert!(!obs.enabled());
        assert_eq!(obs.mint_trace(), TraceId::NONE);
        obs.span(TraceId(7), Stage::Exec, 0, 10, 0);
        assert!(obs.spans().is_empty());
    }

    #[test]
    fn coarse_level_traces_but_not_fine() {
        let obs = Obs::default();
        assert!(obs.enabled());
        assert!(!obs.fine());
        let t = obs.mint_trace();
        assert!(t.is_some());
        obs.span(t, Stage::Exec, obs.now_ns(), 42, 0);
        let spans = obs.trace_spans(t);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].dur_ns, 42);
    }

    #[test]
    fn trace_ids_are_unique_across_threads() {
        let obs = Obs::default();
        let mut ids: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let obs = &obs;
                    s.spawn(move || (0..500).map(|_| obs.mint_trace().0).collect::<Vec<_>>())
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 2000);
    }
}
