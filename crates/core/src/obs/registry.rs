//! Unified metrics registry: named counters, gauges and histograms.
//!
//! Every layer of the stack (serve, ingress, pool, shards) registers its
//! metrics here instead of reinventing private atomics. Names follow the
//! `layer.noun_verb` convention — e.g. `serve.requests_served`,
//! `ingress.queue_rejected`, `pool.jobs_queued` — and the full inventory
//! is documented in the README "Observability" section.
//!
//! Handles ([`Counter`], [`Gauge`], `Arc<Histogram>`) are cheap clones of
//! shared atomics: the hot path holds a handle and never touches the
//! registry's name map. `get_or_*` on an existing name returns a handle
//! to the *same* cells, so two components registering the same name share
//! one metric (e.g. two `Ingress` pumps on one service — documented on
//! `Ingress::start`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use super::hist::{HistSummary, Histogram};

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (queue depths, pool backlogs).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Families {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    hists: BTreeMap<String, Arc<Histogram>>,
}

/// The name → metric map. Lookups take a write lock; hot paths are
/// expected to resolve their handles once at construction.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: RwLock<Families>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut f = self.families.write();
        f.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut f = self.families.write();
        f.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram named `name`, creating it empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut f = self.families.write();
        f.hists.entry(name.to_string()).or_default().clone()
    }

    /// A point-in-time copy of every registered metric, sorted by name
    /// within each family (BTreeMap order), so renders are stable.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let f = self.families.read();
        MetricsSnapshot {
            counters: f.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: f.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            hists: f.hists.iter().map(|(k, v)| (k.clone(), v.summary())).collect(),
        }
    }
}

/// An owned, sorted copy of the registry at one instant. Two snapshots
/// of the same registry can be compared (via [`HistSummary::delta_since`]
/// and counter subtraction) to isolate a measurement window — this is how
/// `bench_serve` computes per-mode stage breakdowns on a shared service.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, summary)` pairs, sorted by name.
    pub hists: Vec<(String, HistSummary)>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.binary_search_by(|(k, _)| k.as_str().cmp(name)).map(|i| self.counters[i].1).unwrap_or(0)
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.binary_search_by(|(k, _)| k.as_str().cmp(name)).map(|i| self.gauges[i].1).unwrap_or(0)
    }

    /// Histogram summary by name (empty when absent).
    pub fn hist(&self, name: &str) -> HistSummary {
        self.hists
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .map(|i| self.hists[i].1)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_cells() {
        let r = MetricsRegistry::new();
        let a = r.counter("ingress.requests_submitted");
        let b = r.counter("ingress.requests_submitted");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);

        let h1 = r.histogram("ingress.exec_ns");
        let h2 = r.histogram("ingress.exec_ns");
        h1.record_ns(10);
        h2.record_ns(20);
        assert_eq!(h1.count(), 2);
    }

    #[test]
    fn snapshot_is_sorted_and_lookup_works() {
        let r = MetricsRegistry::new();
        r.counter("serve.requests_served").add(7);
        r.counter("ingress.queue_rejected").add(3);
        r.gauge("pool.jobs_queued").set(5);
        r.histogram("serve.request_ns").record_ns(1000);

        let s = r.snapshot();
        let names: Vec<_> = s.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["ingress.queue_rejected", "serve.requests_served"]);
        assert_eq!(s.counter("serve.requests_served"), 7);
        assert_eq!(s.counter("missing.metric"), 0);
        assert_eq!(s.gauge("pool.jobs_queued"), 5);
        assert_eq!(s.hist("serve.request_ns").count, 1);
        assert_eq!(s.hist("missing.hist").count, 0);
    }
}
