//! The online sample collector: joins measured-kernel telemetry with
//! Table-I feature vectors to produce labeled training data.
//!
//! The paper's pipeline labels a matrix with the format that *measured*
//! fastest (§V); offline that label comes from profiling runs, online it
//! comes from the serving layer's own executions. [`SampleCollector`]
//! accumulates three things:
//!
//! * **telemetry** — the lock-free [`Telemetry`] ring the service records
//!   measured executions into;
//! * **features** — the [`FeatureVector`] of every structure the service
//!   analyzed (noted on decision-cache misses, off the execution hot
//!   path);
//! * **aliases** — a map from realized (post-conversion) structure hashes
//!   back to the canonical hash features were noted under, since the same
//!   logical matrix hashes differently per storage format.
//!
//! [`SampleCollector::build_dataset`] turns the three into a
//! [`morpheus_ml::Dataset`]: per (canonical structure, scalar, workers)
//! group it takes the formats with at least
//! [`CollectorConfig::min_observations`] measured executions, labels the
//! group with the format whose *fastest observed execution* wins (minima
//! are robust where means follow whichever measurement context ran more
//! often) and emits one feature row. A group whose
//! serving traffic only ever exercised the tuned format has nothing to
//! compare — [`SampleCollector::sweep`] fills those gaps with a
//! `RunFirstTuner`-style trial sweep: real, timed executions of every
//! viable format, charged to [`TuningCost::measured`] so the adaptive
//! pipeline's cost accounting stays honest.

use super::telemetry::{MeasuredKernel, SampleKey, Telemetry, TelemetryStats};
use crate::features::FeatureVector;
use crate::tuner::TuningCost;
use crate::{Result, NUM_FEATURES};
use morpheus::format::{FormatId, FORMAT_COUNT};
use morpheus::{Analysis, ConvertOptions, DynamicMatrix, KernelVariant, Scalar};
use morpheus_machine::{analyze_from, Op, VirtualEngine};
use morpheus_ml::Dataset;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Policy of a [`SampleCollector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectorConfig {
    /// Slots in the telemetry ring (see [`Telemetry::new`]).
    pub telemetry_slots: usize,
    /// Fewest measured executions a format needs before it participates in
    /// labeling — single noisy observations must not crown a winner.
    pub min_observations: u64,
    /// Fewest distinct formats with enough observations for a group to be
    /// labeled (below this there is nothing to compare; run a sweep).
    pub min_formats: usize,
    /// Relative tie window for labeling: formats whose fastest observed
    /// execution is within `(1 + tie_tolerance)` of the overall fastest
    /// are considered measurement ties, and the tie breaks to the lowest
    /// format ID. Without this,
    /// structurally degenerate pairs (e.g. DIA vs HDC on a pure banded
    /// matrix, where HDC's CSR remainder is empty and the kernels are the
    /// same work) flip labels on noise and teach the model nothing.
    pub tie_tolerance: f64,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig { telemetry_slots: 1024, min_observations: 2, min_formats: 2, tie_tolerance: 0.05 }
    }
}

/// Counters describing what a collector has gathered so far.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CollectorStats {
    /// Structures with a noted feature vector.
    pub structures_profiled: usize,
    /// Realized-hash aliases registered.
    pub aliases: usize,
    /// Total wall seconds of trial-sweep executions charged so far.
    pub measured_seconds: f64,
    /// The telemetry ring's counters.
    pub telemetry: TelemetryStats,
}

/// Outcome of one [`SampleCollector::sweep`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepReport {
    /// Formats that were converted and timed.
    pub formats_timed: usize,
    /// Viable formats skipped because conversion failed.
    pub formats_skipped: usize,
    /// Timed executions per format.
    pub reps: usize,
    /// The sweep's cost: only [`TuningCost::measured`] is non-zero — these
    /// are real kernel seconds, not virtual-clock estimates.
    pub cost: TuningCost,
}

/// What [`SampleCollector::build_dataset`] produced.
#[derive(Debug, Clone)]
pub struct Collected {
    /// Labeled feature rows, one per sufficiently observed group
    /// (`n_features = 10`, `n_classes = 6`, targets are format IDs).
    pub dataset: Dataset,
    /// Groups that yielded a labeled row.
    pub labeled: usize,
    /// Groups skipped for having fewer than
    /// [`CollectorConfig::min_formats`] sufficiently observed formats.
    pub skipped_sparse: usize,
    /// Groups skipped because no feature vector was ever noted for their
    /// structure (e.g. decisions imported via warm start, never analyzed
    /// here).
    pub skipped_unprofiled: usize,
}

/// The adaptive subsystem's sample store. `Send + Sync`; share one
/// `Arc<SampleCollector>` between the [`OracleService`](crate::OracleService)
/// that feeds it and the [`AdaptiveEngine`](crate::adapt::AdaptiveEngine)
/// that drains it.
#[derive(Debug)]
pub struct SampleCollector {
    config: CollectorConfig,
    telemetry: Telemetry,
    features: Mutex<HashMap<u64, [f64; NUM_FEATURES]>>,
    aliases: Mutex<HashMap<u64, u64>>,
    measured_nanos: AtomicU64,
}

impl SampleCollector {
    /// Collector with the given policy.
    pub fn new(config: CollectorConfig) -> Self {
        SampleCollector {
            telemetry: Telemetry::new(config.telemetry_slots),
            config,
            features: Mutex::new(HashMap::new()),
            aliases: Mutex::new(HashMap::new()),
            measured_nanos: AtomicU64::new(0),
        }
    }

    /// The policy this collector was built with.
    pub fn config(&self) -> &CollectorConfig {
        &self.config
    }

    /// The underlying telemetry ring.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Records one measured execution — the hot-path entry point, a thin
    /// lock-free delegate to [`Telemetry::record`].
    #[inline]
    pub fn record(&self, key: SampleKey, elapsed: Duration) {
        self.telemetry.record(key, elapsed);
    }

    /// Notes the feature vector of a structure (idempotent; features are
    /// format-invariant, so first-writer-wins is correct). Called by the
    /// service on decision-cache misses and by sweeps — never on the
    /// execution hot path.
    pub fn note_features(&self, structure: u64, fv: &FeatureVector) {
        let mut features = [0.0; NUM_FEATURES];
        features.copy_from_slice(fv.as_slice());
        self.features.lock().entry(structure).or_insert(features);
    }

    /// Registers that `realized` (a post-conversion structure hash) is the
    /// same logical matrix as `canonical` (the hash its features were
    /// noted under).
    pub fn alias(&self, realized: u64, canonical: u64) {
        if realized != canonical {
            self.aliases.lock().entry(realized).or_insert(canonical);
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> CollectorStats {
        CollectorStats {
            structures_profiled: self.features.lock().len(),
            aliases: self.aliases.lock().len(),
            measured_seconds: self.measured_seconds(),
            telemetry: self.telemetry.stats(),
        }
    }

    /// Total wall seconds of trial-sweep executions charged so far.
    pub fn measured_seconds(&self) -> f64 {
        self.measured_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Runs a `RunFirstTuner`-style trial sweep of `m` for `op`: converts
    /// a copy to every viable format, executes the real serial kernel
    /// `reps` times each with wall-clock timing, and records the
    /// measurements (under `workers: 1`) so the next
    /// [`build_dataset`](Self::build_dataset) can label this structure
    /// with its *measured*-fastest format. The spent kernel seconds are
    /// charged to the returned [`TuningCost::measured`].
    ///
    /// Trials run the **serial** kernels and are recorded under
    /// `workers: 1`: dataset groups are per worker count, so on a
    /// threaded engine the sweep labels the serial group rather than
    /// filling the threaded serving group — labels then reflect serial
    /// format preferences. That matches single-worker deployments
    /// exactly; multi-worker services should treat adapted models as
    /// serial-calibrated until a threaded trial path exists.
    ///
    /// This is off-hot-path work: call it from the adaptation loop (or a
    /// background thread), never from a serving request.
    pub fn sweep<V: Scalar>(
        &self,
        engine: &VirtualEngine,
        opts: &ConvertOptions,
        m: &DynamicMatrix<V>,
        op: Op,
        reps: usize,
    ) -> Result<SweepReport> {
        let reps = reps.max(1);
        let canonical = m.structure_hash();
        let analysis = Analysis::of_auto_with_hash(m, opts.true_diag_alpha, canonical);
        let machine_view = analyze_from(m, &analysis);
        self.note_features(canonical, &FeatureVector::from_analysis(&analysis));

        let k = op.rhs_count();
        let x: Vec<V> = (0..m.ncols() * k).map(|i| V::from_f64(1.0 + (i % 13) as f64 * 0.25)).collect();
        let mut y = vec![V::ZERO; m.nrows() * k];

        // Materialize every viable format first, then *interleave* the
        // timed repetitions across formats: timing each format's reps
        // back-to-back hands later formats warmer caches (x, y and the
        // freshly converted data) and biases micro-matrix labels.
        let mut formats_skipped = 0usize;
        let mut trials: Vec<(SampleKey, DynamicMatrix<V>)> = Vec::new();
        for fmt in morpheus::FormatEntry::all().iter().map(|e| e.id) {
            if !engine.is_viable(fmt, &machine_view) {
                continue;
            }
            let trial = if fmt == m.format_id() {
                m.clone()
            } else {
                match m.to_format_with(fmt, opts, Some(&analysis)) {
                    Ok((converted, _)) => converted,
                    Err(_) => {
                        formats_skipped += 1;
                        continue;
                    }
                }
            };
            self.alias(trial.structure_hash(), canonical);
            let key = SampleKey {
                structure: canonical,
                format: fmt,
                op,
                scalar_bytes: std::mem::size_of::<V>(),
                workers: 1,
                // Trials run the serial scalar reference kernels, so their
                // measurements belong to the Scalar variant population.
                variant: KernelVariant::Scalar,
                param_code: opts.params.code(),
            };
            trials.push((key, trial));
        }
        let run = |trial: &DynamicMatrix<V>, y: &mut Vec<V>| -> crate::Result<()> {
            match op {
                Op::Spmv => morpheus::spmv::spmv_serial(trial, &x, y)?,
                Op::Spmm { .. } => morpheus::spmm::spmm_serial(trial, &x, y, k)?,
            }
            Ok(())
        };
        // One untimed warmup pass per format.
        for (_, trial) in &trials {
            run(trial, &mut y)?;
        }
        let mut measured = Duration::ZERO;
        for _ in 0..reps {
            for (key, trial) in &trials {
                let t0 = Instant::now();
                run(trial, &mut y)?;
                let dt = t0.elapsed();
                self.telemetry.record(*key, dt);
                measured += dt;
            }
        }
        let formats_timed = trials.len();
        let measured_s = measured.as_secs_f64();
        self.measured_nanos
            .fetch_add(u64::try_from(measured.as_nanos()).unwrap_or(u64::MAX), Ordering::Relaxed);
        Ok(SweepReport {
            formats_timed,
            formats_skipped,
            reps,
            cost: TuningCost { measured: measured_s, ..Default::default() },
        })
    }

    /// Joins telemetry with the noted features into a labeled
    /// [`Dataset`] for `op` (measurements of other operations are
    /// ignored — format preferences are operation-specific).
    ///
    /// Rows are emitted in deterministic (canonical hash, scalar, workers)
    /// order, so a seeded retrain over the same observations reproduces
    /// the same model bit for bit.
    pub fn build_dataset(&self, op: Op) -> Result<Collected> {
        let snapshot = self.telemetry.snapshot();
        let aliases = self.aliases.lock();
        let features = self.features.lock();

        // (canonical, scalar_bytes, workers) -> format -> (count, best).
        type Group = BTreeMap<FormatId, (u64, f64)>;
        let mut groups: BTreeMap<(u64, usize, usize), Group> = BTreeMap::new();
        for MeasuredKernel { key, count, min_seconds, .. } in snapshot {
            if key.op != op {
                continue;
            }
            let canonical = *aliases.get(&key.structure).unwrap_or(&key.structure);
            let entry = groups
                .entry((canonical, key.scalar_bytes, key.workers))
                .or_default()
                .entry(key.format)
                .or_insert((0, f64::INFINITY));
            entry.0 += count;
            entry.1 = entry.1.min(min_seconds);
        }

        let names = crate::FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
        let mut dataset = Dataset::empty(NUM_FEATURES, FORMAT_COUNT, names)?;
        let (mut labeled, mut skipped_sparse, mut skipped_unprofiled) = (0usize, 0usize, 0usize);
        for ((canonical, _scalar, _workers), by_format) in groups {
            // Compare formats by their fastest observed execution: minima
            // are robust to mixed measurement contexts (serving traffic
            // with cold caches vs tight sweep loops), where means follow
            // whichever context produced more samples.
            let qualified: Vec<(FormatId, f64)> = by_format
                .iter()
                .filter(|(_, (count, _))| *count >= self.config.min_observations)
                .map(|(fmt, (_, best))| (*fmt, *best))
                .collect();
            if qualified.len() < self.config.min_formats {
                skipped_sparse += 1;
                continue;
            }
            let Some(row) = features.get(&canonical) else {
                skipped_unprofiled += 1;
                continue;
            };
            // Fastest wins; anything within the tie window counts as tied
            // and the tie breaks toward the lower format ID (qualified is
            // already in FormatId order, so `find` takes the lowest-ID
            // member of the window).
            let fastest = qualified
                .iter()
                .map(|(_, best)| *best)
                .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
                .expect("min_formats >= 1 checked above");
            let window = fastest * (1.0 + self.config.tie_tolerance.max(0.0));
            let label = qualified
                .iter()
                .find(|(_, best)| *best <= window)
                .expect("fastest itself is in the window")
                .0;
            dataset.push(row, label.index())?;
            labeled += 1;
        }
        Ok(Collected { dataset, labeled, skipped_sparse, skipped_unprofiled })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus::CooMatrix;
    use morpheus_machine::{systems, Backend};

    fn fv(seed: f64) -> FeatureVector {
        FeatureVector([seed, 1.0, 2.0, 3.0, 0.5, 4.0, 1.0, 0.1, 2.0, 1.0, 0.3, 1.2])
    }

    fn key(structure: u64, format: FormatId) -> SampleKey {
        SampleKey {
            structure,
            format,
            op: Op::Spmv,
            scalar_bytes: 8,
            workers: 1,
            variant: KernelVariant::Scalar,
            param_code: 0,
        }
    }

    fn tridiag(n: usize) -> DynamicMatrix<f64> {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..n {
            for d in [-1isize, 0, 1] {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n {
                    rows.push(i);
                    cols.push(j as usize);
                }
            }
        }
        let vals = vec![1.0; rows.len()];
        DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    #[test]
    fn labels_fastest_format_above_threshold() {
        let c = SampleCollector::new(CollectorConfig::default());
        c.note_features(7, &fv(7.0));
        // DIA measured faster than CSR; both with >= 2 observations.
        for _ in 0..3 {
            c.record(key(7, FormatId::Csr), Duration::from_micros(50));
            c.record(key(7, FormatId::Dia), Duration::from_micros(20));
        }
        // A single ELL observation must not participate (min_observations).
        c.record(key(7, FormatId::Ell), Duration::from_nanos(1));

        let out = c.build_dataset(Op::Spmv).unwrap();
        assert_eq!(out.labeled, 1);
        assert_eq!(out.dataset.len(), 1);
        assert_eq!(out.dataset.target(0), FormatId::Dia.index());
        assert_eq!(out.dataset.row(0)[0], 7.0);
    }

    #[test]
    fn near_ties_break_to_the_lower_format_id() {
        let c = SampleCollector::new(CollectorConfig { tie_tolerance: 0.05, ..Default::default() });
        c.note_features(3, &fv(3.0));
        // HDC is nominally 2% faster than DIA — within the tie window, so
        // the label must deterministically be DIA (lower ID), not flip on
        // which twin happened to measure faster this time.
        for _ in 0..4 {
            c.record(key(3, FormatId::Dia), Duration::from_nanos(1000));
            c.record(key(3, FormatId::Hdc), Duration::from_nanos(980));
            c.record(key(3, FormatId::Csr), Duration::from_nanos(5000));
        }
        let out = c.build_dataset(Op::Spmv).unwrap();
        assert_eq!(out.dataset.target(0), FormatId::Dia.index());

        // Outside the window the genuinely faster format wins.
        let strict = SampleCollector::new(CollectorConfig { tie_tolerance: 0.0, ..Default::default() });
        strict.note_features(3, &fv(3.0));
        for _ in 0..4 {
            strict.record(key(3, FormatId::Dia), Duration::from_nanos(1000));
            strict.record(key(3, FormatId::Hdc), Duration::from_nanos(980));
        }
        let out = strict.build_dataset(Op::Spmv).unwrap();
        assert_eq!(out.dataset.target(0), FormatId::Hdc.index());
    }

    #[test]
    fn single_format_groups_are_skipped_as_sparse() {
        let c = SampleCollector::new(CollectorConfig::default());
        c.note_features(1, &fv(1.0));
        for _ in 0..5 {
            c.record(key(1, FormatId::Csr), Duration::from_micros(10));
        }
        let out = c.build_dataset(Op::Spmv).unwrap();
        assert_eq!(out.labeled, 0);
        assert_eq!(out.skipped_sparse, 1, "one observed format has nothing to compare against");
    }

    #[test]
    fn unprofiled_structures_are_skipped() {
        let c = SampleCollector::new(CollectorConfig::default());
        for _ in 0..3 {
            c.record(key(9, FormatId::Csr), Duration::from_micros(10));
            c.record(key(9, FormatId::Dia), Duration::from_micros(5));
        }
        let out = c.build_dataset(Op::Spmv).unwrap();
        assert_eq!((out.labeled, out.skipped_unprofiled), (0, 1));
    }

    #[test]
    fn aliases_fold_realized_hashes_into_one_group() {
        let c = SampleCollector::new(CollectorConfig::default());
        c.note_features(100, &fv(100.0));
        c.alias(200, 100); // e.g. the DIA realization of structure 100
        for _ in 0..2 {
            c.record(key(100, FormatId::Csr), Duration::from_micros(40));
            c.record(key(200, FormatId::Dia), Duration::from_micros(10));
        }
        let out = c.build_dataset(Op::Spmv).unwrap();
        assert_eq!(out.labeled, 1);
        assert_eq!(out.dataset.target(0), FormatId::Dia.index());
    }

    #[test]
    fn other_ops_do_not_pollute_the_dataset() {
        let c = SampleCollector::new(CollectorConfig::default());
        c.note_features(4, &fv(4.0));
        for _ in 0..3 {
            c.record(key(4, FormatId::Csr), Duration::from_micros(30));
            c.record(key(4, FormatId::Dia), Duration::from_micros(60));
            let mut spmm = key(4, FormatId::Ell);
            spmm.op = Op::Spmm { k: 8 };
            c.record(spmm, Duration::from_micros(1));
        }
        let out = c.build_dataset(Op::Spmv).unwrap();
        assert_eq!(out.dataset.len(), 1);
        assert_eq!(out.dataset.target(0), FormatId::Csr.index(), "SpMM samples must be ignored");
        // And the SpMM view sees only its own (sparse) group.
        let spmm_out = c.build_dataset(Op::Spmm { k: 8 }).unwrap();
        assert_eq!((spmm_out.labeled, spmm_out.skipped_sparse), (0, 1));
    }

    #[test]
    fn sweep_times_every_viable_format_and_charges_measured_cost() {
        let c = SampleCollector::new(CollectorConfig::default());
        let engine = VirtualEngine::new(systems::cirrus(), Backend::Serial);
        let m = tridiag(400);
        let report = c.sweep(&engine, &ConvertOptions::default(), &m, Op::Spmv, 3).unwrap();
        assert!(report.formats_timed >= 2, "tridiagonal converts to several formats: {report:?}");
        assert_eq!(report.reps, 3);
        assert!(report.cost.measured > 0.0);
        assert_eq!(report.cost.total(), report.cost.measured);
        assert!((c.measured_seconds() - report.cost.measured).abs() < 1e-12);

        // The sweep alone provides enough coverage to label the structure.
        let out = c.build_dataset(Op::Spmv).unwrap();
        assert_eq!(out.labeled, 1);
        assert_eq!(out.skipped_unprofiled, 0, "sweep must note features");
        let stats = c.stats();
        assert_eq!(stats.structures_profiled, 1);
        assert!(stats.aliases >= report.formats_timed - 1);
    }
}
