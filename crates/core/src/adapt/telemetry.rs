//! Lock-free measured-kernel telemetry.
//!
//! The serving layer executes millions of real kernel invocations; this
//! module is where their measured wall time goes instead of being thrown
//! away. [`Telemetry`] is a fixed-size ring of atomic aggregation slots:
//! recording a sample hashes its [`SampleKey`], probes the ring circularly
//! for the key's slot (claiming a free one with a single CAS on first
//! sight) and adds the observation with two `fetch_add`s. The hot path
//! takes **no locks, performs no allocation and never blocks** — a handful
//! of relaxed atomics per recorded execution — so it can sit directly on
//! the zero-lock registered-matrix path of
//! [`OracleService`](crate::OracleService).
//!
//! When the ring is full and a new key finds no slot within its probe
//! window, the sample is *dropped* (and counted in
//! [`TelemetryStats::dropped`]) rather than ever stalling a request:
//! telemetry is advisory, serving latency is not.
//!
//! Aggregates are monotonic — slots accumulate `(count, total seconds)`
//! per key for the lifetime of the ring. [`Telemetry::snapshot`] reads a
//! consistent-enough view for the
//! [`SampleCollector`](crate::adapt::SampleCollector) to label training
//! samples from; racing writers can at worst make a snapshot miss an
//! in-flight observation that the next snapshot will see.
//!
//! Relation to [`obs`](crate::obs): the tracer's `exec` spans and the
//! telemetry recorded under a [`SampleKey`] come from the *same* measured
//! execution — one `Instant` pair, observed once, fanned out to both
//! sinks — so span durations and telemetry seconds never disagree about
//! a kernel. The two share timestamps, **not** storage: telemetry
//! aggregates per-population `(count, seconds)` for training labels,
//! while the span ring keeps bounded per-request records for tracing.

use morpheus::format::FormatId;
use morpheus::KernelVariant;
use morpheus_machine::Op;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Identity of one measured-kernel population: *which* kernel the observed
/// seconds belong to. Everything that changes the kernel's performance
/// behaviour is part of the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SampleKey {
    /// [`morpheus::DynamicMatrix::structure_hash`] of the matrix *as
    /// executed* (i.e. in its realized format). The collector resolves
    /// this to a format-invariant canonical identity via its alias table.
    pub structure: u64,
    /// The storage format the kernel ran in.
    pub format: FormatId,
    /// The executed operation (including the SpMM right-hand-side count).
    pub op: Op,
    /// `size_of` of the matrix scalar.
    pub scalar_bytes: usize,
    /// Worker threads the execution used (1 for serial kernels and
    /// busy-pool fallbacks).
    pub workers: usize,
    /// The dominant [`KernelVariant`] of the plan that executed. Two runs
    /// of the same (matrix, format, op, workers) under different variants
    /// are different kernels — conflating them would teach retraining the
    /// average of the scalar and the specialised body.
    pub variant: KernelVariant,
    /// [`morpheus::FormatParams::code`] of the parameters the matrix was
    /// converted with (0 = defaults). Two parameterizations of the same
    /// format (a 2x2 vs an 8x8 BSR, different BELL ladders) are different
    /// kernels and must never alias in the ring.
    pub param_code: u8,
}

/// Version of the bit layout `pack_meta` writes. Bump whenever the field
/// widths or positions change so persisted consumers can reject mixed-layout
/// data. v1: 3-bit format, no parameter code. v2: 4-bit format (sized for a
/// growing registry), 7-bit [`morpheus::FormatParams::code`] in bits 56..63.
pub const PACK_LAYOUT_VERSION: u32 = 2;

// Packing layout v2 of the non-structure key fields (bit 63 is a tag so a
// packed key is never 0, the "free slot" sentinel):
// [0..4)  format index (sized for 16 registered formats),
// [4..28) op (0 = SpMV, k+1 = SpMM{k}, saturating),
// [28..36) scalar bytes (saturating), [36..52) workers (saturating),
// [52..56) kernel variant index, [56..63) format parameter code.
const PACK_TAG: u64 = 1 << 63;
const OP_MASK: u64 = (1 << 24) - 1;

fn pack_meta(key: &SampleKey) -> u64 {
    let op = match key.op {
        Op::Spmv => 0u64,
        Op::Spmm { k } => (k as u64 + 1).min(OP_MASK),
    };
    PACK_TAG
        | key.format.index() as u64
        | (op << 4)
        | ((key.scalar_bytes as u64).min(0xff) << 28)
        | ((key.workers as u64).min(0xffff) << 36)
        | ((key.variant.index() as u64) << 52)
        | (((key.param_code & 0x7f) as u64) << 56)
}

fn unpack_meta(structure: u64, packed: u64) -> SampleKey {
    let op = (packed >> 4) & OP_MASK;
    SampleKey {
        structure,
        format: FormatId::from_index((packed & 0xf) as usize).unwrap_or(FormatId::Csr),
        op: if op == 0 { Op::Spmv } else { Op::Spmm { k: (op - 1) as usize } },
        scalar_bytes: ((packed >> 28) & 0xff) as usize,
        workers: ((packed >> 36) & 0xffff) as usize,
        variant: KernelVariant::from_index(((packed >> 52) & 0xf) as usize).unwrap_or(KernelVariant::Scalar),
        param_code: ((packed >> 56) & 0x7f) as u8,
    }
}

/// Mixes both key words into the probe start index (splitmix64 finalizer —
/// structure hashes are already well distributed, but the packed metadata
/// is not).
fn slot_hash(structure: u64, packed: u64) -> u64 {
    let mut z = structure ^ packed.rotate_left(31);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Slot lifecycle: `meta == 0` free; after a claimer's CAS the slot is
/// *owned* and its `structure` word may not yet be published
/// (`ready == 0`); once `ready` is 1 both key words are stable forever.
struct Slot {
    meta: AtomicU64,
    structure: AtomicU64,
    ready: AtomicU64,
    count: AtomicU64,
    nanos: AtomicU64,
    min_nanos: AtomicU64,
}

/// One aggregated population from a [`Telemetry::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredKernel {
    /// Which kernel the numbers belong to.
    pub key: SampleKey,
    /// Executions observed.
    pub count: u64,
    /// Total measured wall seconds across those executions.
    pub seconds: f64,
    /// Fastest single observed execution, seconds. The labeling signal:
    /// minima are comparable across execution contexts (a tight trial
    /// loop and round-robin serving traffic share the same best case),
    /// where means are dominated by whichever context ran more often.
    pub min_seconds: f64,
}

impl MeasuredKernel {
    /// Mean measured seconds per execution.
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.seconds / self.count as f64
        }
    }
}

/// Occupancy and loss counters of a [`Telemetry`] ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryStats {
    /// Samples recorded (aggregated into some slot).
    pub recorded: u64,
    /// Samples dropped because the probe window found no slot.
    pub dropped: u64,
    /// Slots holding a key.
    pub slots_used: usize,
    /// Total slots in the ring.
    pub capacity: usize,
}

/// The atomic aggregation ring. See the [module docs](self) for the
/// concurrency model.
pub struct Telemetry {
    slots: Box<[Slot]>,
    mask: usize,
    probe_window: usize,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Telemetry {
    /// Ring with at least `capacity` slots (rounded up to a power of two,
    /// minimum 16). Sizing rule of thumb: **twice** the distinct
    /// (matrix, format, op, workers) populations you expect to observe —
    /// open addressing with a bounded probe window starts dropping new
    /// keys as occupancy approaches full. The default
    /// [`crate::adapt::CollectorConfig`] uses 1024.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(16).next_power_of_two();
        Telemetry {
            slots: (0..capacity)
                .map(|_| Slot {
                    meta: AtomicU64::new(0),
                    structure: AtomicU64::new(0),
                    ready: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                    nanos: AtomicU64::new(0),
                    min_nanos: AtomicU64::new(u64::MAX),
                })
                .collect(),
            mask: capacity - 1,
            probe_window: capacity.min(64),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records one measured execution. Lock-free: a hash, a short circular
    /// probe and two relaxed `fetch_add`s on the hot path. Drops the
    /// sample (counted) when the probe window is exhausted.
    pub fn record(&self, key: SampleKey, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let meta = pack_meta(&key);
        let start = slot_hash(key.structure, meta) as usize;
        for p in 0..self.probe_window {
            let slot = &self.slots[(start + p) & self.mask];
            let mut seen = slot.meta.load(Ordering::Acquire);
            if seen == 0 {
                match slot.meta.compare_exchange(0, meta, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => {
                        // We own the slot: publish the structure word, then
                        // aggregate.
                        slot.structure.store(key.structure, Ordering::Relaxed);
                        slot.ready.store(1, Ordering::Release);
                        slot.count.fetch_add(1, Ordering::Relaxed);
                        slot.nanos.fetch_add(nanos, Ordering::Relaxed);
                        slot.min_nanos.fetch_min(nanos, Ordering::Relaxed);
                        self.recorded.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(actual) => seen = actual,
                }
            }
            if seen == meta
                && slot.ready.load(Ordering::Acquire) == 1
                && slot.structure.load(Ordering::Relaxed) == key.structure
            {
                slot.count.fetch_add(1, Ordering::Relaxed);
                slot.nanos.fetch_add(nanos, Ordering::Relaxed);
                slot.min_nanos.fetch_min(nanos, Ordering::Relaxed);
                self.recorded.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // Occupied by a different key (or a same-key claim whose
            // structure word is not yet visible — then this sample lands in
            // a second slot for the key, which the snapshot re-aggregates).
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads every ready slot, re-aggregates duplicate keys and returns
    /// the populations sorted by key (deterministic order — retraining on
    /// a snapshot must be reproducible).
    pub fn snapshot(&self) -> Vec<MeasuredKernel> {
        let mut agg: std::collections::BTreeMap<SampleKey, (u64, u64, u64)> =
            std::collections::BTreeMap::new();
        for slot in self.slots.iter() {
            if slot.ready.load(Ordering::Acquire) != 1 {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let structure = slot.structure.load(Ordering::Relaxed);
            let count = slot.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let nanos = slot.nanos.load(Ordering::Relaxed);
            let min = slot.min_nanos.load(Ordering::Relaxed);
            let e = agg.entry(unpack_meta(structure, meta)).or_insert((0, 0, u64::MAX));
            e.0 += count;
            e.1 += nanos;
            e.2 = e.2.min(min);
        }
        agg.into_iter()
            .map(|(key, (count, nanos, min))| MeasuredKernel {
                key,
                count,
                seconds: nanos as f64 * 1e-9,
                min_seconds: min as f64 * 1e-9,
            })
            .collect()
    }

    /// Occupancy and loss counters (all atomic reads).
    pub fn stats(&self) -> TelemetryStats {
        TelemetryStats {
            recorded: self.recorded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            slots_used: self.slots.iter().filter(|s| s.ready.load(Ordering::Relaxed) == 1).count(),
            capacity: self.slots.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(structure: u64, format: FormatId) -> SampleKey {
        SampleKey {
            structure,
            format,
            op: Op::Spmv,
            scalar_bytes: 8,
            workers: 1,
            variant: KernelVariant::Scalar,
            param_code: 0,
        }
    }

    #[test]
    fn pack_roundtrips_every_field() {
        for (fmt, op, scalar, workers, variant, param_code) in [
            (FormatId::Csr, Op::Spmv, 8usize, 1usize, KernelVariant::Scalar, 0u8),
            (FormatId::Hdc, Op::Spmm { k: 32 }, 4, 12, KernelVariant::Unrolled, 5),
            (FormatId::Dia, Op::Spmm { k: 1 }, 8, 65535, KernelVariant::Blocked, 1),
            (FormatId::Csr, Op::Spmv, 8, 7, KernelVariant::Prefetch, 0),
            // Every field at its layout maximum: the two highest registered
            // format ids, the full 7-bit parameter code, saturated widths.
            (FormatId::Bsr, Op::Spmm { k: 1 << 23 }, 255, 65535, KernelVariant::Blocked, 0x7f),
            (
                FormatId::Bell,
                Op::Spmm { k: (OP_MASK as usize) - 1 },
                255,
                65535,
                KernelVariant::Prefetch,
                0x7f,
            ),
        ] {
            let k = SampleKey {
                structure: 0xdead_beef,
                format: fmt,
                op,
                scalar_bytes: scalar,
                workers,
                variant,
                param_code,
            };
            let packed = pack_meta(&k);
            assert_ne!(packed, 0);
            assert_eq!(unpack_meta(k.structure, packed), k);
        }
    }

    #[test]
    fn layout_v2_fits_every_registered_format() {
        // The 4-bit format field must round-trip every current id with
        // headroom — aliasing two formats into one slot would blend their
        // populations.
        assert_eq!(PACK_LAYOUT_VERSION, 2);
        for fmt in morpheus::format::ALL_FORMATS {
            assert!(fmt.index() < 16, "{fmt} overflows the 4-bit format field");
            let k = SampleKey { format: fmt, ..key(7, fmt) };
            assert_eq!(unpack_meta(7, pack_meta(&k)).format, fmt);
        }
    }

    #[test]
    fn parameterizations_are_distinct_telemetry_populations() {
        // A 2x2-blocked and an 8x8-blocked BSR of the same matrix are
        // different kernels: their samples must never alias into one slot.
        let t = Telemetry::new(64);
        let small = SampleKey { param_code: 1, ..key(42, FormatId::Bsr) };
        let large = SampleKey { param_code: 3, ..key(42, FormatId::Bsr) };
        assert_ne!(pack_meta(&small), pack_meta(&large));
        t.record(small, Duration::from_micros(30));
        t.record(large, Duration::from_micros(10));
        t.record(large, Duration::from_micros(12));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        let s = snap.iter().find(|m| m.key.param_code == 1).unwrap();
        let l = snap.iter().find(|m| m.key.param_code == 3).unwrap();
        assert_eq!((s.count, l.count), (1, 2));
        assert!(l.min_seconds < s.min_seconds);
    }

    #[test]
    fn variants_are_distinct_telemetry_populations() {
        // The same kernel under two variants must aggregate separately —
        // retraining learns which variant wins per structure class from
        // exactly this split.
        let t = Telemetry::new(64);
        let unrolled = SampleKey { variant: KernelVariant::Unrolled, ..key(42, FormatId::Csr) };
        t.record(key(42, FormatId::Csr), Duration::from_micros(30));
        t.record(unrolled, Duration::from_micros(10));
        t.record(unrolled, Duration::from_micros(12));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        let s = snap.iter().find(|m| m.key.variant == KernelVariant::Scalar).unwrap();
        let u = snap.iter().find(|m| m.key.variant == KernelVariant::Unrolled).unwrap();
        assert_eq!((s.count, u.count), (1, 2));
        assert!(u.min_seconds < s.min_seconds);
    }

    #[test]
    fn aggregates_by_key() {
        let t = Telemetry::new(64);
        t.record(key(1, FormatId::Csr), Duration::from_micros(10));
        t.record(key(1, FormatId::Csr), Duration::from_micros(30));
        t.record(key(1, FormatId::Dia), Duration::from_micros(5));
        t.record(key(2, FormatId::Csr), Duration::from_micros(7));

        let snap = t.snapshot();
        assert_eq!(snap.len(), 3);
        let csr1 = snap.iter().find(|m| m.key == key(1, FormatId::Csr)).unwrap();
        assert_eq!(csr1.count, 2);
        assert!((csr1.seconds - 40e-6).abs() < 1e-12);
        assert!((csr1.mean_seconds() - 20e-6).abs() < 1e-12);
        let stats = t.stats();
        assert_eq!((stats.recorded, stats.dropped, stats.slots_used), (4, 0, 3));
    }

    #[test]
    fn zero_structure_hash_is_a_valid_key() {
        let t = Telemetry::new(16);
        t.record(key(0, FormatId::Ell), Duration::from_nanos(100));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].key.structure, 0);
        assert_eq!(snap[0].count, 1);
    }

    #[test]
    fn full_ring_drops_instead_of_blocking() {
        let t = Telemetry::new(16); // minimum size; probe window = 16
        for s in 0..200u64 {
            t.record(key(s, FormatId::Csr), Duration::from_nanos(1));
        }
        let stats = t.stats();
        assert_eq!(stats.capacity, 16);
        assert_eq!(stats.slots_used, 16, "ring must fill completely");
        assert!(stats.dropped > 0, "overflow must drop, not evict");
        assert_eq!(stats.recorded + stats.dropped, 200);
        // Established keys still aggregate.
        let first = t.snapshot()[0].key;
        t.record(first, Duration::from_nanos(1));
        assert_eq!(t.stats().recorded, stats.recorded + 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing_within_capacity() {
        let t = std::sync::Arc::new(Telemetry::new(256));
        let threads = 8u64;
        let per_thread = 2000u64;
        std::thread::scope(|s| {
            for w in 0..threads {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..per_thread {
                        let k = SampleKey {
                            structure: i % 20,
                            format: FormatId::from_index((w % 6) as usize).unwrap(),
                            op: Op::Spmv,
                            scalar_bytes: 8,
                            workers: 1,
                            variant: KernelVariant::Scalar,
                            param_code: 0,
                        };
                        t.record(k, Duration::from_nanos(10));
                    }
                });
            }
        });
        let stats = t.stats();
        assert_eq!(stats.dropped, 0, "120 keys must fit a half-empty 256-slot ring: {stats:?}");
        assert_eq!(stats.recorded, threads * per_thread);
        let total: u64 = t.snapshot().iter().map(|m| m.count).sum();
        assert_eq!(total, threads * per_thread, "every sample must be aggregated exactly once");
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let t = Telemetry::new(64);
        for s in [9u64, 3, 7, 1] {
            t.record(key(s, FormatId::Csr), Duration::from_nanos(5));
        }
        let a: Vec<u64> = t.snapshot().iter().map(|m| m.key.structure).collect();
        assert_eq!(a, vec![1, 3, 7, 9]);
    }
}
