//! Hot-swappable model retraining: fit on collected samples off the hot
//! path, validate against the incumbent on a holdout split, swap
//! atomically into the live service.
//!
//! Two pieces:
//!
//! * [`AdaptiveTuner`] — a [`FormatTuner`] whose learned model lives
//!   behind an epoch pointer (`RwLock<Arc<_>>`): every selection reads one
//!   consistent snapshot (never a torn mix of two models), and installing
//!   a new model is one pointer swap. With no model installed — or after a
//!   drift [fallback](RetrainOutcome::FellBack) — selections come from the
//!   wrapped analytical fallback tuner (typically a
//!   [`RunFirstTuner`](crate::RunFirstTuner) over the `VirtualEngine`
//!   cost model).
//! * [`AdaptiveEngine`] — the retraining loop: drains the service's
//!   [`SampleCollector`](super::SampleCollector) into a labeled dataset,
//!   fits fresh [`RandomForest`] and [`GradientBoostedTrees`] candidates,
//!   picks between them by cross-validation ([`morpheus_ml::cv`]),
//!   compares the winner to the incumbent on a common holdout split, and
//!   only then swaps — persisting winners through
//!   [`ModelDatabase`](crate::ModelDatabase) and falling back to the
//!   analytical tuner when nothing meets the accuracy floor (the drift
//!   guard).
//!
//! Retraining is deterministic: a seeded collector + seeded fit over the
//! same observations reproduces the same serialized model bit for bit.

use super::collector::SweepReport;
use crate::features::FeatureVector;
use crate::model_db::ModelDatabase;
use crate::serve::OracleService;
use crate::tuner::{ml_decision, FormatTuner, TuneDecision};
use crate::{OracleError, Result};
use morpheus::{DynamicMatrix, Scalar};
use morpheus_machine::{MatrixAnalysis, Op, VirtualEngine};
use morpheus_ml::metrics::accuracy;
use morpheus_ml::{cv, Dataset, ForestParams, GbtParams, GradientBoostedTrees, RandomForest};
use parking_lot::RwLock;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which model family a retrain produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LearnedKind {
    /// [`RandomForest`].
    Forest,
    /// [`GradientBoostedTrees`].
    Gbt,
}

/// A fitted model of either family.
#[derive(Debug, Clone)]
pub enum LearnedModel {
    /// Bagged ensemble with majority voting.
    Forest(RandomForest),
    /// Boosted ensemble with softmax scoring.
    Gbt(GradientBoostedTrees),
}

impl LearnedModel {
    /// The family.
    pub fn kind(&self) -> LearnedKind {
        match self {
            LearnedModel::Forest(_) => LearnedKind::Forest,
            LearnedModel::Gbt(_) => LearnedKind::Gbt,
        }
    }

    /// Predicted class (format ID) for one feature row.
    pub fn predict(&self, x: &[f64]) -> usize {
        match self {
            LearnedModel::Forest(m) => m.predict(x),
            LearnedModel::Gbt(m) => m.predict(x),
        }
    }

    /// Nodes visited for one prediction (prediction-cost accounting).
    pub fn decision_path_len(&self, x: &[f64]) -> usize {
        match self {
            LearnedModel::Forest(m) => m.decision_path_len(x),
            LearnedModel::Gbt(m) => m.decision_path_len(x),
        }
    }

    /// Serializes the model in the Model-Database text format.
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> Result<()> {
        match self {
            LearnedModel::Forest(m) => morpheus_ml::serialize::save_forest(w, m)?,
            LearnedModel::Gbt(m) => morpheus_ml::serialize::save_gbt(w, m)?,
        }
        Ok(())
    }

    fn accuracy_on(&self, ds: &Dataset) -> f64 {
        let preds: Vec<usize> = (0..ds.len()).map(|i| self.predict(ds.row(i))).collect();
        accuracy(ds.targets(), &preds)
    }
}

/// One installed model generation: everything a selection needs, bundled
/// so concurrent tuners always see a consistent whole.
#[derive(Debug)]
pub struct ModelEpoch {
    /// The learned model.
    pub model: LearnedModel,
    /// The operation it was trained for (selections for other operations
    /// use the fallback tuner).
    pub op: Op,
    /// Accuracy on the holdout split at install time.
    pub holdout_accuracy: f64,
}

#[derive(Debug)]
struct TunerState {
    epoch: u64,
    learned: Option<Arc<ModelEpoch>>,
}

/// A [`FormatTuner`] whose model can be hot-swapped while any number of
/// threads are selecting through it.
///
/// The swap is an epoch-pointer replacement: `select` clones the current
/// `Arc` snapshot under a brief read lock and predicts from that snapshot,
/// so a decision is always made by *exactly one* model generation — the
/// old or the new, never a torn mix. With no learned model (fresh service,
/// or after a drift fallback), decisions come from the wrapped analytical
/// `fallback` tuner.
///
/// Swapping does **not** invalidate the owning service's decision cache
/// by itself; [`AdaptiveEngine`] clears it after every install or
/// fallback. The clear bumps the cache's generation counter, and the
/// service's in-flight tuning paths insert decisions *generation-gated* —
/// a decision computed by the just-swapped-out model that races the clear
/// is dropped rather than resurrected into the cache.
#[derive(Debug)]
pub struct AdaptiveTuner<F> {
    fallback: F,
    state: RwLock<Arc<TunerState>>,
}

impl<F> AdaptiveTuner<F> {
    /// Wraps an analytical fallback tuner; no learned model installed yet.
    pub fn new(fallback: F) -> Self {
        AdaptiveTuner { fallback, state: RwLock::new(Arc::new(TunerState { epoch: 0, learned: None })) }
    }

    /// The analytical fallback tuner.
    pub fn fallback(&self) -> &F {
        &self.fallback
    }

    /// Monotonic generation counter: bumped by every
    /// [`install`](Self::install) and [`clear_model`](Self::clear_model).
    pub fn epoch(&self) -> u64 {
        self.state.read().epoch
    }

    /// The currently installed model generation, if any.
    pub fn current(&self) -> Option<Arc<ModelEpoch>> {
        self.state.read().learned.clone()
    }

    /// Atomically installs a new model generation; returns the new epoch.
    pub fn install(&self, epoch: ModelEpoch) -> u64 {
        let mut state = self.state.write();
        let next = state.epoch + 1;
        *state = Arc::new(TunerState { epoch: next, learned: Some(Arc::new(epoch)) });
        next
    }

    /// Atomically removes the learned model — subsequent selections use
    /// the analytical fallback. Returns the new epoch.
    pub fn clear_model(&self) -> u64 {
        let mut state = self.state.write();
        let next = state.epoch + 1;
        *state = Arc::new(TunerState { epoch: next, learned: None });
        next
    }
}

impl<V: Scalar, F: FormatTuner<V>> FormatTuner<V> for AdaptiveTuner<F> {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn select(
        &self,
        m: &DynamicMatrix<V>,
        a: &MatrixAnalysis,
        engine: &VirtualEngine,
        op: Op,
    ) -> TuneDecision {
        // One consistent snapshot; the lock is held only for the clone.
        let state: Arc<TunerState> = self.state.read().clone();
        match &state.learned {
            Some(epoch) if epoch.op == op => {
                let fv = FeatureVector::from_stats(&a.stats);
                let predicted = epoch.model.predict(fv.as_slice());
                let visited = epoch.model.decision_path_len(fv.as_slice());
                ml_decision(predicted, visited, m, a, engine, op)
            }
            _ => self.fallback.select(m, a, engine, op),
        }
    }
}

/// Policy of an [`AdaptiveEngine`].
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// The operation to adapt for (training samples of other operations
    /// are ignored; selections for other operations use the fallback).
    pub op: Op,
    /// Fraction of collected samples held out for validation.
    pub holdout_fraction: f64,
    /// Seed for the holdout split, cross-validation folds and forest
    /// bootstrap — the determinism root of the whole retrain.
    pub seed: u64,
    /// Fewest labeled samples before a retrain is attempted.
    pub min_samples: usize,
    /// Accuracy floor: when neither the fresh candidate nor the incumbent
    /// reaches it on the holdout, the learned model is dropped and the
    /// analytical fallback serves — the drift guard.
    pub accuracy_floor: f64,
    /// Random-forest candidate hyperparameters (`seed` here is
    /// overridden by [`AdaptiveConfig::seed`]).
    pub forest: ForestParams,
    /// Gradient-boosted candidate hyperparameters.
    pub gbt: GbtParams,
    /// Timed executions per format in a [`AdaptiveEngine::sweep`].
    pub sweep_reps: usize,
    /// Offline training corpus merged into every collected dataset (the
    /// warm-start analogue of the decision import: ship the offline
    /// dataset, let online samples refine it).
    pub base_dataset: Option<Dataset>,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            op: Op::Spmv,
            holdout_fraction: 0.25,
            seed: 0x5eed,
            min_samples: 8,
            accuracy_floor: 0.5,
            forest: ForestParams { n_estimators: 20, ..Default::default() },
            gbt: GbtParams { n_rounds: 20, ..Default::default() },
            sweep_reps: 3,
            base_dataset: None,
        }
    }
}

/// What one adaptation round decided.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrainOutcome {
    /// A fresh candidate won and was installed at this epoch.
    Swapped {
        /// The tuner epoch after the install.
        epoch: u64,
    },
    /// The incumbent (learned or analytical) was kept.
    Retained,
    /// Drift: nothing met the accuracy floor; the learned model was
    /// removed and the analytical fallback serves from this epoch on.
    FellBack {
        /// The tuner epoch after the removal.
        epoch: u64,
    },
    /// Not enough data to retrain.
    Skipped {
        /// Why the round did nothing.
        reason: String,
    },
}

/// Report of one [`AdaptiveEngine::round`].
#[derive(Debug, Clone)]
pub struct RetrainReport {
    /// Labeled samples the round saw (collected + base dataset).
    pub samples: usize,
    /// Training-split size.
    pub train_len: usize,
    /// Holdout-split size.
    pub holdout_len: usize,
    /// Family of the winning fresh candidate (even when not installed).
    pub candidate: Option<LearnedKind>,
    /// Holdout accuracy of the fresh candidate.
    pub candidate_accuracy: Option<f64>,
    /// Holdout accuracy of the incumbent learned model (None when the
    /// analytical fallback is serving).
    pub incumbent_accuracy: Option<f64>,
    /// The decision.
    pub outcome: RetrainOutcome,
    /// Total sweep seconds charged so far (see
    /// [`TuningCost::measured`](crate::TuningCost)).
    pub measured_seconds: f64,
    /// Where the installed model was persisted, when a database is
    /// configured and the round swapped.
    pub persisted: Option<PathBuf>,
}

/// The adaptation loop around one [`OracleService`]. See the
/// [module docs](self).
#[derive(Debug)]
pub struct AdaptiveEngine<F> {
    service: Arc<OracleService<AdaptiveTuner<F>>>,
    config: AdaptiveConfig,
    db: Option<ModelDatabase>,
    rounds: AtomicU64,
}

impl<F> AdaptiveEngine<F> {
    /// Wraps a service built with an [`AdaptiveTuner`] and a
    /// [`SampleCollector`](super::SampleCollector) (see
    /// [`crate::OracleBuilder::collector`]).
    ///
    /// # Errors
    /// [`OracleError::InvalidConfig`] when the service has no collector —
    /// there would be nothing to learn from.
    pub fn new(service: Arc<OracleService<AdaptiveTuner<F>>>, config: AdaptiveConfig) -> Result<Self> {
        if service.collector().is_none() {
            return Err(OracleError::InvalidConfig(
                "AdaptiveEngine requires a service built with .collector(...)".into(),
            ));
        }
        Ok(AdaptiveEngine { service, config, db: None, rounds: AtomicU64::new(0) })
    }

    /// Persists every installed model to `db` (keyed by the service
    /// engine's system and backend, kind per the winning family).
    pub fn persist_to(mut self, db: ModelDatabase) -> Self {
        self.db = Some(db);
        self
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<OracleService<AdaptiveTuner<F>>> {
        &self.service
    }

    /// The adaptation policy.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Completed adaptation rounds (including skipped ones).
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Runs a trial sweep of `m` (every viable format, really executed and
    /// timed) so the collector can label this structure even though
    /// serving traffic only ever exercises the tuned format. Off-hot-path;
    /// see [`SampleCollector::sweep`](super::SampleCollector::sweep).
    pub fn sweep<V: Scalar>(&self, m: &DynamicMatrix<V>) -> Result<SweepReport> {
        let collector = self.service.collector().expect("checked at construction");
        collector.sweep(
            self.service.engine(),
            self.service.convert_options(),
            m,
            self.config.op,
            self.config.sweep_reps,
        )
    }

    /// One adaptation round: collect → fit → validate → swap/retain/fall
    /// back. Never blocks serving traffic — the service keeps answering
    /// from the current model until the atomic swap.
    pub fn round(&self) -> Result<RetrainReport> {
        let collector = self.service.collector().expect("checked at construction");
        let collected = collector.build_dataset(self.config.op)?;
        let dataset = match &self.config.base_dataset {
            Some(base) => {
                let mut ds = base.clone();
                ds.merge(&collected.dataset)?;
                ds
            }
            None => collected.dataset,
        };
        self.round_with(dataset)
    }

    /// [`AdaptiveEngine::round`] on an explicit dataset — the entry point
    /// for tests and for forced-drift scenarios (feed observations that
    /// contradict the incumbent and watch the fallback trigger).
    pub fn round_with(&self, dataset: Dataset) -> Result<RetrainReport> {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        let collector = self.service.collector().expect("checked at construction");
        let measured_seconds = collector.measured_seconds();
        let skip = |reason: String, samples: usize| RetrainReport {
            samples,
            train_len: 0,
            holdout_len: 0,
            candidate: None,
            candidate_accuracy: None,
            incumbent_accuracy: None,
            outcome: RetrainOutcome::Skipped { reason },
            measured_seconds,
            persisted: None,
        };
        if dataset.len() < self.config.min_samples {
            return Ok(skip(
                format!("{} samples < min_samples {}", dataset.len(), self.config.min_samples),
                dataset.len(),
            ));
        }
        let (train, holdout) = dataset.stratified_split(self.config.holdout_fraction, self.config.seed);
        if holdout.is_empty() || train.is_empty() {
            return Ok(skip("holdout split left an empty side".into(), dataset.len()));
        }

        // Candidate selection between the two families never touches the
        // holdout: 3-fold CV on the training split when it is big enough,
        // training accuracy otherwise (letting a 2-sample holdout both
        // pick and grade the winner would inflate candidate_accuracy by
        // selection bias). The holdout judges only the already-chosen
        // candidate against the incumbent.
        let fit_forest = |ds: &Dataset| {
            RandomForest::fit(ds, &ForestParams { seed: self.config.seed, ..self.config.forest.clone() })
        };
        let fit_gbt = |ds: &Dataset| GradientBoostedTrees::fit(ds, &self.config.gbt);
        let candidate = if train.len() >= 9 {
            let forest_score = cv::cross_val_score(&train, 3, self.config.seed, |tr, val| {
                fit_forest(tr).map(|m| LearnedModel::Forest(m).accuracy_on(val)).unwrap_or(0.0)
            });
            let gbt_score = cv::cross_val_score(&train, 3, self.config.seed, |tr, val| {
                fit_gbt(tr).map(|m| LearnedModel::Gbt(m).accuracy_on(val)).unwrap_or(0.0)
            });
            if gbt_score > forest_score {
                LearnedModel::Gbt(fit_gbt(&train)?)
            } else {
                LearnedModel::Forest(fit_forest(&train)?)
            }
        } else {
            let forest = LearnedModel::Forest(fit_forest(&train)?);
            let gbt = LearnedModel::Gbt(fit_gbt(&train)?);
            if gbt.accuracy_on(&train) > forest.accuracy_on(&train) {
                gbt
            } else {
                forest
            }
        };
        let candidate_kind = candidate.kind();
        let candidate_accuracy = candidate.accuracy_on(&holdout);

        let tuner = self.service.tuner();
        let incumbent = tuner.current().filter(|e| e.op == self.config.op);
        let incumbent_accuracy = incumbent.as_ref().map(|e| e.model.accuracy_on(&holdout));

        let floor = self.config.accuracy_floor;
        let (outcome, persisted) = if candidate_accuracy >= floor
            && incumbent_accuracy.is_none_or(|inc| candidate_accuracy >= inc)
        {
            let persisted = match &self.db {
                Some(db) => Some(self.persist(db, &candidate)?),
                None => None,
            };
            let epoch = tuner.install(ModelEpoch {
                model: candidate,
                op: self.config.op,
                holdout_accuracy: candidate_accuracy,
            });
            // Decisions made by the previous model must not outlive it.
            self.service.clear_cache();
            (RetrainOutcome::Swapped { epoch }, persisted)
        } else if incumbent_accuracy.is_some_and(|inc| inc >= floor) || incumbent.is_none() {
            // Either the incumbent still clears the floor, or the
            // analytical fallback is already serving and the candidate
            // is not good enough to replace it.
            (RetrainOutcome::Retained, None)
        } else {
            // Drift: a learned model is serving, the fresh data says it is
            // below the floor, and retraining could not produce anything
            // better. Hand selection back to the analytical tuner — no
            // restart, just an epoch bump.
            let epoch = tuner.clear_model();
            self.service.clear_cache();
            (RetrainOutcome::FellBack { epoch }, None)
        };

        Ok(RetrainReport {
            samples: dataset.len(),
            train_len: train.len(),
            holdout_len: holdout.len(),
            candidate: Some(candidate_kind),
            candidate_accuracy: Some(candidate_accuracy),
            incumbent_accuracy,
            outcome,
            measured_seconds,
            persisted,
        })
    }

    fn persist(&self, db: &ModelDatabase, model: &LearnedModel) -> Result<PathBuf> {
        let system = self.service.engine().system().name;
        let backend = self.service.engine().backend();
        match model {
            LearnedModel::Forest(m) => db.save_forest(system, backend, m),
            LearnedModel::Gbt(m) => db.save_gbt(system, backend, m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::RunFirstTuner;
    use morpheus::format::FormatId;

    fn dataset(rule_flipped: bool, n: usize) -> Dataset {
        // Wide rows -> ELL, narrow -> CSR (or flipped, to simulate drift).
        let mut ds = Dataset::empty(crate::NUM_FEATURES, morpheus::format::FORMAT_COUNT, vec![]).unwrap();
        for i in 0..n {
            let wide = i % 2 == 0;
            let max_nnz = if wide { 60.0 } else { 3.0 };
            let row = [800.0, 800.0, 4000.0, 5.0, 0.006, max_nnz, 1.0, 2.0, 25.0, 0.0, 0.2, 1.1];
            let label = if wide != rule_flipped { FormatId::Ell } else { FormatId::Csr };
            ds.push(&row, label.index()).unwrap();
        }
        ds
    }

    fn toy_forest(ds: &Dataset) -> RandomForest {
        RandomForest::fit(ds, &ForestParams { n_estimators: 5, ..Default::default() }).unwrap()
    }

    #[test]
    fn tuner_swaps_and_clears_with_epoch_bumps() {
        let tuner = AdaptiveTuner::new(RunFirstTuner::new(1));
        assert_eq!(tuner.epoch(), 0);
        assert!(tuner.current().is_none());
        let ds = dataset(false, 40);
        let e1 = tuner.install(ModelEpoch {
            model: LearnedModel::Forest(toy_forest(&ds)),
            op: Op::Spmv,
            holdout_accuracy: 1.0,
        });
        assert_eq!(e1, 1);
        assert_eq!(tuner.current().unwrap().holdout_accuracy, 1.0);
        let e2 = tuner.clear_model();
        assert_eq!(e2, 2);
        assert!(tuner.current().is_none());
        assert_eq!(FormatTuner::<f64>::name(&tuner), "adaptive");
    }

    #[test]
    fn learned_model_save_dispatches_by_kind() {
        let ds = dataset(false, 30);
        let forest = LearnedModel::Forest(toy_forest(&ds));
        let gbt = LearnedModel::Gbt(
            GradientBoostedTrees::fit(&ds, &GbtParams { n_rounds: 2, ..Default::default() }).unwrap(),
        );
        assert_eq!(forest.kind(), LearnedKind::Forest);
        assert_eq!(gbt.kind(), LearnedKind::Gbt);
        let mut f_buf = Vec::new();
        forest.save(&mut f_buf).unwrap();
        assert!(String::from_utf8(f_buf).unwrap().contains("kind forest"));
        let mut g_buf = Vec::new();
        gbt.save(&mut g_buf).unwrap();
        assert!(String::from_utf8(g_buf).unwrap().contains("kind gbt"));
        assert!(forest.decision_path_len(ds.row(0)) >= 1);
    }
}
