//! The adaptive learning subsystem: close the paper's profile → label →
//! train → deploy loop *online*, inside the serving layer.
//!
//! The offline pipeline trains models against the analytical
//! [`VirtualEngine`](morpheus_machine::VirtualEngine) cost model; but a
//! deployed [`OracleService`](crate::OracleService) executes millions of
//! real kernel invocations whose measured timings are ground truth the
//! cost model can only approximate. This module feeds them back:
//!
//! 1. **[`telemetry`]** — a lock-free atomic ring that attributes measured
//!    wall seconds to `(structure, format, op, scalar width, workers)`
//!    populations without ever blocking the zero-lock serving hot path;
//! 2. **[`collector`]** — joins telemetry with the Table-I
//!    [`FeatureVector`](crate::FeatureVector)s the service extracts anyway,
//!    labels each matrix with its *measured*-fastest format (optionally
//!    filling unobserved formats with a real timed trial
//!    [`sweep`](SampleCollector::sweep)) and emits a
//!    [`morpheus_ml::Dataset`];
//! 3. **[`retrain`]** — fits fresh forest/GBT candidates off the hot path,
//!    validates them on a holdout split against the incumbent, atomically
//!    hot-swaps winners into the live [`AdaptiveTuner`], persists them
//!    through the [`ModelDatabase`](crate::ModelDatabase) and falls back
//!    to the analytical tuner when accuracy drifts below a floor — all
//!    without a service restart.
//!
//! ```
//! use morpheus::{CooMatrix, DynamicMatrix};
//! use morpheus_machine::{systems, Backend, VirtualEngine};
//! use morpheus_oracle::adapt::{AdaptiveConfig, AdaptiveEngine, AdaptiveTuner};
//! use morpheus_oracle::{CollectorConfig, Oracle, RunFirstTuner, SampleCollector};
//! use std::sync::Arc;
//!
//! let collector = Arc::new(SampleCollector::new(CollectorConfig::default()));
//! let service = Arc::new(
//!     Oracle::builder()
//!         .engine(VirtualEngine::new(systems::cirrus(), Backend::Serial))
//!         .tuner(AdaptiveTuner::new(RunFirstTuner::new(1)))
//!         .collector(Arc::clone(&collector))
//!         .build_service()
//!         .unwrap(),
//! );
//! let engine = AdaptiveEngine::new(Arc::clone(&service), AdaptiveConfig::default()).unwrap();
//!
//! // Serve (telemetry records measured kernels), sweep (fill unobserved
//! // formats with real timed trials), adapt (retrain + hot-swap).
//! let mut m = DynamicMatrix::from(
//!     CooMatrix::<f64>::from_triplets(3, 3, &[0, 1, 2], &[0, 1, 2], &[1.0; 3]).unwrap(),
//! );
//! let x = [1.0; 3];
//! let mut y = [0.0; 3];
//! service.tune_and_spmv(&mut m, &x, &mut y).unwrap();
//! engine.sweep(&m).unwrap();
//! let report = engine.round().unwrap(); // too few samples yet: skipped
//! assert!(engine.rounds() == 1 && report.samples <= 1);
//! ```

pub mod collector;
pub mod retrain;
pub mod telemetry;

pub use collector::{Collected, CollectorConfig, CollectorStats, SampleCollector, SweepReport};
pub use retrain::{
    AdaptiveConfig, AdaptiveEngine, AdaptiveTuner, LearnedKind, LearnedModel, ModelEpoch, RetrainOutcome,
    RetrainReport,
};
pub use telemetry::{MeasuredKernel, SampleKey, Telemetry, TelemetryStats};
