//! The `Oracle` session facade: the crate's public tuning API.
//!
//! The paper's tuner pays for itself by amortising a cheap prediction over
//! many repeated executions (§VI, §VII-E). A session object makes that
//! amortisation real at the API level: one `Oracle` holds the engine, the
//! tuner, the conversion policy, an LRU decision cache **and an execution
//! plan cache**, so a stream of tuning requests — the production shape of
//! the workload — re-extracts features only for structures it has not seen
//! before, and re-derives thread schedules only for structures it has never
//! executed.
//!
//! ```
//! use morpheus::{CooMatrix, DynamicMatrix};
//! use morpheus_machine::{systems, Backend, VirtualEngine};
//! use morpheus_oracle::{Oracle, RunFirstTuner};
//!
//! let mut m = DynamicMatrix::from(
//!     CooMatrix::<f32>::from_triplets(3, 3, &[0, 1, 2], &[0, 1, 2], &[1.0, 1.0, 1.0]).unwrap(),
//! );
//! let mut oracle = Oracle::builder()
//!     .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
//!     .tuner(RunFirstTuner::new(3))
//!     .build()
//!     .unwrap();
//! let report = oracle.tune(&mut m).unwrap();
//! assert_eq!(m.format_id(), report.chosen);
//! ```

use crate::cache::{CacheKey, CacheStats, DecisionCache, LruMap};
use crate::tune::{PlanStatus, TuneReport};
use crate::tuner::{FormatTuner, TuneDecision, TuningCost};
use crate::{OracleError, Result};
use morpheus::format::FormatId;
use morpheus::{Analysis, ConvertOptions, DynamicMatrix, ExecPlan, Scalar};
use morpheus_machine::{analyze_from, Op, VirtualEngine};
use morpheus_parallel::ThreadPool;
use std::any::Any;

/// Decisions a fresh [`Oracle`] keeps unless
/// [`OracleBuilder::cache_capacity`] overrides it.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Key identifying one cached execution plan. Plans depend on the matrix
/// structure *in its realized format*, the scalar width and the worker
/// count — but not on the operation: SpMV and SpMM replay the same row
/// partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    structure: u64,
    scalar_bytes: usize,
    threads: usize,
}

/// Bounded LRU map from [`PlanKey`] to a type-erased [`ExecPlan`]: the
/// shared [`LruMap`] mechanism plus the downcast/validity wrapper. The
/// scalar width in the key keeps `f32` and `f64` plans apart, and lookups
/// re-check the downcast anyway.
#[derive(Debug)]
struct PlanCache {
    map: LruMap<PlanKey, Box<dyn Any + Send>>,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache { map: LruMap::new(capacity) }
    }

    fn capacity(&self) -> usize {
        self.map.capacity()
    }

    /// Returns the cached plan for `key` if it exists, downcasts to
    /// `ExecPlan<V>` and still describes `m`; otherwise builds one with
    /// `build`, stores it and returns it. The `bool` is `true` on a hit.
    /// Must not be called with caching disabled (capacity 0).
    fn get_or_build<V: Scalar>(
        &mut self,
        key: PlanKey,
        m: &DynamicMatrix<V>,
        build: impl FnOnce() -> ExecPlan<V>,
    ) -> (&mut ExecPlan<V>, bool) {
        let hit = self
            .map
            .get_if(&key, |boxed| boxed.downcast_ref::<ExecPlan<V>>().is_some_and(|plan| plan.matches(m)))
            .is_some();
        if !hit {
            self.map.insert(key, Box::new(build()));
        }
        let boxed = self.map.peek_mut(&key).expect("caller checked capacity > 0");
        let plan = boxed.downcast_mut::<ExecPlan<V>>().expect("inserted with this scalar");
        (plan, hit)
    }

    fn clear(&mut self) {
        self.map.clear();
    }

    fn stats(&self) -> CacheStats {
        self.map.stats()
    }
}

/// A tuning session: engine + tuner + conversion policy + decision cache +
/// execution plan cache.
///
/// Built via [`Oracle::builder`]. The tuner type `T` is generic so the
/// session is zero-cost over concrete tuners and still accepts trait
/// objects (`Box<dyn FormatTuner<f64>>`) when the strategy is chosen at
/// runtime. Methods are generic over the matrix scalar: any `T`
/// implementing [`FormatTuner`] for both `f32` and `f64` (all bundled
/// tuners do) serves both precisions from one session, sharing one cache.
#[derive(Debug)]
pub struct Oracle<T> {
    engine: VirtualEngine,
    tuner: T,
    opts: ConvertOptions,
    cache: DecisionCache,
    plans: PlanCache,
    engine_fingerprint: u64,
}

impl Oracle<()> {
    /// Starts building a session. [`OracleBuilder::engine`] and
    /// [`OracleBuilder::tuner`] are mandatory.
    pub fn builder() -> OracleBuilder<()> {
        OracleBuilder {
            engine: None,
            tuner: None,
            opts: ConvertOptions::default(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// What one tuning call learned beyond the report: the structure hash of
/// the matrix in its realized (post-conversion) format when it is known
/// without re-hashing, plus the shared analysis built on a decision-cache
/// miss (reused for plan construction).
struct TuneArtifacts {
    realized_hash: Option<u64>,
    analysis: Option<Analysis>,
}

impl<T> Oracle<T> {
    /// Tunes `m` for SpMV: selects a format (from cache when the structure
    /// was seen before) and switches `m` to it in place.
    ///
    /// If the predicted format cannot be materialised (padding beyond
    /// `ConvertOptions::max_fill`, which can happen when an ML model
    /// mispredicts on an adversarial sparsity pattern), the matrix falls
    /// back to CSR — the general-purpose default — rather than failing.
    pub fn tune<V>(&mut self, m: &mut DynamicMatrix<V>) -> Result<TuneReport>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        self.tune_for(m, Op::Spmv)
    }

    /// [`Oracle::tune`] for an arbitrary operation.
    ///
    /// On a cache miss the session builds one shared [`Analysis`] of the
    /// matrix (reusing the hash it just computed for the cache key) and
    /// threads it through feature extraction *and* the eventual format
    /// conversion, so planning the target layout never re-traverses the
    /// matrix. On a hit, only the hash and the conversion are paid for.
    pub fn tune_for<V>(&mut self, m: &mut DynamicMatrix<V>, op: Op) -> Result<TuneReport>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        self.tune_with_artifacts(m, op).map(|(report, _)| report)
    }

    fn tune_with_artifacts<V>(
        &mut self,
        m: &mut DynamicMatrix<V>,
        op: Op,
    ) -> Result<(TuneReport, TuneArtifacts)>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        let previous = m.format_id();
        let hash = m.structure_hash();
        let key = CacheKey {
            structure: hash,
            scalar_bytes: std::mem::size_of::<V>(),
            engine: self.engine_fingerprint,
            op,
        };

        let (decision, cache_hit, analysis) = match self.cache.get(&key) {
            Some(mut cached) => {
                // Same structure, scalar, engine and op: the tuner would
                // reproduce this decision, so charge nothing for it.
                cached.cost = TuningCost::cached();
                (cached, true, None)
            }
            None => {
                let analysis = Analysis::of_auto_with_hash(m, self.opts.true_diag_alpha, hash);
                let machine_view = analyze_from(m, &analysis);
                let decision = self.tuner.select(m, &machine_view, &self.engine, op);
                self.cache.insert(key, decision);
                (decision, false, Some(analysis))
            }
        };

        let predicted = decision.format;
        let (chosen, convert) = match m.convert_to_with(predicted, &self.opts, analysis.as_ref()) {
            Ok(outcome) => (predicted, outcome),
            Err(_) => {
                // Mispredicted into a non-viable format: fall back to CSR.
                let outcome = m.convert_to_with(FormatId::Csr, &self.opts, analysis.as_ref())?;
                (FormatId::Csr, outcome)
            }
        };
        let mut realized_hash = (chosen == previous).then_some(hash);
        if !cache_hit {
            // Cache the *realized* format: if the prediction proved
            // non-viable, later hits must not re-pay the failing
            // conversion attempt before falling back.
            let realized = TuneDecision { format: chosen, ..decision };
            if chosen != predicted {
                self.cache.insert(key, realized);
            }
            if chosen != previous {
                // Alias the decision under the matrix's *post-conversion*
                // structure too, so re-tuning the same (already switched)
                // matrix — the repeated-execution loop of §VII-E — is a
                // hit.
                let post_hash = m.structure_hash();
                realized_hash = Some(post_hash);
                self.cache.insert(CacheKey { structure: post_hash, ..key }, realized);
            }
        }
        let report = TuneReport {
            chosen,
            previous,
            predicted,
            cost: decision.cost,
            converted: chosen != previous,
            op,
            cache_hit,
            plan: PlanStatus::Unplanned,
            convert,
        };
        Ok((report, TuneArtifacts { realized_hash, analysis }))
    }

    /// Host execution pool matching the session's target backend: `None`
    /// (serial) for the Serial engine, the process-wide thread pool
    /// otherwise (OpenMP targets run threaded; simulated GPU targets have
    /// no host device, so the threaded backend is the closest host
    /// execution).
    fn exec_pool(&self) -> Option<&'static ThreadPool> {
        match self.engine.backend() {
            morpheus_machine::Backend::Serial => None,
            _ => Some(morpheus_parallel::global_pool()),
        }
    }

    /// Executes `run` against the session's cached execution plan for `m`
    /// in its realized format, building (and caching) the plan on first
    /// sight of the structure. With caching disabled (capacity 0) a
    /// one-shot plan is built per call — still the planned kernels, but
    /// construction is re-paid every time.
    fn with_plan<V: Scalar>(
        &mut self,
        m: &DynamicMatrix<V>,
        artifacts: &TuneArtifacts,
        pool: &ThreadPool,
        run: impl FnOnce(&mut ExecPlan<V>) -> morpheus::Result<()>,
    ) -> Result<PlanStatus> {
        let threads = pool.num_threads();
        let analysis = artifacts.analysis.as_ref();
        if self.plans.capacity() == 0 {
            run(&mut ExecPlan::build(m, threads, analysis))?;
            return Ok(PlanStatus::Built);
        }
        let structure = artifacts.realized_hash.unwrap_or_else(|| m.structure_hash());
        let key = PlanKey { structure, scalar_bytes: std::mem::size_of::<V>(), threads };
        let (plan, hit) = self.plans.get_or_build(key, m, || ExecPlan::build(m, threads, analysis));
        run(plan)?;
        Ok(if hit { PlanStatus::Reused } else { PlanStatus::Built })
    }

    /// Tunes `m` for SpMV, then executes `y = A x` in the selected format,
    /// on the execution backend matching the session's engine (serial for
    /// a Serial engine, the host thread pool otherwise).
    ///
    /// Threaded execution runs through the session's cached
    /// [`ExecPlan`] for the matrix structure: the first call builds the
    /// plan (`report.plan == PlanStatus::Built`), subsequent calls in an
    /// iterative loop replay it with zero scheduling work
    /// (`PlanStatus::Reused`).
    pub fn tune_and_spmv<V>(&mut self, m: &mut DynamicMatrix<V>, x: &[V], y: &mut [V]) -> Result<TuneReport>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        let (mut report, artifacts) = self.tune_with_artifacts(m, Op::Spmv)?;
        match self.exec_pool() {
            None => morpheus::spmv::spmv_serial(m, x, y)?,
            Some(pool) => {
                report.plan = self.with_plan(m, &artifacts, pool, |plan| plan.spmv(m, x, y, pool))?;
            }
        }
        Ok(report)
    }

    /// Tunes `m` for SpMM with `k` right-hand sides, then executes
    /// `Y = A X` (`x` row-major `ncols x k`, `y` row-major `nrows x k`) in
    /// the selected format, serial or threaded-planned per the engine's
    /// backend. SpMV and SpMM replay the *same* cached plan — the row
    /// partition depends only on the structure.
    pub fn tune_and_spmm<V>(
        &mut self,
        m: &mut DynamicMatrix<V>,
        x: &[V],
        y: &mut [V],
        k: usize,
    ) -> Result<TuneReport>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        let (mut report, artifacts) = self.tune_with_artifacts(m, Op::Spmm { k })?;
        match self.exec_pool() {
            None => morpheus::spmm::spmm_serial(m, x, y, k)?,
            Some(pool) => {
                report.plan = self.with_plan(m, &artifacts, pool, |plan| plan.spmm(m, x, y, k, pool))?;
            }
        }
        Ok(report)
    }

    /// The engine decisions are made for.
    pub fn engine(&self) -> &VirtualEngine {
        &self.engine
    }

    /// The tuning strategy.
    pub fn tuner(&self) -> &T {
        &self.tuner
    }

    /// The conversion policy applied when switching formats.
    pub fn convert_options(&self) -> &ConvertOptions {
        &self.opts
    }

    /// Hit/miss counters and occupancy of the decision cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Hit/miss counters and occupancy of the execution plan cache.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.plans.stats()
    }

    /// Forgets every cached decision and execution plan (counters are
    /// kept). Call after swapping model files on disk or recalibrating the
    /// engine.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
        self.plans.clear();
    }
}

/// Builder for [`Oracle`] sessions (see [`Oracle::builder`]).
#[derive(Debug)]
pub struct OracleBuilder<T> {
    engine: Option<VirtualEngine>,
    tuner: Option<T>,
    opts: ConvertOptions,
    cache_capacity: usize,
}

impl<T> OracleBuilder<T> {
    /// Sets the target engine (mandatory).
    pub fn engine(mut self, engine: VirtualEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Sets the tuning strategy (mandatory). May be a concrete tuner or a
    /// boxed trait object.
    pub fn tuner<U>(self, tuner: U) -> OracleBuilder<U> {
        OracleBuilder {
            engine: self.engine,
            tuner: Some(tuner),
            opts: self.opts,
            cache_capacity: self.cache_capacity,
        }
    }

    /// Overrides the conversion policy (default:
    /// `ConvertOptions::default()`).
    pub fn convert_options(mut self, opts: ConvertOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Overrides the capacity shared by the decision cache and the
    /// execution plan cache ([`DEFAULT_CACHE_CAPACITY`] entries by
    /// default; 0 disables caching — executions then rebuild their plan
    /// per call).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Finishes the session.
    ///
    /// # Errors
    /// [`OracleError::InvalidConfig`] when the engine or tuner was never
    /// set.
    pub fn build(self) -> Result<Oracle<T>> {
        let engine = self
            .engine
            .ok_or_else(|| OracleError::InvalidConfig("Oracle::builder(): no engine set".into()))?;
        let tuner =
            self.tuner.ok_or_else(|| OracleError::InvalidConfig("Oracle::builder(): no tuner set".into()))?;
        let engine_fingerprint = fingerprint_engine(&engine);
        Ok(Oracle {
            engine,
            tuner,
            opts: self.opts,
            cache: DecisionCache::new(self.cache_capacity),
            plans: PlanCache::new(self.cache_capacity),
            engine_fingerprint,
        })
    }
}

/// Hash of the engine's (system, backend) identity. Within one session the
/// engine never changes, so this component never distinguishes entries
/// today — it is part of the key so cached decisions stay self-describing.
/// Note it covers the label only: engines differing merely in calibration
/// or noise parameters collide, so it is NOT sufficient on its own to
/// merge caches across sessions.
fn fingerprint_engine(engine: &VirtualEngine) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    engine.label().hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::RunFirstTuner;
    use morpheus::CooMatrix;
    use morpheus_machine::{systems, Backend, MatrixAnalysis};

    fn tridiag(n: usize) -> DynamicMatrix<f64> {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..n {
            for d in [-1isize, 0, 1] {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n {
                    rows.push(i);
                    cols.push(j as usize);
                }
            }
        }
        let vals = vec![1.0; rows.len()];
        DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    fn session() -> Oracle<RunFirstTuner> {
        Oracle::builder()
            .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
            .tuner(RunFirstTuner::new(3))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_engine_and_tuner() {
        assert!(matches!(
            Oracle::builder().tuner(RunFirstTuner::new(1)).build(),
            Err(OracleError::InvalidConfig(_))
        ));
        let no_tuner = Oracle::builder().engine(VirtualEngine::new(systems::a64fx(), Backend::Serial));
        assert!(matches!(no_tuner.build(), Err(OracleError::InvalidConfig(_))));
    }

    #[test]
    fn second_tune_of_identical_structure_hits_the_cache() {
        let mut oracle = session();
        let mut first = tridiag(2000);
        let r1 = oracle.tune(&mut first).unwrap();
        assert!(!r1.cache_hit);
        assert!(r1.cost.total() > 0.0);
        assert_eq!(r1.plan, PlanStatus::Unplanned, "tune-only calls never plan");

        // A *distinct* matrix with the same structure.
        let mut second = tridiag(2000);
        let r2 = oracle.tune(&mut second).unwrap();
        assert!(r2.cache_hit);
        assert!(r2.cost.cache_hit);
        assert_eq!(r2.cost.feature_extraction, 0.0);
        assert_eq!(r2.cost.prediction, 0.0);
        assert_eq!(r2.cost.profiling, 0.0);
        assert_eq!(r2.chosen, r1.chosen);
        assert_eq!(second.format_id(), r1.chosen);

        let stats = oracle.cache_stats();
        // Two entries per tuned structure: the original form plus the
        // post-conversion alias.
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 2));
    }

    #[test]
    fn tune_switches_format_and_preserves_entries() {
        let mut m = tridiag(4000);
        let mut oracle = session();
        let report = oracle.tune(&mut m).unwrap();
        assert_eq!(report.previous, FormatId::Coo);
        assert_eq!(m.format_id(), report.chosen);
        assert_eq!(report.predicted, report.chosen);
        assert_eq!(report.op, Op::Spmv);
        assert_eq!(m.nnz(), 3 * 4000 - 2);
    }

    #[test]
    fn fallback_to_csr_on_nonviable_prediction() {
        /// A tuner that always predicts ELL, even when ELL cannot hold the
        /// matrix within the fill limit.
        struct AlwaysEll;
        impl FormatTuner<f64> for AlwaysEll {
            fn name(&self) -> &'static str {
                "always-ell"
            }
            fn select(
                &self,
                _: &DynamicMatrix<f64>,
                _: &MatrixAnalysis,
                _: &VirtualEngine,
                op: Op,
            ) -> TuneDecision {
                TuneDecision { format: FormatId::Ell, op, cost: TuningCost::default() }
            }
        }

        // Hypersparse with one long row: ELL width explodes.
        let n = 50_000usize;
        let mut rows: Vec<usize> = (0..500).map(|k| (k * 97) % n).collect();
        let mut cols: Vec<usize> = (0..500).map(|k| (k * 31) % n).collect();
        for k in 0..4000 {
            rows.push(7);
            cols.push((k * 11) % n);
        }
        let vals = vec![1.0; rows.len()];
        let mut m = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());

        let mut oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::Serial))
            .tuner(AlwaysEll)
            .build()
            .unwrap();
        let report = oracle.tune(&mut m).unwrap();
        assert_eq!(report.predicted, FormatId::Ell);
        assert_eq!(report.chosen, FormatId::Csr);
        assert_eq!(m.format_id(), FormatId::Csr);
    }

    #[test]
    fn tune_and_execute_preserves_numerics() {
        let mut oracle = session();
        let base = tridiag(600);
        let n = base.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();

        let mut y_ref = vec![0.0; n];
        morpheus::spmv::spmv_serial(&base, &x, &mut y_ref).unwrap();

        let mut tuned = base.clone();
        let mut y = vec![f64::NAN; n];
        let report = oracle.tune_and_spmv(&mut tuned, &x, &mut y).unwrap();
        assert_eq!(tuned.format_id(), report.chosen);
        assert_eq!(report.plan, PlanStatus::Unplanned, "serial sessions execute unplanned");
        assert_eq!(y, y_ref);

        // SpMM with k = 1 equals SpMV.
        let mut tuned2 = base.clone();
        let mut y2 = vec![f64::NAN; n];
        let r2 = oracle.tune_and_spmm(&mut tuned2, &x, &mut y2, 1).unwrap();
        assert_eq!(r2.op, Op::Spmm { k: 1 });
        assert_eq!(y2, y_ref);
    }

    #[test]
    fn openmp_session_executes_threaded_with_identical_numerics() {
        let mut oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(3))
            .build()
            .unwrap();
        let mut m = tridiag(800);
        let x: Vec<f64> = (0..800).map(|i| (i % 11) as f64 - 5.0).collect();
        let mut y = vec![f64::NAN; 800];
        let report = oracle.tune_and_spmv(&mut m, &x, &mut y).unwrap();
        assert_eq!(m.format_id(), report.chosen);
        // The threaded planned backend is bit-identical to serial on the
        // same tuned matrix.
        let mut y_serial = vec![0.0f64; 800];
        morpheus::spmv::spmv_serial(&m, &x, &mut y_serial).unwrap();
        assert_eq!(y, y_serial);
    }

    #[test]
    fn iterative_loop_builds_the_plan_once_and_replays_it() {
        let mut oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(3))
            .build()
            .unwrap();
        let mut m = tridiag(1500);
        let x = vec![1.0f64; 1500];
        let mut y = vec![0.0f64; 1500];

        let first = oracle.tune_and_spmv(&mut m, &x, &mut y).unwrap();
        assert_eq!(first.plan, PlanStatus::Built, "first execution plans the structure");
        for _ in 0..3 {
            let next = oracle.tune_and_spmv(&mut m, &x, &mut y).unwrap();
            assert!(next.cache_hit);
            assert_eq!(next.plan, PlanStatus::Reused, "steady state must replay the plan");
            assert!(next.plan.is_hit());
        }
        // SpMM on the same structure replays the same plan (partitioning
        // is operation-agnostic) even though the SpMM *decision* is new...
        let k = 4usize;
        let xk = vec![1.0f64; 1500 * k];
        let mut yk = vec![0.0f64; 1500 * k];
        let mm = oracle.tune_and_spmm(&mut m, &xk, &mut yk, k).unwrap();
        // ...unless the SpMM tuner picked a different format, in which case
        // a fresh plan is built for that format.
        if !mm.converted {
            assert_eq!(mm.plan, PlanStatus::Reused);
        }
        let stats = oracle.plan_cache_stats();
        assert!(stats.hits >= 3, "plan hits: {stats:?}");
        assert!(stats.len >= 1);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
            .tuner(RunFirstTuner::new(2))
            .cache_capacity(0)
            .build()
            .unwrap();
        for _ in 0..3 {
            let mut m = tridiag(900);
            let r = oracle.tune(&mut m).unwrap();
            assert!(!r.cache_hit);
            assert!(r.cost.total() > 0.0);
        }
        assert_eq!(oracle.cache_stats(), CacheStats { capacity: 0, ..Default::default() });
    }

    #[test]
    fn disabled_cache_still_executes_threaded_with_fresh_plans() {
        let mut oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(2))
            .cache_capacity(0)
            .build()
            .unwrap();
        let mut m = tridiag(700);
        let x = vec![2.0f64; 700];
        let mut y = vec![0.0f64; 700];
        for _ in 0..2 {
            let r = oracle.tune_and_spmv(&mut m, &x, &mut y).unwrap();
            assert_eq!(r.plan, PlanStatus::Built, "no cache: every call rebuilds its plan");
        }
        let mut y_ref = vec![0.0f64; 700];
        morpheus::spmv::spmv_serial(&m, &x, &mut y_ref).unwrap();
        assert_eq!(y, y_ref);
    }

    #[test]
    fn clear_cache_forces_fresh_decision_and_plan() {
        let mut oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(3))
            .build()
            .unwrap();
        let mut a = tridiag(1200);
        let x = vec![1.0f64; 1200];
        let mut y = vec![0.0f64; 1200];
        oracle.tune_and_spmv(&mut a, &x, &mut y).unwrap();
        oracle.clear_cache();
        let r = oracle.tune_and_spmv(&mut a, &x, &mut y).unwrap();
        assert!(!r.cache_hit);
        assert_eq!(r.plan, PlanStatus::Built, "cleared plan cache must rebuild");
        assert_eq!(oracle.cache_stats().misses, 2);
    }

    #[test]
    fn accessors_expose_configuration() {
        let opts = ConvertOptions { max_fill: 3.5, ..Default::default() };
        let oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(7))
            .convert_options(opts)
            .cache_capacity(16)
            .build()
            .unwrap();
        assert_eq!(oracle.engine().label(), "Cirrus/OpenMP");
        assert_eq!(oracle.tuner().reps(), 7);
        assert_eq!(oracle.convert_options().max_fill, 3.5);
        assert_eq!(oracle.cache_stats().capacity, 16);
        assert_eq!(oracle.plan_cache_stats().capacity, 16);
    }
}
