//! The `Oracle` session facade: the crate's public tuning API.
//!
//! The paper's tuner pays for itself by amortising a cheap prediction over
//! many repeated executions (§VI, §VII-E). A session object makes that
//! amortisation real at the API level: one `Oracle` holds the engine, the
//! tuner, the conversion policy, an LRU decision cache **and an execution
//! plan cache**, so a stream of tuning requests — the production shape of
//! the workload — re-extracts features only for structures it has not seen
//! before, and re-derives thread schedules only for structures it has never
//! executed.
//!
//! Since the serving-layer refactor, an `Oracle` is a thin single-owner
//! wrapper over [`OracleService`] — the `Send + Sync` concurrent session in
//! [`crate::serve`]. The facade keeps the familiar `&mut self` API (and the
//! zero-surprise guarantee that nothing else touches its caches); call
//! [`Oracle::into_service`] to promote a configured session into a shared
//! service, or build one directly with [`OracleBuilder::build_service`].
//!
//! ```
//! use morpheus::{CooMatrix, DynamicMatrix};
//! use morpheus_machine::{systems, Backend, VirtualEngine};
//! use morpheus_oracle::{Oracle, RunFirstTuner};
//!
//! let mut m = DynamicMatrix::from(
//!     CooMatrix::<f32>::from_triplets(3, 3, &[0, 1, 2], &[0, 1, 2], &[1.0, 1.0, 1.0]).unwrap(),
//! );
//! let mut oracle = Oracle::builder()
//!     .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
//!     .tuner(RunFirstTuner::new(3))
//!     .build()
//!     .unwrap();
//! let report = oracle.tune(&mut m).unwrap();
//! assert_eq!(m.format_id(), report.chosen);
//! ```

use crate::adapt::SampleCollector;
use crate::cache::{CacheStats, DEFAULT_SHARDS};
use crate::obs::ObsConfig;
use crate::serve::{OracleService, PartitionPolicy};
use crate::tune::TuneReport;
use crate::tuner::FormatTuner;
use crate::{OracleError, Result};
use morpheus::{ConvertOptions, DynamicMatrix, Scalar};
use morpheus_machine::{Op, VirtualEngine};

/// Decisions a fresh [`Oracle`] keeps unless
/// [`OracleBuilder::cache_capacity`] overrides it.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// A tuning session: engine + tuner + conversion policy + decision cache +
/// execution plan cache.
///
/// Built via [`Oracle::builder`]. The tuner type `T` is generic so the
/// session is zero-cost over concrete tuners and still accepts trait
/// objects (`Box<dyn FormatTuner<f64>>`) when the strategy is chosen at
/// runtime. Methods are generic over the matrix scalar: any `T`
/// implementing [`FormatTuner`] for both `f32` and `f64` (all bundled
/// tuners do) serves both precisions from one session, sharing one cache.
///
/// Internally this is a single-owner view of an [`OracleService`]; the
/// `&mut self` receivers are an API guarantee (no aliasing of the session
/// state), not a data-structure requirement.
#[derive(Debug)]
pub struct Oracle<T> {
    service: OracleService<T>,
}

impl Oracle<()> {
    /// Starts building a session. [`OracleBuilder::engine`] and
    /// [`OracleBuilder::tuner`] are mandatory.
    pub fn builder() -> OracleBuilder<()> {
        OracleBuilder {
            engine: None,
            tuner: None,
            opts: ConvertOptions::default(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            shards: DEFAULT_SHARDS,
            workers: None,
            collector: None,
            partition: PartitionPolicy::default(),
            obs: ObsConfig::default(),
        }
    }
}

impl<T> Oracle<T> {
    /// Tunes `m` for SpMV: selects a format (from cache when the structure
    /// was seen before) and switches `m` to it in place.
    ///
    /// If the predicted format cannot be materialised (padding beyond
    /// `ConvertOptions::max_fill`, which can happen when an ML model
    /// mispredicts on an adversarial sparsity pattern), the matrix falls
    /// back to CSR — the general-purpose default — rather than failing.
    pub fn tune<V>(&mut self, m: &mut DynamicMatrix<V>) -> Result<TuneReport>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        self.service.tune(m)
    }

    /// [`Oracle::tune`] for an arbitrary operation.
    ///
    /// On a cache miss the session builds one shared [`morpheus::Analysis`]
    /// of the matrix (reusing the hash it just computed for the cache key)
    /// and threads it through feature extraction *and* the eventual format
    /// conversion, so planning the target layout never re-traverses the
    /// matrix. On a hit, only the hash and the conversion are paid for.
    pub fn tune_for<V>(&mut self, m: &mut DynamicMatrix<V>, op: Op) -> Result<TuneReport>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        self.service.tune_for(m, op)
    }

    /// Tunes `m` for SpMV, then executes `y = A x` in the selected format,
    /// on the execution backend matching the session's engine (serial for
    /// a Serial engine, the host thread pool otherwise).
    ///
    /// Threaded execution runs through the session's cached
    /// [`morpheus::ExecPlan`] for the matrix structure: the first call
    /// builds the plan (`report.plan == PlanStatus::Built`), subsequent
    /// calls in an iterative loop replay it with zero scheduling work
    /// (`PlanStatus::Reused`).
    ///
    /// Since the serving-layer refactor, sessions inherit the service's
    /// latency-over-throughput policy: if the execution pool is busy with
    /// *another* user's batch at call time (possible when the session runs
    /// on the process-wide [`morpheus_parallel::global_pool`]; never from
    /// this session's own calls, which are sequential), the
    /// bitwise-identical serial kernel runs instead of queueing —
    /// reported via [`TuneReport::serial_fallback`]. Give the session a
    /// private pool with [`OracleBuilder::workers`] to make the fallback
    /// unreachable from outside.
    pub fn tune_and_spmv<V>(&mut self, m: &mut DynamicMatrix<V>, x: &[V], y: &mut [V]) -> Result<TuneReport>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        self.service.tune_and_spmv(m, x, y)
    }

    /// Tunes `m` for SpMM with `k` right-hand sides, then executes
    /// `Y = A X` (`x` row-major `ncols x k`, `y` row-major `nrows x k`) in
    /// the selected format, serial or threaded-planned per the engine's
    /// backend. SpMV and SpMM replay the *same* cached plan — the row
    /// partition depends only on the structure. The busy-pool serial
    /// fallback of [`Oracle::tune_and_spmv`] applies here too.
    pub fn tune_and_spmm<V>(
        &mut self,
        m: &mut DynamicMatrix<V>,
        x: &[V],
        y: &mut [V],
        k: usize,
    ) -> Result<TuneReport>
    where
        V: Scalar,
        T: FormatTuner<V>,
    {
        self.service.tune_and_spmm(m, x, y, k)
    }

    /// The engine decisions are made for.
    pub fn engine(&self) -> &VirtualEngine {
        self.service.engine()
    }

    /// The tuning strategy.
    pub fn tuner(&self) -> &T {
        self.service.tuner()
    }

    /// The conversion policy applied when switching formats.
    pub fn convert_options(&self) -> &ConvertOptions {
        self.service.convert_options()
    }

    /// Hit/miss counters and occupancy of the decision cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.service.cache_stats()
    }

    /// Hit/miss counters and occupancy of the execution plan cache.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.service.plan_cache_stats()
    }

    /// Forgets every cached decision and execution plan (counters are
    /// kept). Call after swapping model files on disk or recalibrating the
    /// engine.
    pub fn clear_cache(&mut self) {
        self.service.clear_cache();
    }

    /// The underlying concurrent service, shared caches and all (read
    /// access: stats, decision export, ...).
    pub fn service(&self) -> &OracleService<T> {
        &self.service
    }

    /// Promotes this session into its [`OracleService`], keeping every
    /// cached decision and plan — wrap it in an `Arc` and serve it from as
    /// many client threads as needed.
    pub fn into_service(self) -> OracleService<T> {
        self.service
    }
}

/// Builder for [`Oracle`] sessions and [`OracleService`]s (see
/// [`Oracle::builder`]).
#[derive(Debug)]
pub struct OracleBuilder<T> {
    engine: Option<VirtualEngine>,
    tuner: Option<T>,
    opts: ConvertOptions,
    cache_capacity: usize,
    shards: usize,
    workers: Option<usize>,
    collector: Option<std::sync::Arc<SampleCollector>>,
    partition: PartitionPolicy,
    obs: ObsConfig,
}

impl<T> OracleBuilder<T> {
    /// Sets the target engine (mandatory).
    pub fn engine(mut self, engine: VirtualEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Sets the tuning strategy (mandatory). May be a concrete tuner or a
    /// boxed trait object.
    pub fn tuner<U>(self, tuner: U) -> OracleBuilder<U> {
        OracleBuilder {
            engine: self.engine,
            tuner: Some(tuner),
            opts: self.opts,
            cache_capacity: self.cache_capacity,
            shards: self.shards,
            workers: self.workers,
            collector: self.collector,
            partition: self.partition,
            obs: self.obs,
        }
    }

    /// Configures the observability subsystem ([`crate::obs`]): trace
    /// level, span ring capacity, flight-recorder capacity and the
    /// slow-request threshold. The default is [`ObsConfig::default`] —
    /// coarse request spans on, per-shard spans off.
    pub fn observability(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Sets when and how registrations shard into partitioned handles
    /// (default: [`PartitionPolicy::default`] — no automatic sharding;
    /// `register_partitioned` / `register_stream` still work).
    pub fn partition_policy(mut self, policy: PartitionPolicy) -> Self {
        self.partition = policy;
        self
    }

    /// Attaches a measured-kernel [`SampleCollector`]: executions through
    /// the built session/service are timestamped and attributed to the
    /// collector's lock-free telemetry ring, and decision-cache misses
    /// note their feature vectors — the raw material of the
    /// [`crate::adapt`] subsystem. Share the same `Arc` with an
    /// [`crate::adapt::AdaptiveEngine`] to close the retraining loop.
    pub fn collector(mut self, collector: std::sync::Arc<SampleCollector>) -> Self {
        self.collector = Some(collector);
        self
    }

    /// Overrides the conversion policy (default:
    /// `ConvertOptions::default()`).
    pub fn convert_options(mut self, opts: ConvertOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Overrides the capacity shared by the decision cache and the
    /// execution plan cache ([`DEFAULT_CACHE_CAPACITY`] entries by
    /// default; 0 disables caching — executions then rebuild their plan
    /// per call).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the lock-stripe count of the sharded caches (default 16
    /// stripes; minimum 1). More stripes reduce contention between
    /// concurrent clients at the price of a slightly coarser global LRU
    /// order.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Gives the session or service a *private* execution pool with
    /// `workers` threads instead of the process-wide
    /// [`morpheus_parallel::global_pool`] — isolation from other pool
    /// users, and a pinned worker count for benchmarks and tests
    /// (irrelevant on Serial engines, which never execute threaded).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Finishes a single-owner session.
    ///
    /// # Errors
    /// [`OracleError::InvalidConfig`] when the engine or tuner was never
    /// set.
    pub fn build(self) -> Result<Oracle<T>> {
        self.build_service().map(|service| Oracle { service })
    }

    /// Finishes a `Send + Sync` concurrent service — wrap it in an `Arc`
    /// and share it across client threads (see [`crate::serve`]).
    ///
    /// # Errors
    /// [`OracleError::InvalidConfig`] when the engine or tuner was never
    /// set.
    pub fn build_service(self) -> Result<OracleService<T>> {
        let engine = self
            .engine
            .ok_or_else(|| OracleError::InvalidConfig("Oracle::builder(): no engine set".into()))?;
        let tuner =
            self.tuner.ok_or_else(|| OracleError::InvalidConfig("Oracle::builder(): no tuner set".into()))?;
        Ok(OracleService::new(
            engine,
            tuner,
            self.opts,
            self.cache_capacity,
            self.shards,
            self.workers,
            self.collector,
            self.partition,
            self.obs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tune::PlanStatus;
    use crate::tuner::{RunFirstTuner, TuneDecision, TuningCost};
    use morpheus::format::FormatId;
    use morpheus::CooMatrix;
    use morpheus_machine::{systems, Backend, MatrixAnalysis};

    fn tridiag(n: usize) -> DynamicMatrix<f64> {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        for i in 0..n {
            for d in [-1isize, 0, 1] {
                let j = i as isize + d;
                if j >= 0 && (j as usize) < n {
                    rows.push(i);
                    cols.push(j as usize);
                }
            }
        }
        let vals = vec![1.0; rows.len()];
        DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
    }

    fn session() -> Oracle<RunFirstTuner> {
        Oracle::builder()
            .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
            .tuner(RunFirstTuner::new(3))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_engine_and_tuner() {
        assert!(matches!(
            Oracle::builder().tuner(RunFirstTuner::new(1)).build(),
            Err(OracleError::InvalidConfig(_))
        ));
        let no_tuner = Oracle::builder().engine(VirtualEngine::new(systems::a64fx(), Backend::Serial));
        assert!(matches!(no_tuner.build(), Err(OracleError::InvalidConfig(_))));
    }

    #[test]
    fn second_tune_of_identical_structure_hits_the_cache() {
        let mut oracle = session();
        let mut first = tridiag(2000);
        let r1 = oracle.tune(&mut first).unwrap();
        assert!(!r1.cache_hit);
        assert!(r1.cost.total() > 0.0);
        assert_eq!(r1.plan, PlanStatus::Unplanned, "tune-only calls never plan");

        // A *distinct* matrix with the same structure.
        let mut second = tridiag(2000);
        let r2 = oracle.tune(&mut second).unwrap();
        assert!(r2.cache_hit);
        assert!(r2.cost.cache_hit);
        assert_eq!(r2.cost.feature_extraction, 0.0);
        assert_eq!(r2.cost.prediction, 0.0);
        assert_eq!(r2.cost.profiling, 0.0);
        assert_eq!(r2.chosen, r1.chosen);
        assert_eq!(second.format_id(), r1.chosen);

        let stats = oracle.cache_stats();
        // Two entries per tuned structure: the original form plus the
        // post-conversion alias.
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 2));
    }

    #[test]
    fn tune_switches_format_and_preserves_entries() {
        let mut m = tridiag(4000);
        let mut oracle = session();
        let report = oracle.tune(&mut m).unwrap();
        assert_eq!(report.previous, FormatId::Coo);
        assert_eq!(m.format_id(), report.chosen);
        assert_eq!(report.predicted, report.chosen);
        assert_eq!(report.op, Op::Spmv);
        assert_eq!(m.nnz(), 3 * 4000 - 2);
    }

    #[test]
    fn fallback_to_csr_on_nonviable_prediction() {
        /// A tuner that always predicts ELL, even when ELL cannot hold the
        /// matrix within the fill limit.
        struct AlwaysEll;
        impl FormatTuner<f64> for AlwaysEll {
            fn name(&self) -> &'static str {
                "always-ell"
            }
            fn select(
                &self,
                _: &DynamicMatrix<f64>,
                _: &MatrixAnalysis,
                _: &VirtualEngine,
                op: Op,
            ) -> TuneDecision {
                TuneDecision {
                    format: FormatId::Ell,
                    params: morpheus::FormatParams::default(),
                    op,
                    cost: TuningCost::default(),
                }
            }
        }

        // Hypersparse with one long row: ELL width explodes.
        let n = 50_000usize;
        let mut rows: Vec<usize> = (0..500).map(|k| (k * 97) % n).collect();
        let mut cols: Vec<usize> = (0..500).map(|k| (k * 31) % n).collect();
        for k in 0..4000 {
            rows.push(7);
            cols.push((k * 11) % n);
        }
        let vals = vec![1.0; rows.len()];
        let mut m = DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap());

        let mut oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::Serial))
            .tuner(AlwaysEll)
            .build()
            .unwrap();
        let report = oracle.tune(&mut m).unwrap();
        assert_eq!(report.predicted, FormatId::Ell);
        assert_eq!(report.chosen, FormatId::Csr);
        assert_eq!(m.format_id(), FormatId::Csr);
    }

    #[test]
    fn tune_and_execute_preserves_numerics() {
        let mut oracle = session();
        let base = tridiag(600);
        let n = base.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();

        let mut y_ref = vec![0.0; n];
        morpheus::spmv::spmv_serial(&base, &x, &mut y_ref).unwrap();

        let mut tuned = base.clone();
        let mut y = vec![f64::NAN; n];
        let report = oracle.tune_and_spmv(&mut tuned, &x, &mut y).unwrap();
        assert_eq!(tuned.format_id(), report.chosen);
        assert_eq!(report.plan, PlanStatus::Unplanned, "serial sessions execute unplanned");
        assert_eq!(y, y_ref);

        // SpMM with k = 1 equals SpMV.
        let mut tuned2 = base.clone();
        let mut y2 = vec![f64::NAN; n];
        let r2 = oracle.tune_and_spmm(&mut tuned2, &x, &mut y2, 1).unwrap();
        assert_eq!(r2.op, Op::Spmm { k: 1 });
        assert_eq!(y2, y_ref);
    }

    #[test]
    fn openmp_session_executes_threaded_with_identical_numerics() {
        let mut oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(3))
            .build()
            .unwrap();
        let mut m = tridiag(800);
        let x: Vec<f64> = (0..800).map(|i| (i % 11) as f64 - 5.0).collect();
        let mut y = vec![f64::NAN; 800];
        let report = oracle.tune_and_spmv(&mut m, &x, &mut y).unwrap();
        assert_eq!(m.format_id(), report.chosen);
        // The threaded planned backend is bit-identical to serial on the
        // same tuned matrix.
        let mut y_serial = vec![0.0f64; 800];
        morpheus::spmv::spmv_serial(&m, &x, &mut y_serial).unwrap();
        assert_eq!(y, y_serial);
    }

    #[test]
    fn iterative_loop_builds_the_plan_once_and_replays_it() {
        let mut oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(3))
            .build()
            .unwrap();
        let mut m = tridiag(1500);
        let x = vec![1.0f64; 1500];
        let mut y = vec![0.0f64; 1500];

        let first = oracle.tune_and_spmv(&mut m, &x, &mut y).unwrap();
        assert_eq!(first.plan, PlanStatus::Built, "first execution plans the structure");
        for _ in 0..3 {
            let next = oracle.tune_and_spmv(&mut m, &x, &mut y).unwrap();
            assert!(next.cache_hit);
            assert_eq!(next.plan, PlanStatus::Reused, "steady state must replay the plan");
            assert!(next.plan.is_hit());
        }
        // SpMM on the same structure replays the same plan (partitioning
        // is operation-agnostic) even though the SpMM *decision* is new...
        let k = 4usize;
        let xk = vec![1.0f64; 1500 * k];
        let mut yk = vec![0.0f64; 1500 * k];
        let mm = oracle.tune_and_spmm(&mut m, &xk, &mut yk, k).unwrap();
        // ...unless the SpMM tuner picked a different format, in which case
        // a fresh plan is built for that format.
        if !mm.converted {
            assert_eq!(mm.plan, PlanStatus::Reused);
        }
        let stats = oracle.plan_cache_stats();
        assert!(stats.hits >= 3, "plan hits: {stats:?}");
        assert!(stats.len >= 1);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::a64fx(), Backend::Serial))
            .tuner(RunFirstTuner::new(2))
            .cache_capacity(0)
            .build()
            .unwrap();
        for _ in 0..3 {
            let mut m = tridiag(900);
            let r = oracle.tune(&mut m).unwrap();
            assert!(!r.cache_hit);
            assert!(r.cost.total() > 0.0);
        }
        assert_eq!(oracle.cache_stats(), CacheStats { capacity: 0, ..Default::default() });
    }

    #[test]
    fn disabled_cache_still_executes_threaded_with_fresh_plans() {
        let mut oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(2))
            .cache_capacity(0)
            .build()
            .unwrap();
        let mut m = tridiag(700);
        let x = vec![2.0f64; 700];
        let mut y = vec![0.0f64; 700];
        for _ in 0..2 {
            let r = oracle.tune_and_spmv(&mut m, &x, &mut y).unwrap();
            assert_eq!(r.plan, PlanStatus::Built, "no cache: every call rebuilds its plan");
        }
        let mut y_ref = vec![0.0f64; 700];
        morpheus::spmv::spmv_serial(&m, &x, &mut y_ref).unwrap();
        assert_eq!(y, y_ref);
    }

    #[test]
    fn clear_cache_forces_fresh_decision_and_plan() {
        let mut oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(3))
            .build()
            .unwrap();
        let mut a = tridiag(1200);
        let x = vec![1.0f64; 1200];
        let mut y = vec![0.0f64; 1200];
        oracle.tune_and_spmv(&mut a, &x, &mut y).unwrap();
        oracle.clear_cache();
        let r = oracle.tune_and_spmv(&mut a, &x, &mut y).unwrap();
        assert!(!r.cache_hit);
        assert_eq!(r.plan, PlanStatus::Built, "cleared plan cache must rebuild");
        assert_eq!(oracle.cache_stats().misses, 2);
    }

    #[test]
    fn accessors_expose_configuration() {
        let opts = ConvertOptions { max_fill: 3.5, ..Default::default() };
        let oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(7))
            .convert_options(opts)
            .cache_capacity(16)
            .build()
            .unwrap();
        assert_eq!(oracle.engine().label(), "Cirrus/OpenMP");
        assert_eq!(oracle.tuner().reps(), 7);
        assert_eq!(oracle.convert_options().max_fill, 3.5);
        assert_eq!(oracle.cache_stats().capacity, 16);
        assert_eq!(oracle.plan_cache_stats().capacity, 16);
    }

    #[test]
    fn into_service_keeps_the_warm_caches() {
        let mut oracle = Oracle::builder()
            .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
            .tuner(RunFirstTuner::new(2))
            .build()
            .unwrap();
        let mut m = tridiag(1000);
        let chosen = oracle.tune(&mut m).unwrap().chosen;
        let service = oracle.into_service();
        let mut again = tridiag(1000);
        let r = service.tune(&mut again).unwrap();
        assert!(r.cache_hit, "promotion must not drop cached decisions");
        assert_eq!(r.chosen, chosen);
    }
}
