//! Serving-layer benchmark with a machine-readable snapshot.
//!
//! Measures the claims the `OracleService` layer makes, on a mixed
//! powerlaw + banded corpus:
//!
//! * **cold**: first-touch `tune_and_spmv` on a fresh service — feature
//!   extraction, prediction, conversion and planning all paid in-request —
//!   plus the one-off cost of `register` per matrix.
//! * **warm per-call**: `tune_and_spmv` once the caches are hot. Every
//!   request still pays the structure hash and the cache probes.
//! * **warm registered**: `service.spmv(&handle, ...)` — the zero-lock,
//!   zero-allocation steady state the amortisation argument (§VII-E) is
//!   about.
//! * **warm ingress** / **ingress coalesce** (with `--ingress`): the same
//!   traffic through the async batched `Ingress` front door under a
//!   latency SLO — `warm_ingress` replays the registered-handle offset
//!   workload one request at a time, `ingress_coalesce` fires same-handle
//!   bursts, the coalescer's best case. These modes report SLO columns:
//!   the fraction of requests under the SLO, whether the p99 itself is,
//!   the coalescing ratio and how many requests were shed or refused.
//!
//! The warm modes run with 1, 2 and 4 client threads hammering one shared
//! service, reporting requests/sec and p50/p99 request latency per mode and
//! client count. Every client times its own requests on its own monotonic
//! clock; besides the pooled percentiles the snapshot reports
//! `max_client_p99_us` — the worst per-client p99, which pooling across
//! clients systematically understates under contention. Results go to
//! stdout as a table and to `BENCH_serve.json` (override with `--out
//! PATH`). `--smoke` shrinks sizes and iteration counts for CI. The
//! service's worker count defaults to the host parallelism; override with
//! `MORPHEUS_BENCH_THREADS` (recorded in the snapshot).

use morpheus::{CooMatrix, DynamicMatrix};
use morpheus_bench::report::{json_escape, percentile};
use morpheus_corpus::gen::banded::{multi_diagonal, tridiagonal};
use morpheus_corpus::gen::powerlaw::{hub_rows, zipf_rows};
use morpheus_machine::{systems, Backend, VirtualEngine};
use morpheus_oracle::{
    HistSummary, Ingress, IngressConfig, IngressError, MatrixHandle, MetricsSnapshot, Oracle, OracleService,
    RunFirstTuner, Ticket,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Case {
    name: &'static str,
    family: &'static str,
    matrix: CooMatrix<f64>,
}

fn corpus(smoke: bool) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(23);
    let scale = |full: usize, small: usize| if smoke { small } else { full };
    vec![
        Case {
            name: "zipf-mid",
            family: "powerlaw",
            matrix: zipf_rows(scale(24_000, 1_500), scale(120_000, 8_000), 1.0, &mut rng),
        },
        Case {
            name: "hub",
            family: "powerlaw",
            matrix: hub_rows(scale(16_000, 1_200), 2, scale(6_000, 500), scale(80_000, 6_000), &mut rng),
        },
        Case { name: "tridiagonal", family: "banded", matrix: tridiagonal(scale(80_000, 3_000)) },
        Case {
            name: "multi-diagonal",
            family: "banded",
            matrix: multi_diagonal(scale(40_000, 2_000), 7, &mut rng),
        },
    ]
}

fn build_service(workers: usize) -> OracleService<RunFirstTuner> {
    Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
        .tuner(RunFirstTuner::new(1))
        .workers(workers)
        .build_service()
        .expect("engine and tuner set")
}

/// SLO-specific columns reported by the ingress modes.
struct SloColumns {
    slo_us: f64,
    under_slo_ratio: f64,
    p99_under_slo: bool,
    coalescing_ratio: f64,
    shed: u64,
}

/// Per-stage latency breakdown of an ingress mode, computed from the
/// service registry's `ingress.*` histograms as a before/after delta
/// around the mode's run (the service is shared across modes, so
/// absolute summaries would mix traffic).
struct StageBreakdown {
    queue_wait_p50_us: f64,
    queue_wait_p99_us: f64,
    coalesce_p99_us: f64,
    exec_p50_us: f64,
    exec_p99_us: f64,
    scatter_p99_us: f64,
    coalesce_declines: u64,
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

impl StageBreakdown {
    fn delta(before: &MetricsSnapshot, after: &MetricsSnapshot) -> StageBreakdown {
        let h = |name: &str| -> HistSummary { after.hist(name).delta_since(&before.hist(name)) };
        let queue_wait = h("ingress.queue_wait_ns");
        let coalesce = h("ingress.coalesce_ns");
        let exec = h("ingress.exec_ns");
        let scatter = h("ingress.scatter_ns");
        StageBreakdown {
            queue_wait_p50_us: us(queue_wait.p50_ns()),
            queue_wait_p99_us: us(queue_wait.p99_ns()),
            coalesce_p99_us: us(coalesce.p99_ns()),
            exec_p50_us: us(exec.p50_ns()),
            exec_p99_us: us(exec.p99_ns()),
            scatter_p99_us: us(scatter.p99_ns()),
            coalesce_declines: after
                .counter("ingress.coalesce_declined")
                .saturating_sub(before.counter("ingress.coalesce_declined")),
        }
    }
}

/// One measured mode: per-request latencies from every client.
struct ModeResult {
    mode: &'static str,
    clients: usize,
    requests: u64,
    wall_s: f64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    /// Worst per-client p99: each client's latencies percentiled on their
    /// own, then the maximum taken — the tail a real client actually sees,
    /// which the pooled p99 understates under contention.
    max_client_p99_us: f64,
    slo: Option<SloColumns>,
    stage: Option<StageBreakdown>,
}

fn summarize(mode: &'static str, clients: usize, wall_s: f64, per_client: &[Vec<f64>]) -> ModeResult {
    let pooled: Vec<f64> = per_client.iter().flatten().copied().collect();
    let max_client_p99_us = per_client
        .iter()
        .filter(|lat| !lat.is_empty())
        .map(|lat| percentile(lat, 0.99))
        .fold(0.0f64, f64::max);
    let requests = pooled.len() as u64;
    ModeResult {
        mode,
        clients,
        requests,
        wall_s,
        rps: requests as f64 / wall_s,
        p50_us: percentile(&pooled, 0.50),
        p99_us: percentile(&pooled, 0.99),
        max_client_p99_us,
        slo: None,
        stage: None,
    }
}

/// Drives `clients` threads, each performing `iters` round-robin requests
/// over the corpus through `request(matrix_index, client) -> latency_us`.
/// Latencies stay per-client so tails can be percentiled per clock.
fn drive_clients(
    clients: usize,
    iters: usize,
    n_matrices: usize,
    request: impl Fn(usize, usize) -> f64 + Sync,
) -> (f64, Vec<Vec<f64>>) {
    let t0 = Instant::now();
    let per_client: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let request = &request;
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(iters);
                    for i in 0..iters {
                        lat.push(request((i + c) % n_matrices, c));
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    (t0.elapsed().as_secs_f64(), per_client)
}

struct IngressOutcome {
    wall_s: f64,
    per_client: Vec<Vec<f64>>,
    shed: u64,
    coalescing_ratio: f64,
    stage: StageBreakdown,
}

/// Client-fleet shape for one ingress mode.
struct IngressDrive {
    clients: usize,
    iters: usize,
    burst: usize,
    slo: Duration,
}

/// Drives the same client fleet through an [`Ingress`] front door: each
/// client submits bursts of `burst` requests (matrix index from
/// `pick(request_index, client)`), then waits the burst out, timing every
/// request from submission to ticket resolution on its own clock.
/// Backpressured requests produce no latency sample; they are counted in
/// the `shed` column instead.
fn drive_ingress(
    service: &Arc<OracleService<RunFirstTuner>>,
    handles: &[MatrixHandle<f64>],
    inputs: &[Vec<f64>],
    drive: &IngressDrive,
    pick: impl Fn(usize, usize) -> usize + Sync,
) -> IngressOutcome {
    let &IngressDrive { clients, iters, burst, slo } = drive;
    let cfg =
        IngressConfig { default_slo: Some(slo), tenant_quota: burst.max(1) * 4, ..IngressConfig::default() };
    let ingress = Ingress::start(Arc::clone(service), cfg);
    let metrics_before = service.obs_snapshot().metrics;
    let t0 = Instant::now();
    let per_client: Vec<Vec<f64>> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..clients)
            .map(|c| {
                let (ingress, pick) = (&ingress, &pick);
                s.spawn(move || {
                    let tenant = format!("client-{c}");
                    let mut lat = Vec::with_capacity(iters);
                    let mut i = 0usize;
                    while i < iters {
                        let b = burst.max(1).min(iters - i);
                        let mut pending: Vec<(Instant, Ticket<f64>)> = Vec::with_capacity(b);
                        for j in 0..b {
                            let mi = pick(i + j, c);
                            let t = Instant::now();
                            match ingress.submit(&tenant, &handles[mi], inputs[mi].clone()) {
                                Ok(ticket) => pending.push((t, ticket)),
                                Err(IngressError::Backpressure(_)) => {} // counted via stats
                                Err(e) => panic!("ingress submit: {e}"),
                            }
                        }
                        for (t, ticket) in pending {
                            match ticket.wait() {
                                Ok(y) => {
                                    std::hint::black_box(&y);
                                    lat.push(t.elapsed().as_secs_f64() * 1e6);
                                }
                                Err(IngressError::Backpressure(_)) => {} // counted via stats
                                Err(e) => panic!("ingress wait: {e}"),
                            }
                        }
                        i += b;
                    }
                    lat
                })
            })
            .collect();
        joins.into_iter().map(|h| h.join().expect("ingress client")).collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = ingress.stats();
    let metrics_after = service.obs_snapshot().metrics;
    IngressOutcome {
        wall_s,
        per_client,
        shed: stats.shed_deadline + stats.shed_shutdown + stats.rejected_queue_full + stats.rejected_quota,
        coalescing_ratio: stats.coalescing_ratio(),
        stage: StageBreakdown::delta(&metrics_before, &metrics_after),
    }
}

fn with_slo(mut r: ModeResult, slo: Duration, outcome: IngressOutcome) -> ModeResult {
    let slo_us = slo.as_secs_f64() * 1e6;
    let total: usize = outcome.per_client.iter().map(Vec::len).sum();
    let under: usize = outcome.per_client.iter().flatten().filter(|&&lat_us| lat_us <= slo_us).count();
    r.slo = Some(SloColumns {
        slo_us,
        under_slo_ratio: if total == 0 { 0.0 } else { under as f64 / total as f64 },
        p99_under_slo: r.p99_us <= slo_us,
        coalescing_ratio: outcome.coalescing_ratio,
        shed: outcome.shed,
    });
    r.stage = Some(outcome.stage);
    r
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let ingress_modes = args.iter().any(|a| a == "--ingress");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let iters_override = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    let warm_iters = iters_override.unwrap_or(if smoke { 60 } else { 400 });
    let workers = std::env::var("MORPHEUS_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    let client_counts = [1usize, 2, 4];
    let slo = Duration::from_millis(25);
    let coalesce_burst = 4usize;

    let cases = corpus(smoke);
    let matrices: Vec<DynamicMatrix<f64>> =
        cases.iter().map(|c| DynamicMatrix::from(c.matrix.clone())).collect();
    let inputs: Vec<Vec<f64>> =
        matrices.iter().map(|m| (0..m.ncols()).map(|i| 1.0 + (i % 13) as f64 * 0.25).collect()).collect();

    // ---- cold: fresh service, every request is a first touch ----
    let mut results: Vec<ModeResult> = Vec::new();
    {
        let service = build_service(workers);
        let mut lat = Vec::new();
        let t0 = Instant::now();
        for (m, x) in matrices.iter().zip(&inputs) {
            let mut fresh = m.clone();
            let mut y = vec![0.0f64; fresh.nrows()];
            let t = Instant::now();
            service.tune_and_spmv(&mut fresh, x, &mut y).expect("tune");
            lat.push(t.elapsed().as_secs_f64() * 1e6);
        }
        results.push(summarize("cold_percall", 1, t0.elapsed().as_secs_f64(), &[lat]));
    }
    let register_cost_us: Vec<(String, f64)> = {
        let service = build_service(workers);
        matrices
            .iter()
            .zip(&cases)
            .map(|(m, case)| {
                let t = Instant::now();
                let _h = service.register(m.clone()).expect("register");
                (case.name.to_string(), t.elapsed().as_secs_f64() * 1e6)
            })
            .collect()
    };

    // ---- warm modes: one shared service per client count ----
    for &clients in &client_counts {
        let service = Arc::new(build_service(workers));
        // Handles registered once; per-call mode pre-converts its private
        // matrices so the steady state never pays conversions.
        let handles: Vec<MatrixHandle<f64>> =
            matrices.iter().map(|m| service.register(m.clone()).expect("register")).collect();
        let realized: Vec<DynamicMatrix<f64>> = handles.iter().map(|h| h.matrix().clone()).collect();

        // Warm per-call tune_and_spmv: each client owns matrix clones (the
        // service mutates them in place on conversion; here they are
        // already realized, so calls are pure cache hits).
        let (wall, lat) = {
            let per_client_matrices: Vec<Vec<DynamicMatrix<f64>>> =
                (0..clients).map(|_| realized.clone()).collect();
            let per_client_cells: Vec<_> = per_client_matrices
                .into_iter()
                .map(|ms| {
                    std::sync::Mutex::new(
                        ms.into_iter()
                            .map(|m| {
                                let y = vec![0.0f64; m.nrows()];
                                (m, y)
                            })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            let service = Arc::clone(&service);
            drive_clients(clients, warm_iters, matrices.len(), |mi, c| {
                let mut guard = per_client_cells[c].lock().expect("client-private cell");
                let (m, y) = &mut guard[mi];
                let x = &inputs[mi];
                let t = Instant::now();
                service.tune_and_spmv(m, x, y).expect("warm tune");
                t.elapsed().as_secs_f64() * 1e6
            })
        };
        results.push(summarize("warm_percall", clients, wall, &lat));

        // Warm registered: zero-lock handle executions into per-client
        // output buffers.
        let (wall, lat) = {
            let per_client_outs: Vec<std::sync::Mutex<Vec<Vec<f64>>>> = (0..clients)
                .map(|_| {
                    std::sync::Mutex::new(
                        matrices.iter().map(|m| vec![0.0f64; m.nrows()]).collect::<Vec<_>>(),
                    )
                })
                .collect();
            let service = Arc::clone(&service);
            let handles = &handles;
            drive_clients(clients, warm_iters, matrices.len(), |mi, c| {
                let mut guard = per_client_outs[c].lock().expect("client-private cell");
                let y = &mut guard[mi];
                let x = &inputs[mi];
                let t = Instant::now();
                service.spmv(&handles[mi], x, y).expect("handle spmv");
                t.elapsed().as_secs_f64() * 1e6
            })
        };
        results.push(summarize("warm_registered", clients, wall, &lat));

        if ingress_modes {
            // Warm ingress: the registered offset workload, one request at
            // a time per client, through the front door — the apples-to-
            // apples p99 comparison against warm_registered. Coalescing
            // here only happens when clients collide on a handle.
            let n = matrices.len();
            let drive = IngressDrive { clients, iters: warm_iters, burst: 1, slo };
            let outcome = drive_ingress(&service, &handles, &inputs, &drive, |i, c| (i + c) % n);
            results.push(with_slo(
                summarize("warm_ingress", clients, outcome.wall_s, &outcome.per_client),
                slo,
                outcome,
            ));

            // Ingress coalesce: every request targets the same handle and
            // clients submit in bursts — the traffic shape the coalescer
            // converts into single planned SpMM executions.
            let drive = IngressDrive { clients, iters: warm_iters, burst: coalesce_burst, slo };
            let outcome = drive_ingress(&service, &handles, &inputs, &drive, |_, _| 0);
            results.push(with_slo(
                summarize("ingress_coalesce", clients, outcome.wall_s, &outcome.per_client),
                slo,
                outcome,
            ));
        }
    }

    // ---- report ----
    println!(
        "serving benchmark: {workers} worker(s), {} matrices, {warm_iters} warm iters/client",
        cases.len()
    );
    println!();
    println!("register cost (paid once per matrix):");
    for (name, us) in &register_cost_us {
        println!("  {name:<16} {us:>10.1} us");
    }
    println!();
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "mode", "clients", "requests", "wall_s", "req/s", "p50_us", "p99_us", "maxcl_p99"
    );
    for r in &results {
        println!(
            "{:<16} {:>8} {:>10} {:>10.4} {:>12.0} {:>10.1} {:>10.1} {:>12.1}",
            r.mode, r.clients, r.requests, r.wall_s, r.rps, r.p50_us, r.p99_us, r.max_client_p99_us
        );
    }
    if results.iter().any(|r| r.slo.is_some()) {
        println!();
        println!(
            "{:<16} {:>8} {:>10} {:>12} {:>12} {:>12} {:>8}",
            "ingress mode", "clients", "slo_ms", "under_slo", "p99<slo", "coal_ratio", "shed"
        );
        for r in &results {
            if let Some(slo) = &r.slo {
                println!(
                    "{:<16} {:>8} {:>10.1} {:>11.1}% {:>12} {:>11.1}% {:>8}",
                    r.mode,
                    r.clients,
                    slo.slo_us / 1e3,
                    slo.under_slo_ratio * 100.0,
                    if slo.p99_under_slo { "yes" } else { "NO" },
                    slo.coalescing_ratio * 100.0,
                    slo.shed
                );
            }
        }
        println!();
        println!(
            "{:<16} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "stage breakdown",
            "clients",
            "qwait_p50",
            "qwait_p99",
            "coal_p99",
            "exec_p50",
            "exec_p99",
            "scat_p99",
            "declines"
        );
        for r in &results {
            if let Some(st) = &r.stage {
                println!(
                    "{:<16} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10}",
                    r.mode,
                    r.clients,
                    st.queue_wait_p50_us,
                    st.queue_wait_p99_us,
                    st.coalesce_p99_us,
                    st.exec_p50_us,
                    st.exec_p99_us,
                    st.scatter_p99_us,
                    st.coalesce_declines
                );
            }
        }
    }
    println!();
    let speedup_at = |clients: usize| -> Option<f64> {
        let percall = results.iter().find(|r| r.mode == "warm_percall" && r.clients == clients)?;
        let reg = results.iter().find(|r| r.mode == "warm_registered" && r.clients == clients)?;
        Some(reg.rps / percall.rps)
    };
    for &c in &client_counts {
        if let Some(s) = speedup_at(c) {
            println!("warm registered vs per-call throughput at {c} client(s): {s:.2}x");
        }
    }
    if ingress_modes {
        // Same offset workload on both sides: the only difference is the
        // front door.
        for &c in &client_counts {
            let reg = results.iter().find(|r| r.mode == "warm_registered" && r.clients == c);
            let ing = results.iter().find(|r| r.mode == "warm_ingress" && r.clients == c);
            if let (Some(reg), Some(ing)) = (reg, ing) {
                println!(
                    "warm_ingress vs warm_registered p99 at {c} client(s): {:.1} vs {:.1} us",
                    ing.p99_us, reg.p99_us
                );
            }
        }
    }

    // ---- snapshot ----
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_serve/v3\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"ingress\": {ingress_modes},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"warm_iters_per_client\": {warm_iters},\n"));
    json.push_str(&format!("  \"slo_us\": {:.1},\n", slo.as_secs_f64() * 1e6));
    json.push_str(&format!(
        "  \"corpus\": [{}],\n",
        cases
            .iter()
            .map(|c| format!("{{\"name\": \"{}\", \"family\": \"{}\"}}", json_escape(c.name), c.family))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"register_cost_us\": {\n");
    for (i, (name, us)) in register_cost_us.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {:.1}{}\n",
            json_escape(name),
            us,
            if i + 1 < register_cost_us.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    for &c in &client_counts {
        if let Some(s) = speedup_at(c) {
            json.push_str(&format!("  \"warm_registered_vs_percall_rps_{c}c\": {s:.4},\n"));
        }
    }
    json.push_str("  \"modes\": [\n");
    for (i, r) in results.iter().enumerate() {
        let mut entry = format!(
            "    {{\"mode\": \"{}\", \"clients\": {}, \"requests\": {}, \"wall_s\": {:.6}, \
             \"rps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"max_client_p99_us\": {:.2}",
            r.mode, r.clients, r.requests, r.wall_s, r.rps, r.p50_us, r.p99_us, r.max_client_p99_us
        );
        if let Some(slo) = &r.slo {
            entry.push_str(&format!(
                ", \"slo_us\": {:.1}, \"under_slo_ratio\": {:.4}, \"p99_under_slo\": {}, \
                 \"coalescing_ratio\": {:.4}, \"shed\": {}",
                slo.slo_us, slo.under_slo_ratio, slo.p99_under_slo, slo.coalescing_ratio, slo.shed
            ));
        }
        if let Some(st) = &r.stage {
            entry.push_str(&format!(
                ", \"stage\": {{\"queue_wait_p50_us\": {:.2}, \"queue_wait_p99_us\": {:.2}, \
                 \"coalesce_p99_us\": {:.2}, \"exec_p50_us\": {:.2}, \"exec_p99_us\": {:.2}, \
                 \"scatter_p99_us\": {:.2}, \"coalesce_declines\": {}}}",
                st.queue_wait_p50_us,
                st.queue_wait_p99_us,
                st.coalesce_p99_us,
                st.exec_p50_us,
                st.exec_p99_us,
                st.scatter_p99_us,
                st.coalesce_declines
            ));
        }
        entry.push_str(&format!("}}{}\n", if i + 1 < results.len() { "," } else { "" }));
        json.push_str(&entry);
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("snapshot written to {out_path}");
}
