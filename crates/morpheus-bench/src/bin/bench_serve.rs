//! Serving-layer benchmark with a machine-readable snapshot.
//!
//! Measures the claims the `OracleService` layer makes, on a mixed
//! powerlaw + banded corpus:
//!
//! * **cold**: first-touch `tune_and_spmv` on a fresh service — feature
//!   extraction, prediction, conversion and planning all paid in-request —
//!   plus the one-off cost of `register` per matrix.
//! * **warm per-call**: `tune_and_spmv` once the caches are hot. Every
//!   request still pays the structure hash and the cache probes.
//! * **warm registered**: `service.spmv(&handle, ...)` — the zero-lock,
//!   zero-allocation steady state the amortisation argument (§VII-E) is
//!   about.
//!
//! The warm modes run with 1, 2 and 4 client threads hammering one shared
//! service, reporting requests/sec and p50/p99 request latency per mode and
//! client count. Results go to stdout as a table and to `BENCH_serve.json`
//! (override with `--out PATH`). `--smoke` shrinks sizes and iteration
//! counts for CI. The service's worker count defaults to the host
//! parallelism; override with `MORPHEUS_BENCH_THREADS` (recorded in the
//! snapshot).

use morpheus::{CooMatrix, DynamicMatrix};
use morpheus_bench::report::{json_escape, percentile};
use morpheus_corpus::gen::banded::{multi_diagonal, tridiagonal};
use morpheus_corpus::gen::powerlaw::{hub_rows, zipf_rows};
use morpheus_machine::{systems, Backend, VirtualEngine};
use morpheus_oracle::{MatrixHandle, Oracle, OracleService, RunFirstTuner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

struct Case {
    name: &'static str,
    family: &'static str,
    matrix: CooMatrix<f64>,
}

fn corpus(smoke: bool) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(23);
    let scale = |full: usize, small: usize| if smoke { small } else { full };
    vec![
        Case {
            name: "zipf-mid",
            family: "powerlaw",
            matrix: zipf_rows(scale(24_000, 1_500), scale(120_000, 8_000), 1.0, &mut rng),
        },
        Case {
            name: "hub",
            family: "powerlaw",
            matrix: hub_rows(scale(16_000, 1_200), 2, scale(6_000, 500), scale(80_000, 6_000), &mut rng),
        },
        Case { name: "tridiagonal", family: "banded", matrix: tridiagonal(scale(80_000, 3_000)) },
        Case {
            name: "multi-diagonal",
            family: "banded",
            matrix: multi_diagonal(scale(40_000, 2_000), 7, &mut rng),
        },
    ]
}

fn build_service(workers: usize) -> OracleService<RunFirstTuner> {
    Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
        .tuner(RunFirstTuner::new(1))
        .workers(workers)
        .build_service()
        .expect("engine and tuner set")
}

/// One measured mode: per-request latencies from every client, merged.
struct ModeResult {
    mode: &'static str,
    clients: usize,
    requests: u64,
    wall_s: f64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn summarize(mode: &'static str, clients: usize, wall_s: f64, latencies_us: Vec<f64>) -> ModeResult {
    let requests = latencies_us.len() as u64;
    ModeResult {
        mode,
        clients,
        requests,
        wall_s,
        rps: requests as f64 / wall_s,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
    }
}

/// Drives `clients` threads, each performing `iters` round-robin requests
/// over the corpus through `request(matrix_index, client) -> latency_us`.
fn drive_clients(
    clients: usize,
    iters: usize,
    n_matrices: usize,
    request: impl Fn(usize, usize) -> f64 + Sync,
) -> (f64, Vec<f64>) {
    let t0 = Instant::now();
    let per_client: Vec<Vec<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let request = &request;
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(iters);
                    for i in 0..iters {
                        lat.push(request((i + c) % n_matrices, c));
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    (t0.elapsed().as_secs_f64(), per_client.into_iter().flatten().collect())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let iters_override = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    let warm_iters = iters_override.unwrap_or(if smoke { 60 } else { 400 });
    let workers = std::env::var("MORPHEUS_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    let client_counts = [1usize, 2, 4];

    let cases = corpus(smoke);
    let matrices: Vec<DynamicMatrix<f64>> =
        cases.iter().map(|c| DynamicMatrix::from(c.matrix.clone())).collect();
    let inputs: Vec<Vec<f64>> =
        matrices.iter().map(|m| (0..m.ncols()).map(|i| 1.0 + (i % 13) as f64 * 0.25).collect()).collect();

    // ---- cold: fresh service, every request is a first touch ----
    let mut results: Vec<ModeResult> = Vec::new();
    {
        let service = build_service(workers);
        let mut lat = Vec::new();
        let t0 = Instant::now();
        for (m, x) in matrices.iter().zip(&inputs) {
            let mut fresh = m.clone();
            let mut y = vec![0.0f64; fresh.nrows()];
            let t = Instant::now();
            service.tune_and_spmv(&mut fresh, x, &mut y).expect("tune");
            lat.push(t.elapsed().as_secs_f64() * 1e6);
        }
        results.push(summarize("cold_percall", 1, t0.elapsed().as_secs_f64(), lat));
    }
    let register_cost_us: Vec<(String, f64)> = {
        let service = build_service(workers);
        matrices
            .iter()
            .zip(&cases)
            .map(|(m, case)| {
                let t = Instant::now();
                let _h = service.register(m.clone()).expect("register");
                (case.name.to_string(), t.elapsed().as_secs_f64() * 1e6)
            })
            .collect()
    };

    // ---- warm modes: one shared service per client count ----
    for &clients in &client_counts {
        let service = Arc::new(build_service(workers));
        // Handles registered once; per-call mode pre-converts its private
        // matrices so the steady state never pays conversions.
        let handles: Vec<MatrixHandle<f64>> =
            matrices.iter().map(|m| service.register(m.clone()).expect("register")).collect();
        let realized: Vec<DynamicMatrix<f64>> = handles.iter().map(|h| h.matrix().clone()).collect();

        // Warm per-call tune_and_spmv: each client owns matrix clones (the
        // service mutates them in place on conversion; here they are
        // already realized, so calls are pure cache hits).
        let (wall, lat) = {
            let per_client_matrices: Vec<Vec<DynamicMatrix<f64>>> =
                (0..clients).map(|_| realized.clone()).collect();
            let per_client_cells: Vec<_> = per_client_matrices
                .into_iter()
                .map(|ms| {
                    std::sync::Mutex::new(
                        ms.into_iter()
                            .map(|m| {
                                let y = vec![0.0f64; m.nrows()];
                                (m, y)
                            })
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            let service = Arc::clone(&service);
            drive_clients(clients, warm_iters, matrices.len(), |mi, c| {
                let mut guard = per_client_cells[c].lock().expect("client-private cell");
                let (m, y) = &mut guard[mi];
                let x = &inputs[mi];
                let t = Instant::now();
                service.tune_and_spmv(m, x, y).expect("warm tune");
                t.elapsed().as_secs_f64() * 1e6
            })
        };
        results.push(summarize("warm_percall", clients, wall, lat));

        // Warm registered: zero-lock handle executions into per-client
        // output buffers.
        let (wall, lat) = {
            let per_client_outs: Vec<std::sync::Mutex<Vec<Vec<f64>>>> = (0..clients)
                .map(|_| {
                    std::sync::Mutex::new(
                        matrices.iter().map(|m| vec![0.0f64; m.nrows()]).collect::<Vec<_>>(),
                    )
                })
                .collect();
            let service = Arc::clone(&service);
            let handles = &handles;
            drive_clients(clients, warm_iters, matrices.len(), |mi, c| {
                let mut guard = per_client_outs[c].lock().expect("client-private cell");
                let y = &mut guard[mi];
                let x = &inputs[mi];
                let t = Instant::now();
                service.spmv(&handles[mi], x, y).expect("handle spmv");
                t.elapsed().as_secs_f64() * 1e6
            })
        };
        results.push(summarize("warm_registered", clients, wall, lat));
    }

    // ---- report ----
    println!(
        "serving benchmark: {workers} worker(s), {} matrices, {warm_iters} warm iters/client",
        cases.len()
    );
    println!();
    println!("register cost (paid once per matrix):");
    for (name, us) in &register_cost_us {
        println!("  {name:<16} {us:>10.1} us");
    }
    println!();
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "mode", "clients", "requests", "wall_s", "req/s", "p50_us", "p99_us"
    );
    for r in &results {
        println!(
            "{:<16} {:>8} {:>10} {:>10.4} {:>12.0} {:>10.1} {:>10.1}",
            r.mode, r.clients, r.requests, r.wall_s, r.rps, r.p50_us, r.p99_us
        );
    }
    println!();
    let speedup_at = |clients: usize| -> Option<f64> {
        let percall = results.iter().find(|r| r.mode == "warm_percall" && r.clients == clients)?;
        let reg = results.iter().find(|r| r.mode == "warm_registered" && r.clients == clients)?;
        Some(reg.rps / percall.rps)
    };
    for &c in &client_counts {
        if let Some(s) = speedup_at(c) {
            println!("warm registered vs per-call throughput at {c} client(s): {s:.2}x");
        }
    }

    // ---- snapshot ----
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_serve/v1\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"warm_iters_per_client\": {warm_iters},\n"));
    json.push_str(&format!(
        "  \"corpus\": [{}],\n",
        cases
            .iter()
            .map(|c| format!("{{\"name\": \"{}\", \"family\": \"{}\"}}", json_escape(c.name), c.family))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"register_cost_us\": {\n");
    for (i, (name, us)) in register_cost_us.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {:.1}{}\n",
            json_escape(name),
            us,
            if i + 1 < register_cost_us.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    for &c in &client_counts {
        if let Some(s) = speedup_at(c) {
            json.push_str(&format!("  \"warm_registered_vs_percall_rps_{c}c\": {s:.4},\n"));
        }
    }
    json.push_str("  \"modes\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"clients\": {}, \"requests\": {}, \"wall_s\": {:.6}, \
             \"rps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}}}{}\n",
            r.mode,
            r.clients,
            r.requests,
            r.wall_s,
            r.rps,
            r.p50_us,
            r.p99_us,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("snapshot written to {out_path}");
}
