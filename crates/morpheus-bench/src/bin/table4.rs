//! Table IV: runtime cost of the auto-tuner, in CSR-SpMV equivalents
//! (§VII-E).
//!
//! For every test-set matrix: `(T_FE + T_PRED) / T_CSR` — how many CSR SpMV
//! iterations the tuning stage costs. The paper reports means of 2-64
//! across pairs, Q3 below 100 everywhere, and notes that GPU backends pay
//! only a few repetitions while OpenMP pays the most.

use morpheus_bench::report::{sample_stats, Table};
use morpheus_bench::{cache_dir_from_env, corpus_spec_from_env, pipeline};
use morpheus_machine::VirtualEngine;
use morpheus_oracle::FeatureVector;

fn main() {
    let spec = corpus_spec_from_env();
    let cache = cache_dir_from_env();
    let pc = pipeline::profile_corpus_cached(&spec, &cache);

    println!("== Table IV: auto-tuner cost, in equivalent CSR SpMV operations ==");
    println!("cost = (T_FE + T_PRED) / T_CSR, per test-set matrix\n");

    let mut table = Table::new(&["system/backend", "mean", "std", "min", "q1", "q2", "q3", "max"]);
    for pi in 0..pc.pairs.len() {
        let tuned = pipeline::tuned_forest_cached(&pc, pi, &spec, &cache);
        let engine = VirtualEngine::for_pair(&pc.pairs[pi]);
        let mut costs = Vec::new();
        for e in pc.split(true) {
            let t_csr = e.profiles[pi].csr_time();
            let t_fe = e.fe_times[pi];
            let fv = FeatureVector(e.features);
            let nodes = tuned.model.decision_path_len(fv.as_slice());
            let t_pred = engine.prediction_time(nodes);
            costs.push((t_fe + t_pred) / t_csr);
        }
        let s = sample_stats(&costs);
        table.row(vec![
            pc.pairs[pi].label(),
            format!("{:.0}", s.mean),
            format!("{:.0}", s.std),
            format!("{:.0}", s.min),
            format!("{:.0}", s.q1),
            format!("{:.0}", s.q2),
            format!("{:.0}", s.q3),
            format!("{:.0}", s.max),
        ]);
    }
    println!("{}", table.render());
    println!("paper reference: means 2-64, Q3 <= 100 for at least 75% of matrices,");
    println!("OpenMP pairs the most expensive, GPU pairs only a few repetitions.");
}
