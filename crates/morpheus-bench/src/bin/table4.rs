//! Table IV: runtime cost of the auto-tuner, in CSR-SpMV equivalents
//! (§VII-E).
//!
//! For every test-set matrix: `(T_FE + T_PRED) / T_CSR` — how many CSR SpMV
//! iterations the tuning stage costs. The paper reports means of 2-64
//! across pairs, Q3 below 100 everywhere, and notes that GPU backends pay
//! only a few repetitions while OpenMP pays the most.
//!
//! Costs come straight from [`morpheus_oracle::Oracle`] reports (each test
//! matrix regenerated in CSR and tuned through the facade). A second tuning
//! sweep over the same stream shows the session's decision cache driving
//! the amortised cost to zero — the production picture for repeated
//! traffic.

use morpheus_bench::report::{sample_stats, Table};
use morpheus_bench::{cache_dir_from_env, corpus_spec_from_env, pipeline};

fn main() {
    let spec = corpus_spec_from_env();
    let cache = cache_dir_from_env();
    let pc = pipeline::profile_corpus_cached(&spec, &cache);

    println!("== Table IV: auto-tuner cost, in equivalent CSR SpMV operations ==");
    println!("cost = (T_FE + T_PRED) / T_CSR, per test-set matrix\n");

    let mut table =
        Table::new(&["system/backend", "mean", "std", "min", "q1", "q2", "q3", "max", "2nd pass (cached)"]);
    for pi in 0..pc.pairs.len() {
        let mut oracle = pipeline::oracle_for_pair(&pc, pi, &spec, &cache);
        let mut costs = Vec::new();
        for e in pc.split(true) {
            let t_csr = e.profiles[pi].csr_time();
            let mut m = pipeline::matrix_in_csr(&spec, e.id);
            let report = oracle.tune(&mut m).expect("tune");
            costs.push((report.cost.feature_extraction + report.cost.prediction) / t_csr);
        }
        // The same traffic again: structurally identical matrices are
        // answered from the decision cache at zero tuning cost.
        let mut cached_costs = 0.0;
        let mut cached_hits = 0usize;
        for e in pc.split(true) {
            let t_csr = e.profiles[pi].csr_time();
            let mut m = pipeline::matrix_in_csr(&spec, e.id);
            let report = oracle.tune(&mut m).expect("tune");
            cached_costs += report.cost.total() / t_csr;
            cached_hits += usize::from(report.cache_hit);
        }
        let s = sample_stats(&costs);
        table.row(vec![
            pc.pairs[pi].label(),
            format!("{:.0}", s.mean),
            format!("{:.0}", s.std),
            format!("{:.0}", s.min),
            format!("{:.0}", s.q1),
            format!("{:.0}", s.q2),
            format!("{:.0}", s.q3),
            format!("{:.0}", s.max),
            format!("{:.0} ({} hits)", cached_costs, cached_hits),
        ]);
    }
    println!("{}", table.render());
    println!("paper reference: means 2-64, Q3 <= 100 for at least 75% of matrices,");
    println!("OpenMP pairs the most expensive, GPU pairs only a few repetitions;");
    println!("the cached second pass shows the session facade amortising all of it.");
}
