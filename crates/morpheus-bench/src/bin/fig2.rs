//! Figure 2: optimal-format distribution per system/backend.
//!
//! "For every matrix in the dataset, supported format and available
//! platform the runtime of 1000 SpMV repetitions is recorded and the format
//! with the minimum runtime is set to be the optimal format" (§VII-B).
//! Prints the per-pair percentage of matrices won by each format.
//!
//! Paper's headline observations this should reproduce:
//! * CSR is the clear majority on every pair;
//! * the distribution shifts between Serial and OpenMP on the same system;
//! * GPU backends are "much more diverse with optimal formats chosen from
//!   almost every available format class".

use morpheus_bench::{cache_dir_from_env, corpus_spec_from_env, pipeline, report::Table};

fn main() {
    let spec = corpus_spec_from_env();
    eprintln!("profiling {} matrices on 11 system/backend pairs ...", spec.n_matrices);
    let pc = pipeline::profile_corpus_cached(&spec, &cache_dir_from_env());

    println!("== Figure 2: optimal format distribution (% of matrices) ==");
    println!("corpus: {} matrices, seed {:#x}\n", pc.entries.len(), spec.seed);

    let mut header = vec!["system/backend"];
    let names = pipeline::format_names();
    header.extend(names.iter());
    let mut table = Table::new(&header);
    for (pi, pair) in pc.pairs.iter().enumerate() {
        let dist = pipeline::format_distribution(&pc, pi);
        let mut row = vec![pair.label()];
        row.extend(dist.iter().map(|d| format!("{d:5.1}")));
        table.row(row);
    }
    println!("{}", table.render());

    // The paper's qualitative claims, checked mechanically.
    let csr = morpheus::FormatId::Csr.index();
    let mut plurality_pairs = 0usize;
    for pi in 0..pc.pairs.len() {
        let d = pipeline::format_distribution(&pc, pi);
        let csr_share = d[csr];
        let max_other = d.iter().enumerate().filter(|&(i, _)| i != csr).map(|(_, &v)| v).fold(0.0, f64::max);
        if csr_share >= max_other {
            plurality_pairs += 1;
        }
    }
    let gpu_diversity: Vec<String> = pc
        .pairs
        .iter()
        .enumerate()
        .filter(|(_, p)| p.backend.is_gpu())
        .map(|(pi, p)| {
            let d = pipeline::format_distribution(&pc, pi);
            let classes = d.iter().filter(|&&v| v >= 1.0).count();
            format!("{}: {classes}/6 formats above 1%", p.label())
        })
        .collect();

    println!("checks:");
    println!(
        "  CSR is the plurality winner on {plurality_pairs}/{} pairs (paper: the clear majority \
         overall; A64FX Serial and the AMD GPU deviate)",
        pc.pairs.len()
    );
    for line in gpu_diversity {
        println!("  {line}");
    }
}
