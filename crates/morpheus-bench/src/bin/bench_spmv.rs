//! Planned-vs-unplanned execution benchmark with a machine-readable
//! snapshot.
//!
//! Measures the two claims the planned execution layer makes:
//!
//! * **SpMV**: an iterative loop over a cached [`morpheus::ExecPlan`]
//!   (partition computed once, replayed every call) against the per-call
//!   scheduled threaded kernels that re-derive the *same* partition on
//!   every invocation (`weighted_partition` over CSR row lengths,
//!   `row_aligned_partition` over sorted COO entries). Plan construction is
//!   charged to the planned total, so the ratio is the honest amortised
//!   gain at the given iteration count.
//! * **SpMM**: the threaded planned kernel against the serial kernel, for
//!   several right-hand-side counts.
//!
//! Results go to stdout as a table and to `BENCH_spmv.json` (override with
//! `--out PATH`). `--smoke` shrinks sizes and iteration counts for CI.
//! Worker count defaults to the host parallelism; override with
//! `MORPHEUS_BENCH_THREADS` (the snapshot records it — single-core hosts
//! still show the scheduling-amortisation win, but cannot show parallel
//! SpMM speedups).

use morpheus::format::FormatId;
use morpheus::spmv::threaded;
use morpheus::{
    spmm, Analysis, Bottleneck, ConvertOptions, CooMatrix, CpuFeatures, DynamicMatrix, ExecPlan,
    KernelVariant, ALL_VARIANTS,
};
use morpheus_bench::report::json_escape;
use morpheus_corpus::gen::banded::tridiagonal;
use morpheus_corpus::gen::powerlaw::{hub_rows, zipf_rows};
use morpheus_corpus::gen::random::variable_degree;
use morpheus_corpus::gen::stencil::poisson2d;
use morpheus_machine::{systems, Backend, VirtualEngine};
use morpheus_oracle::{Oracle, RunFirstTuner};
use morpheus_parallel::ThreadPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Case {
    name: &'static str,
    /// `"powerlaw"` rows enter the headline geomean; `"regular"` rows are
    /// the contrast set.
    family: &'static str,
    matrix: CooMatrix<f64>,
}

fn corpus(smoke: bool) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(17);
    let scale = |full: usize, small: usize| if smoke { small } else { full };
    vec![
        Case {
            name: "zipf-mid",
            family: "powerlaw",
            matrix: zipf_rows(scale(30_000, 2_000), scale(150_000, 10_000), 1.0, &mut rng),
        },
        Case {
            name: "zipf-steep",
            family: "powerlaw",
            matrix: zipf_rows(scale(12_000, 1_200), scale(60_000, 6_000), 1.3, &mut rng),
        },
        Case {
            name: "hub",
            family: "powerlaw",
            matrix: hub_rows(scale(24_000, 1_600), 2, scale(8_000, 600), scale(120_000, 8_000), &mut rng),
        },
        Case {
            name: "zipf-wide",
            family: "powerlaw",
            matrix: zipf_rows(scale(60_000, 3_000), scale(240_000, 12_000), 0.9, &mut rng),
        },
        Case { name: "poisson2d", family: "regular", matrix: poisson2d(scale(180, 40), scale(180, 40)) },
        Case { name: "tridiagonal", family: "regular", matrix: tridiagonal(scale(120_000, 4_000)) },
        // Long scattered rows (~160 nnz/row full-size, ~52 in smoke): the
        // shape the unrolled SIMD body is for — enough entries per row to
        // fill its accumulators, columns too scattered for DIA/ELL wins.
        Case {
            name: "dense-rows",
            family: "regular",
            matrix: variable_degree(scale(16_000, 1_200), scale(96, 32), scale(224, 72), &mut rng),
        },
    ]
}

/// Total wall time of `iters` runs of `f`: best of three measured loops
/// (after one warm-up run), which filters scheduler noise on shared hosts.
fn time_loop<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The pre-plan steady state: the threaded kernel that recomputes its
/// schedule on every call, matching the partition the plan precomputes.
fn spmv_percall(m: &DynamicMatrix<f64>, x: &[f64], y: &mut [f64], pool: &ThreadPool) {
    match m {
        DynamicMatrix::Csr(a) => threaded::spmv_csr_balanced(a, x, y, pool),
        DynamicMatrix::Coo(a) => threaded::spmv_coo(a, x, y, pool),
        _ => {
            morpheus::spmv::spmv_threaded(m, x, y, pool, morpheus_parallel::Schedule::default())
                .expect("shapes agree");
        }
    }
}

/// One forced-variant measurement for a (matrix, format) pair.
struct VariantCell {
    forced: KernelVariant,
    /// What [`ExecPlan::build_with_variant`] actually realized — forcing a
    /// variant a format has no body for degrades to `Scalar` per portion.
    realized: KernelVariant,
    /// Loop seconds; `None` when the forced variant degraded to a body
    /// already measured under its own name (a clean fallback — timing it
    /// again would duplicate that row).
    loop_s: Option<f64>,
}

struct SpmvRow {
    matrix: String,
    family: &'static str,
    format: FormatId,
    /// `true` when this is the format the Oracle selects for the matrix —
    /// the steady-state execution of an iterative loop, and the rows the
    /// headline geomean is computed over.
    tuned: bool,
    nrows: usize,
    nnz: usize,
    /// Bottleneck label the analysis assigns this realization — the input
    /// to the auto plan's variant selection.
    bottleneck: Bottleneck,
    /// Dominant [`KernelVariant`] of the auto-built plan.
    variant: KernelVariant,
    /// Per-variant forced timings (loop only, no build), scalar first.
    variants: Vec<VariantCell>,
    unplanned_s: f64,
    planned_s: f64,
    plan_build_s: f64,
    speedup: f64,
}

struct SpmmRow {
    matrix: String,
    family: &'static str,
    format: FormatId,
    k: usize,
    nnz: usize,
    serial_s: f64,
    threaded_s: f64,
    speedup: f64,
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0usize);
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_spmv.json".to_string());
    let iters_override = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    let spmv_iters = iters_override.unwrap_or(if smoke { 30 } else { 200 });
    let spmm_iters = iters_override.map(|n| n.div_ceil(8)).unwrap_or(if smoke { 5 } else { 25 });
    let threads = std::env::var("MORPHEUS_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    let pool = ThreadPool::new(threads);
    let opts = ConvertOptions::default();
    let formats = [FormatId::Csr, FormatId::Hyb, FormatId::Coo];
    let ks = [4usize, 8];

    let mut spmv_rows: Vec<SpmvRow> = Vec::new();
    let mut spmm_rows: Vec<SpmmRow> = Vec::new();

    // Session used only to name the steady-state format per matrix (the
    // one the headline geomean reads).
    let mut selector = Oracle::builder()
        .engine(VirtualEngine::new(systems::cirrus(), Backend::OpenMp))
        .tuner(RunFirstTuner::new(1))
        .build()
        .expect("engine and tuner set");

    for case in corpus(smoke) {
        let base = DynamicMatrix::from(case.matrix);
        let x: Vec<f64> = (0..base.ncols()).map(|i| 1.0 + (i % 13) as f64 * 0.25).collect();
        let tuned_fmt = {
            let mut probe = base.clone();
            selector.tune(&mut probe).map(|r| r.chosen).unwrap_or(FormatId::Csr)
        };
        // Always bench the Oracle-selected format — the steady state the
        // headline geomean reads — even when it is not in the fixed set.
        let mut case_formats: Vec<FormatId> = formats.to_vec();
        if !case_formats.contains(&tuned_fmt) {
            case_formats.push(tuned_fmt);
        }
        for target in case_formats {
            let Ok(m) = base.to_format(target, &opts) else { continue };
            let analysis = Analysis::of_auto(&m, opts.true_diag_alpha);

            // --- SpMV: per-call scheduling vs plan-once/run-many ---
            let mut y_unplanned = vec![0.0f64; m.nrows()];
            let unplanned_s = time_loop(spmv_iters, || spmv_percall(&m, &x, &mut y_unplanned, &pool));

            let t0 = Instant::now();
            let plan = ExecPlan::build(&m, pool.num_threads(), Some(&analysis));
            let plan_build_s = t0.elapsed().as_secs_f64();
            let mut y_planned = vec![0.0f64; m.nrows()];
            let planned_loop_s =
                time_loop(spmv_iters, || plan.spmv(&m, &x, &mut y_planned, &pool).expect("plan matches"));
            let planned_s = planned_loop_s + plan_build_s;

            // The per-call kernels accumulate in reference order; the plan
            // is bitwise identical to them only when its variants do too.
            // Unrolled plans reassociate, so those compare under a
            // relative bound instead.
            if plan.preserves_order() {
                assert!(
                    y_unplanned.iter().zip(&y_planned).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{}/{}: planned result diverged",
                    case.name,
                    target
                );
            } else {
                assert!(
                    y_unplanned.iter().zip(&y_planned).all(|(a, b)| (a - b).abs() <= 1e-9 * a.abs().max(1.0)),
                    "{}/{}: planned result diverged beyond reassociation tolerance",
                    case.name,
                    target
                );
            }

            // Forced-variant sweep: loop time per kernel body, scalar
            // first so every other cell can quote a speedup against it.
            let mut variants = Vec::new();
            let mut measured: Vec<KernelVariant> = Vec::new();
            for forced in ALL_VARIANTS {
                let fplan = ExecPlan::build_with_variant(&m, pool.num_threads(), Some(&analysis), forced);
                let realized = fplan.dominant_variant();
                let loop_s = if realized == forced || !measured.contains(&realized) {
                    let mut y = vec![0.0f64; m.nrows()];
                    measured.push(realized);
                    Some(time_loop(spmv_iters, || fplan.spmv(&m, &x, &mut y, &pool).expect("plan matches")))
                } else {
                    None
                };
                variants.push(VariantCell { forced, realized, loop_s });
            }

            spmv_rows.push(SpmvRow {
                matrix: case.name.to_string(),
                family: case.family,
                format: target,
                tuned: target == tuned_fmt,
                nrows: m.nrows(),
                nnz: m.nnz(),
                bottleneck: analysis.bottleneck(),
                variant: plan.dominant_variant(),
                variants,
                unplanned_s,
                planned_s,
                plan_build_s,
                speedup: unplanned_s / planned_s,
            });

            // --- SpMM: serial vs threaded-planned (CSR representative +
            //     whatever format the case is benched in) ---
            if m.nnz() > 16_000 || smoke {
                for &k in &ks {
                    let xk: Vec<f64> = (0..base.ncols() * k).map(|i| 0.5 + (i % 7) as f64 * 0.5).collect();
                    let mut y_serial = vec![0.0f64; m.nrows() * k];
                    let serial_s =
                        time_loop(spmm_iters, || spmm::spmm_serial(&m, &xk, &mut y_serial, k).unwrap());
                    let mut y_threaded = vec![0.0f64; m.nrows() * k];
                    let threaded_s = time_loop(spmm_iters, || {
                        plan.spmm(&m, &xk, &mut y_threaded, k, &pool).expect("plan matches")
                    });
                    assert!(
                        y_serial.iter().zip(&y_threaded).all(|(a, b)| a.to_bits() == b.to_bits()),
                        "{}/{} k={k}: threaded SpMM diverged",
                        case.name,
                        target
                    );
                    spmm_rows.push(SpmmRow {
                        matrix: case.name.to_string(),
                        family: case.family,
                        format: target,
                        k,
                        nnz: m.nnz(),
                        serial_s,
                        threaded_s,
                        speedup: serial_s / threaded_s,
                    });
                }
            }
        }
    }

    // --- report ---
    let cpu = CpuFeatures::detect();
    println!("cpu features: avx2={} fma={}", cpu.avx2, cpu.fma);
    println!(
        "{:<12} {:<9} {:>5} {:>9} {:>9} {:>9} {:>9} | {:>11} {:>11} {:>9} {:>8}",
        "matrix",
        "family",
        "fmt",
        "nrows",
        "nnz",
        "bneck",
        "variant",
        "unplanned_s",
        "planned_s",
        "build_s",
        "speedup"
    );
    for r in &spmv_rows {
        println!(
            "{:<12} {:<9} {:>5}{} {:>8} {:>9} {:>9} {:>9} | {:>11.6} {:>11.6} {:>9.6} {:>7.2}x",
            r.matrix,
            r.family,
            r.format.to_string(),
            if r.tuned { "*" } else { " " },
            r.nrows,
            r.nnz,
            r.bottleneck.to_string(),
            r.variant.to_string(),
            r.unplanned_s,
            r.planned_s,
            r.plan_build_s,
            r.speedup
        );
        let scalar_s = r.variants.iter().find(|c| c.forced == KernelVariant::Scalar).and_then(|c| c.loop_s);
        for c in &r.variants {
            match (c.loop_s, scalar_s) {
                (Some(s), Some(base)) => println!(
                    "    forced {:<9} -> {:<9} {:>11.6}s  {:>6.2}x vs scalar",
                    c.forced.to_string(),
                    c.realized.to_string(),
                    s,
                    base / s
                ),
                (Some(s), None) => println!(
                    "    forced {:<9} -> {:<9} {:>11.6}s",
                    c.forced.to_string(),
                    c.realized.to_string(),
                    s
                ),
                (None, _) => println!(
                    "    forced {:<9} -> {:<9}   (clean fallback, body already measured)",
                    c.forced.to_string(),
                    c.realized.to_string()
                ),
            }
        }
    }
    println!("(* = the format the Oracle selects for this matrix)");
    println!();
    println!(
        "{:<12} {:<9} {:>5} {:>3} {:>9} | {:>10} {:>11} {:>8}",
        "matrix", "family", "fmt", "k", "nnz", "serial_s", "threaded_s", "speedup"
    );
    for r in &spmm_rows {
        println!(
            "{:<12} {:<9} {:>5} {:>3} {:>9} | {:>10.6} {:>11.6} {:>7.2}x",
            r.matrix,
            r.family,
            r.format.to_string(),
            r.k,
            r.nnz,
            r.serial_s,
            r.threaded_s,
            r.speedup
        );
    }

    let spmv_powerlaw =
        geomean(spmv_rows.iter().filter(|r| r.family == "powerlaw" && r.tuned).map(|r| r.speedup));
    let spmv_all_formats_powerlaw =
        geomean(spmv_rows.iter().filter(|r| r.family == "powerlaw").map(|r| r.speedup));
    let spmv_all = geomean(spmv_rows.iter().map(|r| r.speedup));
    let spmm_all = geomean(spmm_rows.iter().map(|r| r.speedup));
    let by_bottleneck: Vec<(Bottleneck, f64)> =
        [Bottleneck::Bandwidth, Bottleneck::Latency, Bottleneck::Imbalance]
            .into_iter()
            .map(|b| {
                (b, geomean(spmv_rows.iter().filter(|r| r.tuned && r.bottleneck == b).map(|r| r.speedup)))
            })
            .collect();
    println!();
    println!("planned SpMV geomean speedup, powerlaw corpus (tuned formats): {spmv_powerlaw:.3}x");
    println!(
        "planned SpMV geomean speedup, powerlaw corpus (all formats):   {spmv_all_formats_powerlaw:.3}x"
    );
    println!("planned SpMV geomean speedup (every row):                      {spmv_all:.3}x");
    for (b, g) in &by_bottleneck {
        println!("planned SpMV geomean speedup, {b:<9} tuned rows:              {g:.3}x");
    }
    println!("threaded SpMM geomean speedup over serial:                     {spmm_all:.3}x  ({threads} worker(s))");

    // --- snapshot ---
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_spmv/v2\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"cpu\": {{\"avx2\": {}, \"fma\": {}}},\n", cpu.avx2, cpu.fma));
    json.push_str(&format!("  \"spmv_iters\": {spmv_iters},\n"));
    json.push_str(&format!("  \"spmm_iters\": {spmm_iters},\n"));
    json.push_str(&format!("  \"spmv_powerlaw_geomean_speedup\": {spmv_powerlaw:.4},\n"));
    json.push_str(&format!(
        "  \"spmv_powerlaw_all_formats_geomean_speedup\": {spmv_all_formats_powerlaw:.4},\n"
    ));
    json.push_str(&format!("  \"spmv_geomean_speedup\": {spmv_all:.4},\n"));
    json.push_str(&format!("  \"spmm_geomean_speedup\": {spmm_all:.4},\n"));
    json.push_str("  \"spmv_bottleneck_geomean_speedup\": {");
    for (i, (b, g)) in by_bottleneck.iter().enumerate() {
        json.push_str(&format!("\"{b}\": {g:.4}{}", if i + 1 < by_bottleneck.len() { ", " } else { "" }));
    }
    json.push_str("},\n");
    json.push_str("  \"spmv\": [\n");
    for (i, r) in spmv_rows.iter().enumerate() {
        let scalar_s = r.variants.iter().find(|c| c.forced == KernelVariant::Scalar).and_then(|c| c.loop_s);
        let cells: Vec<String> = r
            .variants
            .iter()
            .map(|c| match (c.loop_s, scalar_s) {
                (Some(s), Some(base)) => format!(
                    "{{\"forced\": \"{}\", \"realized\": \"{}\", \"loop_s\": {:.6e}, \
                     \"speedup_vs_scalar\": {:.4}}}",
                    c.forced,
                    c.realized,
                    s,
                    base / s
                ),
                (Some(s), None) => format!(
                    "{{\"forced\": \"{}\", \"realized\": \"{}\", \"loop_s\": {:.6e}}}",
                    c.forced, c.realized, s
                ),
                (None, _) => {
                    format!("{{\"forced\": \"{}\", \"realized\": \"{}\"}}", c.forced, c.realized)
                }
            })
            .collect();
        json.push_str(&format!(
            "    {{\"matrix\": \"{}\", \"family\": \"{}\", \"format\": \"{}\", \"tuned\": {}, \"nrows\": {}, \
             \"nnz\": {}, \"bottleneck\": \"{}\", \"variant\": \"{}\", \"unplanned_s\": {:.6e}, \
             \"planned_s\": {:.6e}, \"plan_build_s\": {:.6e}, \"speedup\": {:.4}, \"variants\": [{}]}}{}\n",
            json_escape(&r.matrix), r.family, r.format, r.tuned, r.nrows, r.nnz,
            r.bottleneck, r.variant, r.unplanned_s, r.planned_s, r.plan_build_s, r.speedup,
            cells.join(", "),
            if i + 1 < spmv_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"spmm\": [\n");
    for (i, r) in spmm_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"matrix\": \"{}\", \"family\": \"{}\", \"format\": \"{}\", \"k\": {}, \"nnz\": {}, \
             \"serial_s\": {:.6e}, \"threaded_s\": {:.6e}, \"speedup\": {:.4}}}{}\n",
            json_escape(&r.matrix),
            r.family,
            r.format,
            r.k,
            r.nnz,
            r.serial_s,
            r.threaded_s,
            r.speedup,
            if i + 1 < spmm_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("snapshot written to {out_path}");
}
