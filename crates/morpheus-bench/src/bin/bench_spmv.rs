//! Planned-vs-unplanned execution benchmark with a machine-readable
//! snapshot.
//!
//! Measures the two claims the planned execution layer makes:
//!
//! * **SpMV**: an iterative loop over a cached [`morpheus::ExecPlan`]
//!   (partition computed once, replayed every call) against the per-call
//!   scheduled threaded kernels that re-derive the *same* partition on
//!   every invocation (`weighted_partition` over CSR row lengths,
//!   `row_aligned_partition` over sorted COO entries). Plan construction is
//!   charged to the planned total, so the ratio is the honest amortised
//!   gain at the given iteration count.
//! * **SpMM**: the threaded planned kernel against the serial kernel, for
//!   several right-hand-side counts.
//!
//! Results go to stdout as a table and to `BENCH_spmv.json` (override with
//! `--out PATH`). `--smoke` shrinks sizes and iteration counts for CI.
//! Worker count defaults to the host parallelism; override with
//! `MORPHEUS_BENCH_THREADS` (the snapshot records it — single-core hosts
//! still show the scheduling-amortisation win, but cannot show parallel
//! SpMM speedups).

use morpheus::format::FormatId;
use morpheus::spmv::threaded;
use morpheus::{
    spmm, Analysis, Bottleneck, ConvertOptions, CooMatrix, CpuFeatures, DynamicMatrix, ExecPlan,
    KernelVariant, Partition, PartitionConfig, PartitionedMatrix, ALL_VARIANTS,
};
use morpheus_bench::report::json_escape;
use morpheus_corpus::gen::banded::tridiagonal;
use morpheus_corpus::gen::blocks::{aligned_blocks, fem_blocks};
use morpheus_corpus::gen::hetero::{hub_plus_banded, shifted_bands};
use morpheus_corpus::gen::powerlaw::{hub_rows, zipf_rows};
use morpheus_corpus::gen::random::{bimodal_rows, variable_degree};
use morpheus_corpus::gen::stencil::poisson2d;
use morpheus_machine::{analyze, systems, Backend, VirtualEngine};
use morpheus_oracle::{propose_params, Oracle, RunFirstTuner};
use morpheus_parallel::ThreadPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Case {
    name: &'static str,
    /// `"powerlaw"` rows enter the headline geomean; `"regular"` rows are
    /// the contrast set.
    family: &'static str,
    matrix: CooMatrix<f64>,
}

fn corpus(smoke: bool) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(17);
    let scale = |full: usize, small: usize| if smoke { small } else { full };
    vec![
        Case {
            name: "zipf-mid",
            family: "powerlaw",
            matrix: zipf_rows(scale(30_000, 2_000), scale(150_000, 10_000), 1.0, &mut rng),
        },
        Case {
            name: "zipf-steep",
            family: "powerlaw",
            matrix: zipf_rows(scale(12_000, 1_200), scale(60_000, 6_000), 1.3, &mut rng),
        },
        Case {
            name: "hub",
            family: "powerlaw",
            matrix: hub_rows(scale(24_000, 1_600), 2, scale(8_000, 600), scale(120_000, 8_000), &mut rng),
        },
        Case {
            name: "zipf-wide",
            family: "powerlaw",
            matrix: zipf_rows(scale(60_000, 3_000), scale(240_000, 12_000), 0.9, &mut rng),
        },
        Case { name: "poisson2d", family: "regular", matrix: poisson2d(scale(180, 40), scale(180, 40)) },
        Case { name: "tridiagonal", family: "regular", matrix: tridiagonal(scale(120_000, 4_000)) },
        // Long scattered rows (~160 nnz/row full-size, ~52 in smoke): the
        // shape the unrolled SIMD body is for — enough entries per row to
        // fill its accumulators, columns too scattered for DIA/ELL wins.
        Case {
            name: "dense-rows",
            family: "regular",
            matrix: variable_degree(scale(16_000, 1_200), scale(96, 32), scale(224, 72), &mut rng),
        },
        // Hypersparse scattered columns (~3 nnz/row, uniform targets): high
        // diagonal scatter, x reused under 16 times per column — the
        // latency-bound class, so its bottleneck geomean is non-vacuous.
        Case {
            name: "scattered",
            family: "scattered",
            matrix: variable_degree(scale(40_000, 4_000), 2, 4, &mut rng),
        },
    ]
}

/// Total wall time of `iters` runs of `f`: best of three measured loops
/// (after one warm-up run), which filters scheduler noise on shared hosts.
fn time_loop<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The pre-plan steady state: the threaded kernel that recomputes its
/// schedule on every call, matching the partition the plan precomputes.
fn spmv_percall(m: &DynamicMatrix<f64>, x: &[f64], y: &mut [f64], pool: &ThreadPool) {
    match m {
        DynamicMatrix::Csr(a) => threaded::spmv_csr_balanced(a, x, y, pool),
        DynamicMatrix::Coo(a) => threaded::spmv_coo(a, x, y, pool),
        _ => {
            morpheus::spmv::spmv_threaded(m, x, y, pool, morpheus_parallel::Schedule::default())
                .expect("shapes agree");
        }
    }
}

/// One forced-variant measurement for a (matrix, format) pair.
struct VariantCell {
    forced: KernelVariant,
    /// What [`ExecPlan::build_with_variant`] actually realized — forcing a
    /// variant a format has no body for degrades to `Scalar` per portion.
    realized: KernelVariant,
    /// Loop seconds; `None` when the forced variant degraded to a body
    /// already measured under its own name (a clean fallback — timing it
    /// again would duplicate that row).
    loop_s: Option<f64>,
}

struct SpmvRow {
    matrix: String,
    family: &'static str,
    format: FormatId,
    /// `true` when this is the format the Oracle selects for the matrix —
    /// the steady-state execution of an iterative loop, and the rows the
    /// headline geomean is computed over.
    tuned: bool,
    nrows: usize,
    nnz: usize,
    /// Bottleneck label the analysis assigns this realization — the input
    /// to the auto plan's variant selection.
    bottleneck: Bottleneck,
    /// Dominant [`KernelVariant`] of the auto-built plan.
    variant: KernelVariant,
    /// Per-variant forced timings (loop only, no build), scalar first.
    variants: Vec<VariantCell>,
    unplanned_s: f64,
    planned_s: f64,
    plan_build_s: f64,
    speedup: f64,
}

struct SpmmRow {
    matrix: String,
    family: &'static str,
    format: FormatId,
    k: usize,
    nnz: usize,
    serial_s: f64,
    threaded_s: f64,
    speedup: f64,
}

/// One shard of a partitioned case in the snapshot.
struct ShardCol {
    rows: std::ops::Range<usize>,
    nnz: usize,
    format: FormatId,
    variant: KernelVariant,
}

/// One parameterized-format candidate (BSR or BELL) on a blocked case.
struct BlockedCand {
    format: FormatId,
    /// `FormatParams::to_token` of the proposed parameters (`-` = default).
    params: String,
    default_params: bool,
    loop_s: f64,
}

/// Parameterized block formats vs. the best pre-existing-format plan.
struct BlockedRow {
    matrix: &'static str,
    nrows: usize,
    nnz: usize,
    /// What the Oracle's run-first sweep (full registry) selects.
    oracle_choice: FormatId,
    best_legacy: FormatId,
    best_legacy_s: f64,
    cands: Vec<BlockedCand>,
    winner: FormatId,
    winner_params: String,
    winner_default_params: bool,
    winner_s: f64,
    speedup: f64,
}

/// Units-in-the-last-place distance between two doubles (same sign; large
/// sentinel across zero).
fn ulp_distance(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_sign_positive() != b.is_sign_positive() {
        return u64::MAX;
    }
    (a.to_bits() as i64).abs_diff(b.to_bits() as i64)
}

/// ULP-bounded equality against the serial reference: tight bit-distance
/// for well-conditioned sums, with an absolute escape hatch for rows that
/// cancel toward zero (reassociation noise dwarfs the ULP there).
fn ulp_check(got: &[f64], reference: &[f64], label: &str) {
    for (i, (a, b)) in got.iter().zip(reference).enumerate() {
        let ok = ulp_distance(*a, *b) <= 512 || (a - b).abs() <= 1e-11 * b.abs().max(1.0);
        assert!(ok, "{label}: row {i} diverged from serial reference: {a} vs {b}");
    }
}

/// Partitioned execution vs. the best whole-matrix single-format plan.
struct PartRow {
    matrix: &'static str,
    nrows: usize,
    nnz: usize,
    shards: Vec<ShardCol>,
    best_single_format: FormatId,
    best_single_s: f64,
    partitioned_s: f64,
    speedup: f64,
}

/// `None` when the class has no rows: a vacuous geomean must read as
/// "no data" downstream (JSON `null`), never as a fabricated `1.0`.
fn geomean(values: impl Iterator<Item = f64>) -> Option<f64> {
    let (mut log_sum, mut n) = (0.0, 0usize);
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

/// Renders an optional geomean for the stdout report.
fn show_geo(g: Option<f64>) -> String {
    match g {
        Some(v) => format!("{v:.3}x"),
        None => "n/a (no rows)".to_string(),
    }
}

/// Renders an optional geomean as a JSON value (`null` when vacuous).
fn json_geo(g: Option<f64>) -> String {
    match g {
        Some(v) => format!("{v:.4}"),
        None => "null".to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_spmv.json".to_string());
    let iters_override = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    let spmv_iters = iters_override.unwrap_or(if smoke { 30 } else { 200 });
    let spmm_iters = iters_override.map(|n| n.div_ceil(8)).unwrap_or(if smoke { 5 } else { 25 });
    let threads = std::env::var("MORPHEUS_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    let pool = ThreadPool::new(threads);
    let opts = ConvertOptions::default();
    let formats = [FormatId::Csr, FormatId::Hyb, FormatId::Coo];
    let ks = [4usize, 8];

    let mut spmv_rows: Vec<SpmvRow> = Vec::new();
    let mut spmm_rows: Vec<SpmmRow> = Vec::new();

    // Session used only to name the steady-state format per matrix (the
    // one the headline geomean reads). The engine doubles as the
    // per-shard format chooser in the partitioned section.
    let engine = VirtualEngine::new(systems::cirrus(), Backend::OpenMp);
    let mut selector = Oracle::builder()
        .engine(engine.clone())
        .tuner(RunFirstTuner::new(1))
        .build()
        .expect("engine and tuner set");

    for case in corpus(smoke) {
        let base = DynamicMatrix::from(case.matrix);
        let x: Vec<f64> = (0..base.ncols()).map(|i| 1.0 + (i % 13) as f64 * 0.25).collect();
        let tuned_fmt = {
            let mut probe = base.clone();
            selector.tune(&mut probe).map(|r| r.chosen).unwrap_or(FormatId::Csr)
        };
        // Always bench the Oracle-selected format — the steady state the
        // headline geomean reads — even when it is not in the fixed set.
        let mut case_formats: Vec<FormatId> = formats.to_vec();
        if !case_formats.contains(&tuned_fmt) {
            case_formats.push(tuned_fmt);
        }
        for target in case_formats {
            let Ok(m) = base.to_format(target, &opts) else { continue };
            let analysis = Analysis::of_auto(&m, opts.true_diag_alpha);

            // --- SpMV: per-call scheduling vs plan-once/run-many ---
            let mut y_unplanned = vec![0.0f64; m.nrows()];
            let unplanned_s = time_loop(spmv_iters, || spmv_percall(&m, &x, &mut y_unplanned, &pool));

            let t0 = Instant::now();
            let plan = ExecPlan::build(&m, pool.num_threads(), Some(&analysis));
            let plan_build_s = t0.elapsed().as_secs_f64();
            let mut y_planned = vec![0.0f64; m.nrows()];
            let planned_loop_s =
                time_loop(spmv_iters, || plan.spmv(&m, &x, &mut y_planned, &pool).expect("plan matches"));
            let planned_s = planned_loop_s + plan_build_s;

            // The per-call kernels accumulate in reference order; the plan
            // is bitwise identical to them only when its variants do too.
            // Unrolled plans reassociate, so those compare under a
            // relative bound instead.
            if plan.preserves_order() {
                assert!(
                    y_unplanned.iter().zip(&y_planned).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{}/{}: planned result diverged",
                    case.name,
                    target
                );
            } else {
                assert!(
                    y_unplanned.iter().zip(&y_planned).all(|(a, b)| (a - b).abs() <= 1e-9 * a.abs().max(1.0)),
                    "{}/{}: planned result diverged beyond reassociation tolerance",
                    case.name,
                    target
                );
            }

            // Forced-variant sweep: loop time per kernel body, scalar
            // first so every other cell can quote a speedup against it.
            let mut variants = Vec::new();
            let mut measured: Vec<KernelVariant> = Vec::new();
            for forced in ALL_VARIANTS {
                let fplan = ExecPlan::build_with_variant(&m, pool.num_threads(), Some(&analysis), forced);
                let realized = fplan.dominant_variant();
                let loop_s = if realized == forced || !measured.contains(&realized) {
                    let mut y = vec![0.0f64; m.nrows()];
                    measured.push(realized);
                    Some(time_loop(spmv_iters, || fplan.spmv(&m, &x, &mut y, &pool).expect("plan matches")))
                } else {
                    None
                };
                variants.push(VariantCell { forced, realized, loop_s });
            }

            spmv_rows.push(SpmvRow {
                matrix: case.name.to_string(),
                family: case.family,
                format: target,
                tuned: target == tuned_fmt,
                nrows: m.nrows(),
                nnz: m.nnz(),
                bottleneck: analysis.bottleneck(),
                variant: plan.dominant_variant(),
                variants,
                unplanned_s,
                planned_s,
                plan_build_s,
                speedup: unplanned_s / planned_s,
            });

            // --- SpMM: serial vs threaded-planned (CSR representative +
            //     whatever format the case is benched in) ---
            if m.nnz() > 16_000 || smoke {
                for &k in &ks {
                    let xk: Vec<f64> = (0..base.ncols() * k).map(|i| 0.5 + (i % 7) as f64 * 0.5).collect();
                    let mut y_serial = vec![0.0f64; m.nrows() * k];
                    let serial_s =
                        time_loop(spmm_iters, || spmm::spmm_serial(&m, &xk, &mut y_serial, k).unwrap());
                    let mut y_threaded = vec![0.0f64; m.nrows() * k];
                    let threaded_s = time_loop(spmm_iters, || {
                        plan.spmm(&m, &xk, &mut y_threaded, k, &pool).expect("plan matches")
                    });
                    assert!(
                        y_serial.iter().zip(&y_threaded).all(|(a, b)| a.to_bits() == b.to_bits()),
                        "{}/{} k={k}: threaded SpMM diverged",
                        case.name,
                        target
                    );
                    spmm_rows.push(SpmmRow {
                        matrix: case.name.to_string(),
                        family: case.family,
                        format: target,
                        k,
                        nnz: m.nnz(),
                        serial_s,
                        threaded_s,
                        speedup: serial_s / threaded_s,
                    });
                }
            }
        }
    }

    // --- partitioned handles: per-shard formats vs the best single plan ---
    //
    // Internally heterogeneous matrices where every whole-matrix format is
    // wrong for one regime. The contest is fair: the single-format side
    // gets every viable format converted, planned at the same worker count
    // and timed, and its *best* loop time is the baseline.
    let mut part_rows: Vec<PartRow> = Vec::new();
    {
        let mut rng = StdRng::seed_from_u64(23);
        let scale = |full: usize, small: usize| if smoke { small } else { full };
        let hetero_cases: Vec<(&'static str, CooMatrix<f64>)> = vec![
            ("hetero", hub_plus_banded(scale(48_000, 3_000), scale(800, 120), scale(160, 64), 4, &mut rng)),
            (
                "hetero-tail",
                hub_plus_banded(scale(48_000, 3_000), scale(96, 24), scale(512, 96), 4, &mut rng),
            ),
            (
                // Domain-decomposition shape: two band blocks at different
                // diagonal offsets and widths. Whole-matrix DIA/HDC store
                // the union of both blocks' diagonals at half fill, ELL
                // pads to the wide block, CSR runs scalar short rows —
                // per-shard DIA is the only format that fits both blocks.
                // Offsets point inward (positive for low rows, negative
                // for high rows) so no edge row loses entries.
                "hetero-bands",
                shifted_bands(
                    scale(48_000, 3_000),
                    scale(400, 60),
                    scale(160, 64),
                    &[(scale(4_000, 250) as isize, 2), (-(scale(2_000, 125) as isize), 6)],
                    &mut rng,
                ),
            ),
        ];
        for (name, coo) in hetero_cases {
            let base = DynamicMatrix::from(coo);
            let x: Vec<f64> = (0..base.ncols()).map(|i| 1.0 + (i % 13) as f64 * 0.25).collect();
            let analysis = Analysis::of_auto(&base, opts.true_diag_alpha);
            // Shard targets sized to the regime count (hub / mid / tail),
            // not the worker count: per-shard specialization wins by
            // matching formats to regimes, and over-sharding only buys
            // dispatch overhead. The explicit target also keeps smoke
            // inputs splitting — the module default (64k nnz) would leave
            // them as one shard and bench nothing.
            let cfg = PartitionConfig {
                max_shards: 4,
                target_shard_nnz: (base.nnz() / 3).max(4_096),
                ..Default::default()
            };
            let partition = Partition::from_analysis(&analysis, &cfg);
            // Per-shard formats are *measured*, the RunFirstTuner idea at
            // shard granularity: convert each candidate, replay its
            // single-threaded plan a few times, keep the fastest.
            let pm = PartitionedMatrix::build(
                &base,
                &partition,
                &opts,
                pool.num_threads(),
                Some(&analysis),
                |_, sm, _| {
                    let mut best = (FormatId::Csr, f64::INFINITY);
                    for fmt in [FormatId::Csr, FormatId::Ell, FormatId::Dia, FormatId::Hyb, FormatId::Hdc] {
                        let Ok(mf) = sm.to_format(fmt, &opts) else { continue };
                        let fa = Analysis::of_auto(&mf, opts.true_diag_alpha);
                        let plan = ExecPlan::build(&mf, 1, Some(&fa));
                        let mut y = vec![0.0f64; mf.nrows()];
                        let s = time_loop(16, || plan.spmv_unpooled(&mf, &x, &mut y).expect("plan matches"));
                        if s < best.1 {
                            best = (fmt, s);
                        }
                    }
                    best.0
                },
            )
            .expect("partitioned build");
            assert!(pm.num_shards() >= 2, "{name}: hetero case must shard (got 1)");
            let mut distinct = pm.formats();
            distinct.sort_unstable();
            distinct.dedup();
            assert!(
                distinct.len() >= 2,
                "{name}: per-shard tuning must realize >=2 formats, got {distinct:?}"
            );

            let mut y_part = vec![0.0f64; base.nrows()];
            pm.spmv(&x, &mut y_part, &pool).expect("shapes agree");
            let mut y_ref = vec![0.0f64; base.nrows()];
            morpheus::spmv::spmv_serial(&base, &x, &mut y_ref).expect("shapes agree");
            assert!(
                y_part.iter().zip(&y_ref).all(|(a, b)| (a - b).abs() <= 1e-9 * b.abs().max(1.0)),
                "{name}: partitioned result diverged from serial reference"
            );

            // Interleaved min-of-reps scoring: this box is one core and
            // bursty, so a single best-of-3 loop wears whatever the
            // neighbors were doing when it ran. Alternating the
            // partitioned loop with every single-format loop across
            // several reps and keeping each side's minimum scores both
            // at their uncontended speed.
            let singles: Vec<(FormatId, DynamicMatrix<f64>, ExecPlan<f64>)> =
                [FormatId::Csr, FormatId::Ell, FormatId::Dia, FormatId::Hyb, FormatId::Coo, FormatId::Hdc]
                    .into_iter()
                    .filter_map(|fmt| {
                        let mf = base.to_format(fmt, &opts).ok()?;
                        let fa = Analysis::of_auto(&mf, opts.true_diag_alpha);
                        let plan = ExecPlan::build(&mf, pool.num_threads(), Some(&fa));
                        Some((fmt, mf, plan))
                    })
                    .collect();
            let reps = if smoke { 2 } else { 5 };
            let mut partitioned_s = f64::INFINITY;
            let mut single_s = vec![f64::INFINITY; singles.len()];
            let mut y = vec![0.0f64; base.nrows()];
            for _ in 0..reps {
                partitioned_s = partitioned_s
                    .min(time_loop(spmv_iters, || pm.spmv(&x, &mut y_part, &pool).expect("shapes agree")));
                for ((_, mf, plan), slot) in singles.iter().zip(single_s.iter_mut()) {
                    let s = time_loop(spmv_iters, || plan.spmv(mf, &x, &mut y, &pool).expect("plan matches"));
                    *slot = slot.min(s);
                }
            }
            let (best_single_format, best_single_s) = singles
                .iter()
                .zip(&single_s)
                .map(|((fmt, _, _), s)| (*fmt, *s))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("CSR is always viable");

            part_rows.push(PartRow {
                matrix: name,
                nrows: base.nrows(),
                nnz: base.nnz(),
                shards: pm
                    .shards()
                    .iter()
                    .map(|s| ShardCol {
                        rows: s.rows(),
                        nnz: s.nnz(),
                        format: s.format_id(),
                        variant: s.plan().dominant_variant(),
                    })
                    .collect(),
                best_single_format,
                best_single_s,
                partitioned_s,
                speedup: best_single_s / partitioned_s,
            });
        }
    }
    let partitioned_geo = geomean(part_rows.iter().map(|r| r.speedup));

    // --- parameterized block formats: BSR/BELL vs the best legacy plan ---
    //
    // The PR-9 contest: on block-structured and heavy-tail inputs, the
    // parameterized formats (BSR with regressed block dims, BELL with a
    // regressed bucket ladder) against the *best* of every pre-existing
    // format, each converted, planned at the same worker count and timed.
    // Every candidate's result is ULP-checked against the serial CSR
    // reference before it may score.
    let mut blocked_rows: Vec<BlockedRow> = Vec::new();
    {
        let mut rng = StdRng::seed_from_u64(41);
        let scale = |full: usize, small: usize| if smoke { small } else { full };
        let blocked_cases: Vec<(&'static str, CooMatrix<f64>)> = vec![
            // Fully dense grid-aligned blocks: the register-blocking ideal.
            ("aligned-4x4", aligned_blocks(scale(5_000, 400), 4, 3, &mut rng)),
            ("aligned-8x8", aligned_blocks(scale(2_400, 200), 8, 2, &mut rng)),
            // FEM-style coupled blocks: aligned dense blocks, irregular
            // block columns.
            ("fem-blocks", fem_blocks(scale(5_000, 400), 4, 2, &mut rng)),
            // Two-population row widths: the bucketed-ELL shape. Plain ELL
            // pads every narrow row to the wide width, HYB spills the wide
            // population to COO.
            ("bimodal", bimodal_rows(scale(40_000, 3_000), 3, 64, 40, &mut rng)),
            ("bimodal-steep", bimodal_rows(scale(30_000, 2_400), 2, 96, 60, &mut rng)),
        ];
        let legacy =
            [FormatId::Csr, FormatId::Ell, FormatId::Hyb, FormatId::Dia, FormatId::Hdc, FormatId::Coo];
        for (name, coo) in blocked_cases {
            let base = DynamicMatrix::from(coo);
            let x: Vec<f64> = (0..base.ncols()).map(|i| 1.0 + (i % 13) as f64 * 0.25).collect();
            let mut y_ref = vec![0.0f64; base.nrows()];
            morpheus::spmv::spmv_serial(&base, &x, &mut y_ref).expect("shapes agree");

            let oracle_choice = {
                let mut probe = base.clone();
                selector.tune(&mut probe).map(|r| r.chosen).unwrap_or(FormatId::Csr)
            };

            // Legacy side: every viable pre-PR-9 format, planned and timed.
            let legacy_plans: Vec<(FormatId, DynamicMatrix<f64>, ExecPlan<f64>)> = legacy
                .into_iter()
                .filter_map(|fmt| {
                    let mf = base.to_format(fmt, &opts).ok()?;
                    let fa = Analysis::of_auto(&mf, opts.true_diag_alpha);
                    let plan = ExecPlan::build(&mf, pool.num_threads(), Some(&fa));
                    Some((fmt, mf, plan))
                })
                .collect();

            // Parameterized side: BSR and BELL with per-matrix proposed
            // parameters (the heuristic strategy argmin over the analysis).
            let machine_analysis = analyze(&base);
            type BlockPlan = (FormatId, String, bool, DynamicMatrix<f64>, ExecPlan<f64>);
            let block_plans: Vec<BlockPlan> = [FormatId::Bsr, FormatId::Bell]
                .into_iter()
                .filter_map(|fmt| {
                    let params = propose_params(fmt, &machine_analysis);
                    let popts = ConvertOptions { params, ..opts };
                    let mf = base.to_format(fmt, &popts).ok()?;
                    let fa = Analysis::of_auto(&mf, popts.true_diag_alpha);
                    let plan = ExecPlan::build(&mf, pool.num_threads(), Some(&fa));
                    Some((fmt, params.to_token(), params.is_default(), mf, plan))
                })
                .collect();
            assert!(!block_plans.is_empty(), "{name}: no parameterized candidate converted");

            // Correctness first: every plan must reproduce the serial
            // reference within the ULP bound.
            let mut y = vec![0.0f64; base.nrows()];
            for (fmt, mf, plan) in &legacy_plans {
                plan.spmv(mf, &x, &mut y, &pool).expect("plan matches");
                ulp_check(&y, &y_ref, &format!("{name}/{fmt}"));
            }
            for (fmt, tok, _, mf, plan) in &block_plans {
                plan.spmv(mf, &x, &mut y, &pool).expect("plan matches");
                ulp_check(&y, &y_ref, &format!("{name}/{fmt}[{tok}]"));
            }

            // Interleaved min-of-reps scoring (same rationale as the
            // partitioned section: bursty shared host).
            let reps = if smoke { 2 } else { 5 };
            let mut legacy_s = vec![f64::INFINITY; legacy_plans.len()];
            let mut cand_s = vec![f64::INFINITY; block_plans.len()];
            for _ in 0..reps {
                for ((_, mf, plan), slot) in legacy_plans.iter().zip(legacy_s.iter_mut()) {
                    let s = time_loop(spmv_iters, || plan.spmv(mf, &x, &mut y, &pool).expect("plan matches"));
                    *slot = slot.min(s);
                }
                for ((_, _, _, mf, plan), slot) in block_plans.iter().zip(cand_s.iter_mut()) {
                    let s = time_loop(spmv_iters, || plan.spmv(mf, &x, &mut y, &pool).expect("plan matches"));
                    *slot = slot.min(s);
                }
            }
            let (best_legacy, best_legacy_s) = legacy_plans
                .iter()
                .zip(&legacy_s)
                .map(|((fmt, _, _), s)| (*fmt, *s))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("CSR is always viable");
            let cands: Vec<BlockedCand> = block_plans
                .iter()
                .zip(&cand_s)
                .map(|((fmt, tok, dflt, _, _), s)| BlockedCand {
                    format: *fmt,
                    params: tok.clone(),
                    default_params: *dflt,
                    loop_s: *s,
                })
                .collect();
            let win = cands.iter().min_by(|a, b| a.loop_s.total_cmp(&b.loop_s)).expect("non-empty");

            blocked_rows.push(BlockedRow {
                matrix: name,
                nrows: base.nrows(),
                nnz: base.nnz(),
                oracle_choice,
                best_legacy,
                best_legacy_s,
                winner: win.format,
                winner_params: win.params.clone(),
                winner_default_params: win.default_params,
                winner_s: win.loop_s,
                speedup: best_legacy_s / win.loop_s,
                cands,
            });
        }
    }
    let blocked_geo = geomean(blocked_rows.iter().map(|r| r.speedup));

    // CI gate (--smoke): the tuned sweep must cover the parameterized
    // formats, and at least one blocked case must select one with
    // non-default (regressed) parameters.
    if smoke {
        let swept: Vec<FormatId> =
            blocked_rows.iter().flat_map(|r| r.cands.iter().map(|c| c.format)).collect();
        assert!(
            swept.contains(&FormatId::Bsr) && swept.contains(&FormatId::Bell),
            "smoke sweep must include BSR and BELL, got {swept:?}"
        );
        assert!(
            blocked_rows
                .iter()
                .any(|r| matches!(r.winner, FormatId::Bsr | FormatId::Bell) && !r.winner_default_params),
            "no blocked case selected a parameterized format with non-default params"
        );
    }

    // --- report ---
    let cpu = CpuFeatures::detect();
    println!("cpu features: avx2={} fma={}", cpu.avx2, cpu.fma);
    println!(
        "{:<12} {:<9} {:>5} {:>9} {:>9} {:>9} {:>9} | {:>11} {:>11} {:>9} {:>8}",
        "matrix",
        "family",
        "fmt",
        "nrows",
        "nnz",
        "bneck",
        "variant",
        "unplanned_s",
        "planned_s",
        "build_s",
        "speedup"
    );
    for r in &spmv_rows {
        println!(
            "{:<12} {:<9} {:>5}{} {:>8} {:>9} {:>9} {:>9} | {:>11.6} {:>11.6} {:>9.6} {:>7.2}x",
            r.matrix,
            r.family,
            r.format.to_string(),
            if r.tuned { "*" } else { " " },
            r.nrows,
            r.nnz,
            r.bottleneck.to_string(),
            r.variant.to_string(),
            r.unplanned_s,
            r.planned_s,
            r.plan_build_s,
            r.speedup
        );
        let scalar_s = r.variants.iter().find(|c| c.forced == KernelVariant::Scalar).and_then(|c| c.loop_s);
        for c in &r.variants {
            match (c.loop_s, scalar_s) {
                (Some(s), Some(base)) => println!(
                    "    forced {:<9} -> {:<9} {:>11.6}s  {:>6.2}x vs scalar",
                    c.forced.to_string(),
                    c.realized.to_string(),
                    s,
                    base / s
                ),
                (Some(s), None) => println!(
                    "    forced {:<9} -> {:<9} {:>11.6}s",
                    c.forced.to_string(),
                    c.realized.to_string(),
                    s
                ),
                (None, _) => println!(
                    "    forced {:<9} -> {:<9}   (clean fallback, body already measured)",
                    c.forced.to_string(),
                    c.realized.to_string()
                ),
            }
        }
    }
    println!("(* = the format the Oracle selects for this matrix)");
    println!();
    println!(
        "{:<12} {:<9} {:>5} {:>3} {:>9} | {:>10} {:>11} {:>8}",
        "matrix", "family", "fmt", "k", "nnz", "serial_s", "threaded_s", "speedup"
    );
    for r in &spmm_rows {
        println!(
            "{:<12} {:<9} {:>5} {:>3} {:>9} | {:>10.6} {:>11.6} {:>7.2}x",
            r.matrix,
            r.family,
            r.format.to_string(),
            r.k,
            r.nnz,
            r.serial_s,
            r.threaded_s,
            r.speedup
        );
    }

    println!();
    println!(
        "{:<12} {:>9} {:>9} {:>7} {:>11} | {:>13} {:>13} {:>8}",
        "matrix", "nrows", "nnz", "shards", "best-single", "best_single_s", "partitioned_s", "speedup"
    );
    for r in &part_rows {
        println!(
            "{:<12} {:>9} {:>9} {:>7} {:>11} | {:>13.6} {:>13.6} {:>7.2}x",
            r.matrix,
            r.nrows,
            r.nnz,
            r.shards.len(),
            r.best_single_format.to_string(),
            r.best_single_s,
            r.partitioned_s,
            r.speedup
        );
        for (i, s) in r.shards.iter().enumerate() {
            println!(
                "    shard {i:<2} rows {:>7}..{:<7} nnz {:>8}  {:<5} {}",
                s.rows.start,
                s.rows.end,
                s.nnz,
                s.format.to_string(),
                s.variant
            );
        }
    }

    println!();
    println!(
        "{:<14} {:>9} {:>9} {:>7} {:>11} | {:>13} {:>7} {:>14} {:>13} {:>8}",
        "matrix",
        "nrows",
        "nnz",
        "oracle",
        "best-legacy",
        "best_legacy_s",
        "winner",
        "params",
        "winner_s",
        "speedup"
    );
    for r in &blocked_rows {
        println!(
            "{:<14} {:>9} {:>9} {:>7} {:>11} | {:>13.6} {:>7} {:>14} {:>13.6} {:>7.2}x",
            r.matrix,
            r.nrows,
            r.nnz,
            r.oracle_choice.to_string(),
            r.best_legacy.to_string(),
            r.best_legacy_s,
            r.winner.to_string(),
            r.winner_params,
            r.winner_s,
            r.speedup
        );
        for c in &r.cands {
            println!(
                "    candidate {:<5} params {:<14} {:>11.6}s  {:>6.2}x vs best legacy",
                c.format.to_string(),
                c.params,
                c.loop_s,
                r.best_legacy_s / c.loop_s
            );
        }
    }

    let spmv_powerlaw =
        geomean(spmv_rows.iter().filter(|r| r.family == "powerlaw" && r.tuned).map(|r| r.speedup));
    let spmv_all_formats_powerlaw =
        geomean(spmv_rows.iter().filter(|r| r.family == "powerlaw").map(|r| r.speedup));
    let spmv_all = geomean(spmv_rows.iter().map(|r| r.speedup));
    let spmm_all = geomean(spmm_rows.iter().map(|r| r.speedup));
    let by_bottleneck: Vec<(Bottleneck, Option<f64>)> =
        [Bottleneck::Bandwidth, Bottleneck::Latency, Bottleneck::Imbalance]
            .into_iter()
            .map(|b| {
                (b, geomean(spmv_rows.iter().filter(|r| r.tuned && r.bottleneck == b).map(|r| r.speedup)))
            })
            .collect();
    println!();
    println!("planned SpMV geomean speedup, powerlaw corpus (tuned formats): {}", show_geo(spmv_powerlaw));
    println!(
        "planned SpMV geomean speedup, powerlaw corpus (all formats):   {}",
        show_geo(spmv_all_formats_powerlaw)
    );
    println!("planned SpMV geomean speedup (every row):                      {}", show_geo(spmv_all));
    for (b, g) in &by_bottleneck {
        println!("planned SpMV geomean speedup, {b:<9} tuned rows:              {}", show_geo(*g));
    }
    println!(
        "threaded SpMM geomean speedup over serial:                     {}  ({threads} worker(s))",
        show_geo(spmm_all)
    );
    println!("partitioned SpMV geomean speedup over best single-format plan: {}", show_geo(partitioned_geo));
    println!("blocked-corpus BSR/BELL geomean speedup over best legacy plan: {}", show_geo(blocked_geo));

    // --- snapshot ---
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_spmv/v4\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"cpu\": {{\"avx2\": {}, \"fma\": {}}},\n", cpu.avx2, cpu.fma));
    json.push_str(&format!("  \"spmv_iters\": {spmv_iters},\n"));
    json.push_str(&format!("  \"spmm_iters\": {spmm_iters},\n"));
    json.push_str(&format!("  \"spmv_powerlaw_geomean_speedup\": {},\n", json_geo(spmv_powerlaw)));
    json.push_str(&format!(
        "  \"spmv_powerlaw_all_formats_geomean_speedup\": {},\n",
        json_geo(spmv_all_formats_powerlaw)
    ));
    json.push_str(&format!("  \"spmv_geomean_speedup\": {},\n", json_geo(spmv_all)));
    json.push_str(&format!("  \"spmm_geomean_speedup\": {},\n", json_geo(spmm_all)));
    json.push_str("  \"spmv_bottleneck_geomean_speedup\": {");
    for (i, (b, g)) in by_bottleneck.iter().enumerate() {
        json.push_str(&format!(
            "\"{b}\": {}{}",
            json_geo(*g),
            if i + 1 < by_bottleneck.len() { ", " } else { "" }
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!("  \"partitioned_geomean_speedup\": {},\n", json_geo(partitioned_geo)));
    json.push_str(&format!("  \"blocked_geomean_speedup\": {},\n", json_geo(blocked_geo)));
    json.push_str("  \"blocked\": [\n");
    for (i, r) in blocked_rows.iter().enumerate() {
        let cands: Vec<String> = r
            .cands
            .iter()
            .map(|c| {
                format!(
                    "{{\"format\": \"{}\", \"params\": \"{}\", \"default_params\": {}, \"loop_s\": {:.6e}}}",
                    c.format,
                    json_escape(&c.params),
                    c.default_params,
                    c.loop_s
                )
            })
            .collect();
        json.push_str(&format!(
            "    {{\"matrix\": \"{}\", \"nrows\": {}, \"nnz\": {}, \"oracle_choice\": \"{}\", \
             \"best_legacy_format\": \"{}\", \"best_legacy_s\": {:.6e}, \"winner\": \"{}\", \
             \"winner_params\": \"{}\", \"winner_default_params\": {}, \"winner_s\": {:.6e}, \
             \"speedup\": {:.4}, \"candidates\": [{}]}}{}\n",
            json_escape(r.matrix),
            r.nrows,
            r.nnz,
            r.oracle_choice,
            r.best_legacy,
            r.best_legacy_s,
            r.winner,
            json_escape(&r.winner_params),
            r.winner_default_params,
            r.winner_s,
            r.speedup,
            cands.join(", "),
            if i + 1 < blocked_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"partitioned\": [\n");
    for (i, r) in part_rows.iter().enumerate() {
        let shards: Vec<String> = r
            .shards
            .iter()
            .map(|s| {
                format!(
                    "{{\"rows\": [{}, {}], \"nnz\": {}, \"format\": \"{}\", \"variant\": \"{}\"}}",
                    s.rows.start, s.rows.end, s.nnz, s.format, s.variant
                )
            })
            .collect();
        json.push_str(&format!(
            "    {{\"matrix\": \"{}\", \"nrows\": {}, \"nnz\": {}, \"num_shards\": {}, \
             \"best_single_format\": \"{}\", \"best_single_s\": {:.6e}, \"partitioned_s\": {:.6e}, \
             \"speedup\": {:.4}, \"shards\": [{}]}}{}\n",
            json_escape(r.matrix),
            r.nrows,
            r.nnz,
            r.shards.len(),
            r.best_single_format,
            r.best_single_s,
            r.partitioned_s,
            r.speedup,
            shards.join(", "),
            if i + 1 < part_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"spmv\": [\n");
    for (i, r) in spmv_rows.iter().enumerate() {
        let scalar_s = r.variants.iter().find(|c| c.forced == KernelVariant::Scalar).and_then(|c| c.loop_s);
        let cells: Vec<String> = r
            .variants
            .iter()
            .map(|c| match (c.loop_s, scalar_s) {
                (Some(s), Some(base)) => format!(
                    "{{\"forced\": \"{}\", \"realized\": \"{}\", \"loop_s\": {:.6e}, \
                     \"speedup_vs_scalar\": {:.4}}}",
                    c.forced,
                    c.realized,
                    s,
                    base / s
                ),
                (Some(s), None) => format!(
                    "{{\"forced\": \"{}\", \"realized\": \"{}\", \"loop_s\": {:.6e}}}",
                    c.forced, c.realized, s
                ),
                (None, _) => {
                    format!("{{\"forced\": \"{}\", \"realized\": \"{}\"}}", c.forced, c.realized)
                }
            })
            .collect();
        json.push_str(&format!(
            "    {{\"matrix\": \"{}\", \"family\": \"{}\", \"format\": \"{}\", \"tuned\": {}, \"nrows\": {}, \
             \"nnz\": {}, \"bottleneck\": \"{}\", \"variant\": \"{}\", \"unplanned_s\": {:.6e}, \
             \"planned_s\": {:.6e}, \"plan_build_s\": {:.6e}, \"speedup\": {:.4}, \"variants\": [{}]}}{}\n",
            json_escape(&r.matrix), r.family, r.format, r.tuned, r.nrows, r.nnz,
            r.bottleneck, r.variant, r.unplanned_s, r.planned_s, r.plan_build_s, r.speedup,
            cells.join(", "),
            if i + 1 < spmv_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"spmm\": [\n");
    for (i, r) in spmm_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"matrix\": \"{}\", \"family\": \"{}\", \"format\": \"{}\", \"k\": {}, \"nnz\": {}, \
             \"serial_s\": {:.6e}, \"threaded_s\": {:.6e}, \"speedup\": {:.4}}}{}\n",
            json_escape(&r.matrix),
            r.family,
            r.format,
            r.k,
            r.nnz,
            r.serial_s,
            r.threaded_s,
            r.speedup,
            if i + 1 < spmm_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("snapshot written to {out_path}");
}
