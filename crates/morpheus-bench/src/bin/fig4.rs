//! Figure 4: runtime speedup of the optimal format over CSR on the GPU
//! backends (§VII-C).
//!
//! "The average speedup for the CUDA and HIP backends is 8x and 10x
//! respectively ... with maximum speedups reaching up to 1000x." The paper
//! attributes the extremes (e.g. `mawi_201512020030`) to uncoalesced CSR
//! accesses and under-utilisation — the effects the SIMT model reproduces
//! from the matrix structure.

use morpheus_bench::report::{log_histogram, sample_stats, Table};
use morpheus_bench::{cache_dir_from_env, corpus_spec_from_env, pipeline};

fn main() {
    let spec = corpus_spec_from_env();
    let pc = pipeline::profile_corpus_cached(&spec, &cache_dir_from_env());

    println!("== Figure 4: SpMV speedup of optimal format vs CSR, GPU backends ==");
    println!("(CSR-optimal matrices omitted, as in the paper)\n");

    let mut table = Table::new(&["system/backend", "device", "n", "mean", "q2", "max", ">=10x", ">=100x"]);
    for (pi, pair) in pc.pairs.iter().enumerate() {
        if !pair.backend.is_gpu() {
            continue;
        }
        let device = pair.system.gpu_for(pair.backend).map(|g| g.name).unwrap_or("?");
        let speedups = pipeline::optimal_speedups(&pc, pi);
        if speedups.is_empty() {
            continue;
        }
        let s = sample_stats(&speedups);
        let ge10 = speedups.iter().filter(|&&v| v >= 10.0).count();
        let ge100 = speedups.iter().filter(|&&v| v >= 100.0).count();
        table.row(vec![
            pair.label(),
            device.to_string(),
            speedups.len().to_string(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.q2),
            format!("{:.1}", s.max),
            ge10.to_string(),
            ge100.to_string(),
        ]);
    }
    println!("{}", table.render());

    let bins = [1.5, 3.0, 10.0, 30.0, 100.0, 1000.0];
    for (pi, pair) in pc.pairs.iter().enumerate() {
        if !pair.backend.is_gpu() {
            continue;
        }
        let speedups = pipeline::optimal_speedups(&pc, pi);
        if speedups.is_empty() {
            continue;
        }
        println!("{} (n = {}):", pair.label(), speedups.len());
        print!("{}", log_histogram(&speedups, &bins));
        println!();
    }
}
