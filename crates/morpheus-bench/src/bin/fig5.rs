//! Figure 5: end-to-end speedup from adopting the auto-tuner (§VII-F).
//!
//! `Speedup = T_CSR / (T_FE + T_PRED + T_OPT)` over 1000 SpMV repetitions
//! with the format *predicted* by the tuned random forest (Equation 2).
//! The paper reports ≈1.1x average on CPUs (max 7x on A64FX), 1.5x on the
//! A100, 3x on the V100 and 8x on the MI100, with the tuned average
//! matching the oracle-optimal average — i.e. tuning overheads amortise
//! within the 1000 iterations.
//!
//! The online stage runs through the public [`morpheus_oracle::Oracle`]
//! session: every test matrix is regenerated in CSR and tuned by the
//! facade, whose report supplies both the selected format (CSR fallback
//! included) and the `T_FE + T_PRED` decision cost.

use morpheus_bench::report::{sample_stats, Table};
use morpheus_bench::{cache_dir_from_env, corpus_spec_from_env, pipeline};

const REPS: f64 = 1000.0;

fn main() {
    let spec = corpus_spec_from_env();
    let cache = cache_dir_from_env();
    let pc = pipeline::profile_corpus_cached(&spec, &cache);

    println!("== Figure 5: tuned SpMV speedup vs CSR (1000 repetitions, test set) ==\n");
    let mut table = Table::new(&[
        "system/backend",
        "n",
        "mean tuned",
        "mean optimal",
        "min",
        "max",
        "<0.95x",
        "mispredicted",
    ]);

    for pi in 0..pc.pairs.len() {
        let mut oracle = pipeline::oracle_for_pair(&pc, pi, &spec, &cache);
        let mut speedups = Vec::new();
        let mut optimal_speedups = Vec::new();
        let mut mispredicted = 0usize;
        for e in pc.split(true) {
            let profile = &e.profiles[pi];
            let t_csr = profile.csr_time();
            let mut m = pipeline::matrix_in_csr(&spec, e.id);
            let report = oracle.tune(&mut m).expect("tuning never fails on corpus matrices");
            // A prediction for a non-viable format has already fallen back
            // to CSR inside the facade.
            let t_run_format = profile.times[report.chosen.index()].unwrap_or(t_csr);
            if report.chosen != profile.optimal {
                mispredicted += 1;
            }
            let t_decide = report.cost.feature_extraction + report.cost.prediction;
            let speedup = (REPS * t_csr) / (t_decide + REPS * t_run_format);
            speedups.push(speedup);
            optimal_speedups.push(t_csr / profile.optimal_time());
        }
        let s = sample_stats(&speedups);
        let so = sample_stats(&optimal_speedups);
        let below = speedups.iter().filter(|&&v| v < 0.95).count();
        table.row(vec![
            pc.pairs[pi].label(),
            speedups.len().to_string(),
            format!("{:.2}", s.mean),
            format!("{:.2}", so.mean),
            format!("{:.2}", s.min),
            format!("{:.1}", s.max),
            below.to_string(),
            mispredicted.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("paper reference: CPU means ~1.1x (max 7x on A64FX); GPU means 1.5x (A100),");
    println!("3x (V100) and 8x (MI100); tuned mean ~= optimal mean (overheads amortised);");
    println!("mis-classifications appear as speedups below 1.");
}
