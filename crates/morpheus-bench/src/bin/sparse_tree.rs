//! The model-generation pipeline — the Rust equivalent of the paper's
//! `Sparse.Tree` Python framework (§III-A).
//!
//! Runs the complete offline stage of Figure 1: corpus → profiling runs →
//! feature extraction → training + tuning → model database export. The
//! produced model files are what `DecisionTreeTuner`/`RandomForestTuner`
//! load at runtime.
//!
//! ```text
//! sparse_tree [--out <dir>] [--full-grid] [--also-trees]
//! ```
//!
//! * `--out <dir>` — model database directory (default `models/`);
//! * `--full-grid` — the paper-sized exhaustive grid instead of the quick
//!   one (hours of compute);
//! * `--also-trees` — additionally export tuned single-tree models.

use morpheus_bench::report::Table;
use morpheus_bench::{cache_dir_from_env, corpus_spec_from_env, pipeline};
use morpheus_ml::metrics::{accuracy, balanced_accuracy};
use morpheus_ml::{ForestGrid, Scoring, TreeGrid};
use morpheus_oracle::model_db::ModelDatabase;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_string())
        .unwrap_or_else(|| "models".to_string());
    let full_grid = args.iter().any(|a| a == "--full-grid");
    let also_trees = args.iter().any(|a| a == "--also-trees");

    let spec = corpus_spec_from_env();
    let cache = cache_dir_from_env();
    eprintln!("[sparse.tree] profiling {} matrices ...", spec.n_matrices);
    let pc = pipeline::profile_corpus_cached(&spec, &cache);

    let db = ModelDatabase::new(&out_dir);
    let n_classes = morpheus::format::FORMAT_COUNT;

    // Export the training data itself (features + per-pair labels), the way
    // the paper's framework exposes its "Input Data"/"Input Targets".
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let csv_path = std::path::Path::new(&out_dir).join("dataset.csv");
    {
        use std::io::Write;
        let mut w = std::io::BufWriter::new(std::fs::File::create(&csv_path).expect("create dataset.csv"));
        write!(w, "name,class,split").expect("write");
        for f in morpheus_oracle::FEATURE_NAMES {
            write!(w, ",{f}").expect("write");
        }
        for pair in &pc.pairs {
            write!(w, ",optimal@{}", pair.label()).expect("write");
        }
        writeln!(w).expect("write");
        for e in &pc.entries {
            write!(w, "{},{},{}", e.name, e.class_name, if e.is_test { "test" } else { "train" })
                .expect("write");
            for v in &e.features {
                write!(w, ",{v:e}").expect("write");
            }
            for p in &e.profiles {
                write!(w, ",{}", p.optimal.name()).expect("write");
            }
            writeln!(w).expect("write");
        }
    }
    eprintln!("[sparse.tree] dataset exported to {}", csv_path.display());
    let mut table = Table::new(&["system/backend", "model", "cv bacc", "test acc %", "test bacc %", "file"]);

    for (pi, pair) in pc.pairs.iter().enumerate() {
        let train = pipeline::dataset_for_pair(&pc, pi, false);
        let test = pipeline::dataset_for_pair(&pc, pi, true);
        let seed = spec.seed ^ pi as u64;

        eprintln!("[sparse.tree] tuning random forest for {} ...", pair.label());
        let grid = if full_grid { ForestGrid::default() } else { pipeline::quick_grid() };
        let out = morpheus_ml::grid::grid_search_forest(&train, &grid, 5, seed, Scoring::BalancedAccuracy)
            .expect("grid search");
        let preds = out.best_model.predict_dataset(&test);
        let path =
            db.save_forest(pair.system.name, pair.backend, &out.best_model).expect("save forest model");
        table.row(vec![
            pair.label(),
            "forest".into(),
            format!("{:.3}", out.best_cv_score),
            format!("{:.2}", 100.0 * accuracy(test.targets(), &preds)),
            format!("{:.2}", 100.0 * balanced_accuracy(test.targets(), &preds, n_classes)),
            path.file_name().unwrap().to_string_lossy().into_owned(),
        ]);

        if also_trees {
            eprintln!("[sparse.tree] tuning decision tree for {} ...", pair.label());
            let out = morpheus_ml::grid::grid_search_tree(
                &train,
                &TreeGrid::default(),
                5,
                seed,
                Scoring::BalancedAccuracy,
            )
            .expect("tree grid search");
            let preds = out.best_model.predict_dataset(&test);
            let path =
                db.save_tree(pair.system.name, pair.backend, &out.best_model).expect("save tree model");
            table.row(vec![
                pair.label(),
                "tree".into(),
                format!("{:.3}", out.best_cv_score),
                format!("{:.2}", 100.0 * accuracy(test.targets(), &preds)),
                format!("{:.2}", 100.0 * balanced_accuracy(test.targets(), &preds, n_classes)),
                path.file_name().unwrap().to_string_lossy().into_owned(),
            ]);
        }
    }
    println!("== Sparse.Tree: model database written to {out_dir}/ ==\n");
    println!("{}", table.render());
    println!("load these with `ModelDatabase::load_forest_tuner(system, backend)`.");
}
