//! Table III: random-forest hyperparameter tuning per system/backend
//! (§VII-D).
//!
//! For every pair: a *baseline* forest (library defaults) and a *tuned*
//! forest (grid search with 5-fold stratified CV selecting on balanced
//! accuracy), both evaluated on the held-out test set. The paper reports
//! baseline/tuned accuracy 92.36%/92.63% and balanced accuracy
//! 80.22%/84.42% on average, with the tuned models using "significantly
//! fewer and shallower trees".
//!
//! Pass `--tree` to additionally reproduce the in-text decision-tree
//! numbers (tuned DT: 90.85% accuracy, 78.12% balanced accuracy).

use morpheus_bench::report::Table;
use morpheus_bench::{cache_dir_from_env, corpus_spec_from_env, pipeline};
use morpheus_ml::metrics::{accuracy, balanced_accuracy};
use morpheus_ml::{RandomForest, Scoring, TreeGrid};

fn mean_std(values: &[f64]) -> (f64, f64) {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

fn main() {
    let with_tree = std::env::args().any(|a| a == "--tree");
    let spec = corpus_spec_from_env();
    let cache = cache_dir_from_env();
    let pc = pipeline::profile_corpus_cached(&spec, &cache);

    println!("== Table III: random forest baseline vs tuned, per system/backend ==\n");
    let mut table = Table::new(&[
        "system/backend",
        "est(b/t)",
        "boot(b/t)",
        "depth(b/t)",
        "leaf(b/t)",
        "split(b/t)",
        "feat(b/t)",
        "crit(t)",
        "acc b",
        "acc t",
        "bacc b",
        "bacc t",
    ]);

    let n_classes = morpheus::format::FORMAT_COUNT;
    let mut acc_b_all = Vec::new();
    let mut acc_t_all = Vec::new();
    let mut bacc_b_all = Vec::new();
    let mut bacc_t_all = Vec::new();

    for pi in 0..pc.pairs.len() {
        let train = pipeline::dataset_for_pair(&pc, pi, false);
        let test = pipeline::dataset_for_pair(&pc, pi, true);

        let base_params = pipeline::baseline_params(spec.seed ^ pi as u64);
        let baseline = RandomForest::fit(&train, &base_params).expect("baseline fit");
        let preds_b = baseline.predict_dataset(&test);
        let acc_b = 100.0 * accuracy(test.targets(), &preds_b);
        let bacc_b = 100.0 * balanced_accuracy(test.targets(), &preds_b, n_classes);

        let tuned = pipeline::tuned_forest_cached(&pc, pi, &spec, &cache);
        let preds_t = tuned.model.predict_dataset(&test);
        let acc_t = 100.0 * accuracy(test.targets(), &preds_t);
        let bacc_t = 100.0 * balanced_accuracy(test.targets(), &preds_t, n_classes);

        acc_b_all.push(acc_b);
        acc_t_all.push(acc_t);
        bacc_b_all.push(bacc_b);
        bacc_t_all.push(bacc_t);

        let tp = &tuned.params;
        let depth = |d: Option<usize>| d.map_or("-".to_string(), |v| v.to_string());
        table.row(vec![
            pc.pairs[pi].label(),
            format!("{}/{}", base_params.n_estimators, tp.n_estimators),
            format!(
                "{}/{}",
                if base_params.bootstrap { "T" } else { "F" },
                if tp.bootstrap { "T" } else { "F" }
            ),
            format!("{}/{}", depth(base_params.max_depth), depth(tp.max_depth)),
            format!("{}/{}", base_params.min_samples_leaf, tp.min_samples_leaf),
            format!("{}/{}", base_params.min_samples_split, tp.min_samples_split),
            format!("{}/{}", depth(base_params.max_features), depth(tp.max_features)),
            tp.criterion.name().to_string(),
            format!("{acc_b:.2}"),
            format!("{acc_t:.2}"),
            format!("{bacc_b:.2}"),
            format!("{bacc_t:.2}"),
        ]);
    }
    println!("{}", table.render());

    let (mab, sab) = mean_std(&acc_b_all);
    let (mat, sat) = mean_std(&acc_t_all);
    let (mbb, sbb) = mean_std(&bacc_b_all);
    let (mbt, sbt) = mean_std(&bacc_t_all);
    println!("mean accuracy:           baseline {mab:.2}%  tuned {mat:.2}%   (paper: 92.36 / 92.63)");
    println!("std  accuracy:           baseline {sab:.2}   tuned {sat:.2}    (paper:  2.93 /  3.02)");
    println!("mean balanced accuracy:  baseline {mbb:.2}%  tuned {mbt:.2}%   (paper: 80.22 / 84.42)");
    println!("std  balanced accuracy:  baseline {sbb:.2}   tuned {sbt:.2}    (paper: 11.04 /  6.64)");

    if with_tree {
        println!("\n== In-text §VII-D: tuned decision tree ==\n");
        let mut t = Table::new(&["system/backend", "depth", "leaf", "split", "crit", "acc", "bacc"]);
        let mut accs = Vec::new();
        let mut baccs = Vec::new();
        for pi in 0..pc.pairs.len() {
            let train = pipeline::dataset_for_pair(&pc, pi, false);
            let test = pipeline::dataset_for_pair(&pc, pi, true);
            let grid = TreeGrid::default();
            let out = morpheus_ml::grid::grid_search_tree(
                &train,
                &grid,
                5,
                spec.seed ^ pi as u64,
                Scoring::BalancedAccuracy,
            )
            .expect("tree grid search");
            let preds = out.best_model.predict_dataset(&test);
            let acc = 100.0 * accuracy(test.targets(), &preds);
            let bacc = 100.0 * balanced_accuracy(test.targets(), &preds, n_classes);
            accs.push(acc);
            baccs.push(bacc);
            t.row(vec![
                pc.pairs[pi].label(),
                out.best_params.max_depth.map_or("-".into(), |d| d.to_string()),
                out.best_params.min_samples_leaf.to_string(),
                out.best_params.min_samples_split.to_string(),
                out.best_params.criterion.name().to_string(),
                format!("{acc:.2}"),
                format!("{bacc:.2}"),
            ]);
        }
        println!("{}", t.render());
        let (ma, sa) = mean_std(&accs);
        let (mb, sb) = mean_std(&baccs);
        println!("tuned decision tree: accuracy {ma:.2}% ± {sa:.2}, balanced accuracy {mb:.2}% ± {sb:.2}");
        println!("(paper: 90.85 ± 7.87 and 78.12 ± 4.91)");
    }
}
