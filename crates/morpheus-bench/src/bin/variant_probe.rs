//! Row-length sweep of the CSR kernel variants against the scalar body —
//! the measurement behind `UNROLL_MIN_AVG_NNZ` / `PREFETCH_MAX_AVG_NNZ`.
//! Re-run on new hardware before retuning those constants.

use morpheus::{Analysis, CooMatrix, DynamicMatrix, ExecPlan, KernelVariant};
use morpheus_parallel::ThreadPool;
use std::time::Instant;

fn dense_rows(nrows: usize, ncols: usize, per_row: usize) -> CooMatrix<f64> {
    let (mut rows, mut cols, mut vals) = (Vec::new(), Vec::new(), Vec::new());
    let mut s: u64 = 12345;
    for r in 0..nrows {
        for j in 0..per_row {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rows.push(r);
            cols.push(((s >> 33) as usize + j * 7919) % ncols);
            vals.push(1.0 + (j % 9) as f64 * 0.125);
        }
    }
    CooMatrix::from_triplets(nrows, ncols, &rows, &cols, &vals).unwrap()
}

fn time_loop(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let pool = ThreadPool::new(1);
    for &per_row in &[4usize, 8, 16, 32, 64, 128, 256] {
        let nrows = (2_000_000 / per_row).max(64);
        let m = DynamicMatrix::from(dense_rows(nrows, 65_536, per_row));
        let m = m.to_format(morpheus::format::FormatId::Csr, &Default::default()).unwrap();
        let a = Analysis::of(&m, 0.2);
        let x: Vec<f64> = (0..m.ncols()).map(|i| 1.0 + (i % 13) as f64 * 0.25).collect();
        let iters = 40;
        print!("per_row={per_row:>4} nrows={nrows:>7}");
        let mut base = 0.0;
        for v in [KernelVariant::Scalar, KernelVariant::Unrolled, KernelVariant::Prefetch] {
            let plan = ExecPlan::build_with_variant(&m, 1, Some(&a), v);
            let mut y = vec![0.0; m.nrows()];
            let t = time_loop(iters, || plan.spmv(&m, &x, &mut y, &pool).unwrap());
            if v == KernelVariant::Scalar {
                base = t;
            }
            print!("  {}={:.4}s ({:.2}x)", v, t, base / t);
        }
        println!();
    }
}
