//! Figure 3: runtime speedup of the optimal format over CSR on the CPU
//! backends (§VII-C).
//!
//! "Whilst a lot of the matrices result in a speedup of less than 1.5x,
//! there is a noticeable number of matrices that exhibit speedups between
//! 1.5x and 10.5x, with an average speedup of approximately 1.8x for
//! Cirrus, XCI and A64FX, and of 1.3x on Archer2." Matrices whose optimal
//! format is CSR are omitted, as in the paper.

use morpheus_bench::report::{log_histogram, sample_stats, Table};
use morpheus_bench::{cache_dir_from_env, corpus_spec_from_env, pipeline};
use morpheus_machine::Backend;

fn main() {
    let spec = corpus_spec_from_env();
    let pc = pipeline::profile_corpus_cached(&spec, &cache_dir_from_env());

    println!("== Figure 3: SpMV speedup of optimal format vs CSR, CPU backends ==");
    println!("(CSR-optimal matrices omitted, as in the paper)\n");

    let mut table = Table::new(&["system/backend", "n", "mean", "q2", "q3", "max", ">=1.5x", ">=10x"]);
    for (pi, pair) in pc.pairs.iter().enumerate() {
        if pair.backend.is_gpu() {
            continue;
        }
        let speedups = pipeline::optimal_speedups(&pc, pi);
        if speedups.is_empty() {
            table.row(vec![
                pair.label(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let s = sample_stats(&speedups);
        let ge15 = speedups.iter().filter(|&&v| v >= 1.5).count();
        let ge10 = speedups.iter().filter(|&&v| v >= 10.0).count();
        table.row(vec![
            pair.label(),
            speedups.len().to_string(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.q2),
            format!("{:.2}", s.q3),
            format!("{:.2}", s.max),
            ge15.to_string(),
            ge10.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Histograms for the OpenMP pairs (the figure's panels).
    let bins = [1.1, 1.5, 2.5, 4.0, 6.5, 10.5];
    for (pi, pair) in pc.pairs.iter().enumerate() {
        if pair.backend != Backend::OpenMp {
            continue;
        }
        let speedups = pipeline::optimal_speedups(&pc, pi);
        if speedups.is_empty() {
            continue;
        }
        println!("{} (n = {}):", pair.label(), speedups.len());
        print!("{}", log_histogram(&speedups, &bins));
        println!();
    }
}
