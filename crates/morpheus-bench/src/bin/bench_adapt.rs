//! Adaptive-learning benchmark with a machine-readable snapshot.
//!
//! Measures the claims the `adapt` subsystem makes, on a mixed banded +
//! powerlaw + stencil + scattered corpus:
//!
//! * **telemetry overhead**: warm registered-path throughput with the
//!   collector attached but retraining idle, vs an identical service
//!   without a collector (the budget: < 2% regression);
//! * **decision quality**: fraction of matrices assigned their
//!   *measured*-fastest format (ground truth from independent timed serial
//!   runs of every viable format), for the shipped analytical tuner vs the
//!   model adapted online over `--rounds` sweep + retrain rounds;
//! * **drift**: a forced-drift round (irreducibly conflicting labels) must
//!   trigger the fallback to the analytical tuner without a service
//!   restart.
//!
//! Results go to stdout and `BENCH_adapt.json` (override with `--out`).
//! `--smoke` shrinks sizes for CI.

use morpheus::format::FormatId;
use morpheus::{ConvertOptions, CooMatrix, DynamicMatrix};
use morpheus_bench::report::json_escape;
use morpheus_corpus::gen::banded::{multi_diagonal, tridiagonal};
use morpheus_corpus::gen::blocks::{aligned_blocks, fem_blocks};
use morpheus_corpus::gen::powerlaw::{hub_rows, zipf_rows};
use morpheus_corpus::gen::random::{bimodal_rows, uniform_degree, variable_degree};
use morpheus_corpus::gen::stencil::poisson2d;
use morpheus_machine::{analyze, systems, Backend, VirtualEngine};
use morpheus_ml::{Dataset, GbtParams};
use morpheus_oracle::adapt::{
    AdaptiveConfig, AdaptiveEngine, AdaptiveTuner, CollectorConfig, RetrainOutcome, SampleCollector,
};
use morpheus_oracle::params::{realize, strategies, ParamRegressor};
use morpheus_oracle::{heuristic_params, FeatureVector, Oracle, OracleService, RunFirstTuner, NUM_FEATURES};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

struct Case {
    name: String,
    family: &'static str,
    matrix: DynamicMatrix<f64>,
}

/// Three sizes per structural family: enough labeled samples per round for
/// the retrain to generalize, while every family keeps small members so
/// `--smoke` stays fast.
fn corpus(smoke: bool) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(41);
    let scale = |full: usize, small: usize| if smoke { small } else { full };
    let mut cases = Vec::new();
    let mut case = |name: String, family: &'static str, m: CooMatrix<f64>| {
        cases.push(Case { name, family, matrix: DynamicMatrix::from(m) })
    };
    let sizes =
        |full: [usize; 5], small: [usize; 5]| (0..5).map(move |i| scale(full[i], small[i])).enumerate();
    let small = [400usize, 700, 1_000, 1_300, 1_600];
    for (i, n) in sizes([6_000, 10_000, 16_000, 26_000, 40_000], small) {
        case(format!("tridiagonal-{i}"), "banded", tridiagonal(n));
    }
    for (i, n) in sizes([5_000, 8_000, 13_000, 20_000, 30_000], small) {
        case(format!("penta-diagonal-{i}"), "banded", multi_diagonal(n, 5, &mut rng));
    }
    for (i, n) in sizes([4_000, 7_000, 11_000, 17_000, 26_000], small) {
        case(format!("nona-diagonal-{i}"), "banded", multi_diagonal(n, 9, &mut rng));
    }
    for (i, n) in sizes([3_000, 5_000, 8_000, 12_000, 18_000], small) {
        case(format!("zipf-mid-{i}"), "powerlaw", zipf_rows(n, n * 6, 1.0, &mut rng));
    }
    for (i, n) in sizes([2_500, 4_000, 6_500, 10_000, 15_000], small) {
        case(format!("hub-{i}"), "powerlaw", hub_rows(n, 2, n / 3 + 1, n * 5, &mut rng));
    }
    for (i, n) in sizes([70, 100, 130, 160, 190], [16, 20, 24, 28, 32]) {
        case(format!("poisson2d-{i}"), "stencil", poisson2d(n, n));
    }
    for (i, n) in sizes([2_500, 4_000, 6_500, 10_000, 15_000], small) {
        case(format!("variable-degree-{i}"), "scattered", variable_degree(n, 1, 24, &mut rng));
    }
    for (i, n) in sizes([2_000, 3_200, 5_000, 8_000, 12_000], small) {
        case(format!("zipf-steep-{i}"), "powerlaw", zipf_rows(n, n * 5, 1.4, &mut rng));
    }
    cases
}

/// Tolerance for calling two formats measurement-equivalent: structurally
/// degenerate pairs (DIA vs HDC on a pure banded matrix, COO vs CSR on
/// uniform rows) execute the same work and flip winners on noise.
const TIE_TOLERANCE: f64 = 0.05;

/// Ground truth for one matrix: every viable format whose measured mean is
/// within [`TIE_TOLERANCE`] of the fastest, from `reps` timed serial SpMV
/// runs per format (independent of the telemetry the adaptation trains
/// on). The first entry is the outright fastest.
fn measured_fastest(engine: &VirtualEngine, m: &DynamicMatrix<f64>, reps: usize) -> Vec<FormatId> {
    let opts = morpheus::ConvertOptions::default();
    let view = analyze(m);
    let x: Vec<f64> = (0..m.ncols()).map(|i| 1.0 + (i % 13) as f64 * 0.25).collect();
    let mut y = vec![0.0f64; m.nrows()];
    // Materialize all formats, warm up, then interleave timed reps so
    // cache warmth doesn't bias later formats (mirrors the collector's
    // sweep methodology).
    let mut trials: Vec<(FormatId, DynamicMatrix<f64>, f64)> = Vec::new();
    for fmt in morpheus::FormatEntry::all().iter().map(|e| e.id) {
        if !engine.is_viable(fmt, &view) {
            continue;
        }
        let Ok(trial) = m.to_format(fmt, &opts) else { continue };
        morpheus::spmv::spmv_serial(&trial, &x, &mut y).expect("spmv");
        trials.push((fmt, trial, f64::INFINITY));
    }
    for _ in 0..reps {
        for (_, trial, best) in trials.iter_mut() {
            let t0 = Instant::now();
            morpheus::spmv::spmv_serial(trial, &x, &mut y).expect("spmv");
            *best = best.min(t0.elapsed().as_secs_f64());
        }
    }
    // Rank by the fastest observed run — the same robust estimator the
    // collector labels with.
    let mut bests: Vec<(FormatId, f64)> = trials.into_iter().map(|(f, _, best)| (f, best)).collect();
    bests.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
    let fastest = bests.first().expect("at least CSR is viable").1;
    bests
        .into_iter()
        .take_while(|(_, best)| *best <= fastest * (1.0 + TIE_TOLERANCE))
        .map(|(f, _)| f)
        .collect()
}

fn engine() -> VirtualEngine {
    VirtualEngine::new(systems::cirrus(), Backend::Serial)
}

// ---------------------------------------------------------------------------
// Parameter-regressor experiment (PR 9)
// ---------------------------------------------------------------------------

struct ParamCase {
    name: String,
    format: FormatId,
    matrix: DynamicMatrix<f64>,
}

/// Blocked + heavy-tail matrices whose best format *parameters* vary with
/// structure: aligned dense blocks at three block dims (the fixed 4x4
/// default matches only a third of them) and bimodal row populations (the
/// fixed pow2 ladder pads the narrow population).
fn param_corpus(smoke: bool) -> Vec<ParamCase> {
    let mut rng = StdRng::seed_from_u64(97);
    let scale = |full: usize, small: usize| if smoke { small } else { full };
    let mut cases = Vec::new();
    // BSR: five sizes per structural block dim, plus FEM-style coupling
    // at the extremes.
    for b in [2usize, 4, 8] {
        for (i, nb) in (0..5).map(|i| scale(600 + 420 * i, 40 + 18 * i)).enumerate() {
            let m = aligned_blocks(nb * 4 / b, b, 2, &mut rng);
            cases.push(ParamCase {
                name: format!("aligned-{b}x{b}-{i}"),
                format: FormatId::Bsr,
                matrix: DynamicMatrix::from(m),
            });
        }
    }
    for (i, nb) in (0..2).map(|i| scale(500 + 300 * i, 36 + 16 * i)).enumerate() {
        let m = fem_blocks(nb, 2, 2, &mut rng);
        cases.push(ParamCase {
            name: format!("fem-2x2-{i}"),
            format: FormatId::Bsr,
            matrix: DynamicMatrix::from(m),
        });
        let m = fem_blocks(nb / 2, 8, 1, &mut rng);
        cases.push(ParamCase {
            name: format!("fem-8x8-{i}"),
            format: FormatId::Bsr,
            matrix: DynamicMatrix::from(m),
        });
    }
    // BELL: bimodal populations with varying tail width/frequency, plus
    // uniform rows where the pow2 default is already near-optimal.
    for (i, (narrow, wide, every)) in
        [(2usize, 48usize, 32usize), (3, 64, 40), (5, 96, 64), (2, 96, 48), (3, 48, 64), (5, 64, 32)]
            .into_iter()
            .enumerate()
    {
        for (j, n) in (0..2).map(|j| scale(12_000 + 6_000 * j, 700 + 300 * j)).enumerate() {
            let m = bimodal_rows(n, narrow, wide, every, &mut rng);
            cases.push(ParamCase {
                name: format!("bimodal-{i}-{j}"),
                format: FormatId::Bell,
                matrix: DynamicMatrix::from(m),
            });
        }
    }
    for (i, per) in [4usize, 8, 16].into_iter().enumerate() {
        for (j, n) in (0..2).map(|j| scale(8_000 + 4_000 * j, 600 + 200 * j)).enumerate() {
            let m = uniform_degree(n, per, &mut rng);
            cases.push(ParamCase {
                name: format!("uniform-{i}-{j}"),
                format: FormatId::Bell,
                matrix: DynamicMatrix::from(m),
            });
        }
    }
    cases
}

/// Measured wall clock of every [`strategies`] entry for one matrix:
/// converts once per strategy, warms, then interleaves timed serial SpMV
/// reps (min-of-reps, the collector's estimator).
fn measure_strategies(
    format: FormatId,
    m: &DynamicMatrix<f64>,
    reps: usize,
) -> Option<(FeatureVector, Vec<f64>)> {
    let a = analyze(m);
    let fv = FeatureVector::from_stats(&a.stats);
    let x: Vec<f64> = (0..m.ncols()).map(|i| 1.0 + (i % 11) as f64 * 0.5).collect();
    let mut y = vec![0.0f64; m.nrows()];
    let mut trials = Vec::new();
    for &s in strategies(format) {
        let opts = ConvertOptions { params: realize(s, &a), ..Default::default() };
        let trial = m.to_format(format, &opts).ok()?;
        morpheus::spmv::spmv_serial(&trial, &x, &mut y).ok()?;
        trials.push((trial, f64::INFINITY));
    }
    for _ in 0..reps {
        for (trial, best) in trials.iter_mut() {
            let t0 = Instant::now();
            morpheus::spmv::spmv_serial(trial, &x, &mut y).expect("spmv");
            *best = best.min(t0.elapsed().as_secs_f64());
        }
    }
    Some((fv, trials.into_iter().map(|(_, best)| best).collect()))
}

struct ParamExperiment {
    samples: usize,
    holdout: usize,
    hit_rate: f64,
    geo_default_over_regressed: f64,
    geo_heuristic_over_regressed: f64,
    lines: Vec<String>,
}

/// Train/holdout evaluation of the GBT parameter regressor per format:
/// even-indexed samples train (labels = measured-fastest strategy), odd
/// indices evaluate. The regressor's chosen strategy is compared against
/// the fixed defaults and the analytical heuristic by measured time.
fn param_experiment(cases: &[ParamCase], reps: usize) -> ParamExperiment {
    let mut hit = 0usize;
    let mut holdout = 0usize;
    let mut ln_default = 0.0f64;
    let mut ln_heuristic = 0.0f64;
    let mut lines = Vec::new();
    let mut samples = 0usize;
    for format in [FormatId::Bsr, FormatId::Bell] {
        let ss = strategies(format);
        let measured: Vec<(String, FeatureVector, Vec<f64>, usize, usize)> = cases
            .iter()
            .filter(|c| c.format == format)
            .filter_map(|c| {
                let (fv, times) = measure_strategies(format, &c.matrix, reps)?;
                let a = analyze(&c.matrix);
                let default_idx =
                    ss.iter().position(|&s| realize(s, &a) == morpheus::FormatParams::default()).unwrap_or(0);
                let heur = heuristic_params(format, &a);
                let heur_idx = ss.iter().position(|&s| realize(s, &a) == heur).unwrap_or(default_idx);
                Some((c.name.clone(), fv, times, default_idx, heur_idx))
            })
            .collect();
        samples += measured.len();
        let train: Vec<(FeatureVector, usize)> =
            measured.iter().step_by(2).map(|(_, fv, times, _, _)| (*fv, argmin(times))).collect();
        let Ok(reg) = ParamRegressor::fit(format, &train, &GbtParams::default()) else {
            continue;
        };
        for (name, fv, times, default_idx, heur_idx) in measured.iter().skip(1).step_by(2) {
            let pred = ss.iter().position(|&s| s == reg.predict_strategy(fv)).unwrap_or(0);
            let best = argmin(times);
            holdout += 1;
            if times[pred] <= times[best] * (1.0 + TIE_TOLERANCE) {
                hit += 1;
            }
            ln_default += (times[*default_idx] / times[pred]).ln();
            ln_heuristic += (times[*heur_idx] / times[pred]).ln();
            lines.push(format!(
                "{{\"name\": \"{}\", \"format\": \"{}\", \"best\": {best}, \"regressed\": {pred}, \
                 \"default_over_regressed\": {:.4}, \"heuristic_over_regressed\": {:.4}}}",
                json_escape(name),
                format.name(),
                times[*default_idx] / times[pred],
                times[*heur_idx] / times[pred],
            ));
        }
    }
    let n = holdout.max(1) as f64;
    ParamExperiment {
        samples,
        holdout,
        hit_rate: hit as f64 / n,
        geo_default_over_regressed: (ln_default / n).exp(),
        geo_heuristic_over_regressed: (ln_heuristic / n).exp(),
        lines,
    }
}

fn argmin(times: &[f64]) -> usize {
    times
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

type Service = OracleService<AdaptiveTuner<RunFirstTuner>>;

fn build_service(collector: Option<&Arc<SampleCollector>>) -> Arc<Service> {
    let mut builder = Oracle::builder().engine(engine()).tuner(AdaptiveTuner::new(RunFirstTuner::new(1)));
    if let Some(c) = collector {
        builder = builder.collector(Arc::clone(c));
    }
    Arc::new(builder.build_service().expect("engine and tuner set"))
}

/// Warm registered-path throughput (req/s) over the corpus.
fn registered_rps(service: &Service, matrices: &[DynamicMatrix<f64>], iters: usize) -> f64 {
    let handles: Vec<_> = matrices.iter().map(|m| service.register(m.clone()).expect("register")).collect();
    let inputs: Vec<Vec<f64>> =
        matrices.iter().map(|m| (0..m.ncols()).map(|i| 1.0 + (i % 7) as f64).collect()).collect();
    let mut outs: Vec<Vec<f64>> = matrices.iter().map(|m| vec![0.0; m.nrows()]).collect();
    // Warmup pass.
    for (i, h) in handles.iter().enumerate() {
        service.spmv(h, &inputs[i], &mut outs[i]).expect("spmv");
    }
    let t0 = Instant::now();
    let mut requests = 0u64;
    for _ in 0..iters {
        for (i, h) in handles.iter().enumerate() {
            service.spmv(h, &inputs[i], &mut outs[i]).expect("spmv");
            requests += 1;
        }
    }
    requests as f64 / t0.elapsed().as_secs_f64()
}

fn quality(
    service: &Service,
    matrices: &[DynamicMatrix<f64>],
    truth: &[Vec<FormatId>],
) -> (f64, Vec<FormatId>) {
    let mut chosen = Vec::with_capacity(matrices.len());
    for m in matrices {
        let mut fresh = m.clone();
        let report = service.tune(&mut fresh).expect("tune");
        chosen.push(report.chosen);
    }
    let hits = chosen.iter().zip(truth).filter(|(c, t)| t.contains(c)).count();
    (hits as f64 / matrices.len() as f64, chosen)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_adapt.json".to_string());
    let rounds: usize = args
        .iter()
        .position(|a| a == "--rounds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let gt_reps = if smoke { 3 } else { 12 };
    let rps_iters = if smoke { 20 } else { 300 };
    let serve_iters = if smoke { 4 } else { 16 };

    let cases = corpus(smoke);
    let matrices: Vec<DynamicMatrix<f64>> = cases.iter().map(|c| c.matrix.clone()).collect();
    let eng = engine();

    // ---- ground truth: measured-fastest format per matrix ----
    let truth: Vec<Vec<FormatId>> = matrices.iter().map(|m| measured_fastest(&eng, m, gt_reps)).collect();
    let truth_names: Vec<String> =
        truth.iter().map(|t| t.iter().map(|f| f.name()).collect::<Vec<_>>().join("|")).collect();

    // ---- telemetry overhead: collector attached vs not ----
    // Alternate the two services and keep each one's best pass, so drift
    // in machine load hits both sides instead of whichever ran second.
    let plain_service = build_service(None);
    let collector = Arc::new(SampleCollector::new(CollectorConfig::default()));
    let service = build_service(Some(&collector));
    let (mut rps_plain, mut rps_before) = (0.0f64, 0.0f64);
    for _ in 0..3 {
        rps_plain = rps_plain.max(registered_rps(&plain_service, &matrices, rps_iters));
        rps_before = rps_before.max(registered_rps(&service, &matrices, rps_iters));
    }
    let overhead_ratio = rps_before / rps_plain;

    // ---- baseline quality: the analytical fallback decides ----
    let (quality_analytical, chosen_analytical) = quality(&service, &matrices, &truth);

    // ---- adaptation rounds: sweep + serve + retrain ----
    let adapt = AdaptiveEngine::new(
        Arc::clone(&service),
        AdaptiveConfig {
            accuracy_floor: 0.45,
            min_samples: cases.len().min(6),
            sweep_reps: if smoke { 3 } else { 8 },
            ..Default::default()
        },
    )
    .expect("collector attached");
    let mut round_lines = Vec::new();
    for r in 0..rounds.max(2) {
        for m in &matrices {
            adapt.sweep(m).expect("sweep");
            // Some serving traffic on top of the sweeps.
            let handle = service.register(m.clone()).expect("register");
            let x: Vec<f64> = (0..m.ncols()).map(|i| (i % 5) as f64).collect();
            let mut y = vec![0.0; m.nrows()];
            for _ in 0..serve_iters {
                service.spmv(&handle, &x, &mut y).expect("spmv");
            }
        }
        let report = adapt.round().expect("round");
        round_lines.push(format!(
            "{{\"round\": {r}, \"samples\": {}, \"outcome\": \"{}\", \"candidate_accuracy\": {}, \"measured_seconds\": {:.6}}}",
            report.samples,
            match &report.outcome {
                RetrainOutcome::Swapped { .. } => "swapped",
                RetrainOutcome::Retained => "retained",
                RetrainOutcome::FellBack { .. } => "fell_back",
                RetrainOutcome::Skipped { .. } => "skipped",
            },
            report.candidate_accuracy.map_or("null".into(), |a| format!("{a:.4}")),
            report.measured_seconds,
        ));
        println!(
            "round {r}: {} samples -> {:?} (candidate accuracy {:?})",
            report.samples, report.outcome, report.candidate_accuracy
        );
    }
    let adapted_epoch = service.tuner().epoch();

    // ---- adapted quality and post-adaptation throughput ----
    let (quality_adapted, chosen_adapted) = quality(&service, &matrices, &truth);
    let rps_after = registered_rps(&service, &matrices, rps_iters);

    // ---- parameter regressor: learned FormatParams vs fixed defaults ----
    let param_cases = param_corpus(smoke);
    let pexp = param_experiment(&param_cases, if smoke { 3 } else { 8 });

    // ---- forced drift: conflicting labels must trigger the fallback ----
    let mut drifted = Dataset::empty(NUM_FEATURES, 6, vec![]).unwrap();
    let row = [700.0, 700.0, 3500.0, 5.0, 0.007, 28.0, 1.0, 2.0, 21.0, 0.0, 0.3, 0.4];
    for i in 0..30 {
        drifted.push(&row, i % 6).unwrap();
    }
    let drift_report = adapt.round_with(drifted).expect("drift round");
    let drift_fell_back = matches!(drift_report.outcome, RetrainOutcome::FellBack { .. });
    // No restart: the same service answers the next request analytically.
    let mut probe = matrices[0].clone();
    service.tune(&mut probe).expect("post-drift tune");

    // ---- report ----
    let stats = collector.stats();
    println!();
    println!("adaptive benchmark: {} matrices, {} adaptation rounds", cases.len(), rounds.max(2));
    println!(
        "telemetry overhead: {rps_plain:.0} req/s plain vs {rps_before:.0} req/s with collector \
         ({:.2}% delta)",
        (overhead_ratio - 1.0) * 100.0
    );
    println!();
    println!("{:<18} {:>12} {:>12} {:>10}", "matrix", "truth", "analytical", "adapted");
    for (i, case) in cases.iter().enumerate() {
        println!(
            "{:<18} {:>12} {:>12} {:>10}",
            case.name,
            truth_names[i],
            chosen_analytical[i].name(),
            chosen_adapted[i].name()
        );
    }
    println!();
    println!("decision quality (fraction measured-fastest): analytical {quality_analytical:.3}, adapted {quality_adapted:.3}");
    println!(
        "registered-path throughput: {rps_before:.0} req/s before, {rps_after:.0} req/s after adaptation"
    );
    println!("sweep seconds charged: {:.4}", stats.measured_seconds);
    println!(
        "format parameters: {} samples, {} holdout; regressed strategy hit rate {:.3}; \
         geomean speedup over fixed defaults {:.3}x, over analytical heuristic {:.3}x",
        pexp.samples,
        pexp.holdout,
        pexp.hit_rate,
        pexp.geo_default_over_regressed,
        pexp.geo_heuristic_over_regressed
    );
    println!("forced drift -> {:?} (fallback without restart: {drift_fell_back})", drift_report.outcome);

    // ---- snapshot ----
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_adapt/v2\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"rounds\": {},\n", rounds.max(2)));
    json.push_str(&format!(
        "  \"corpus\": [{}],\n",
        cases
            .iter()
            .map(|c| format!("{{\"name\": \"{}\", \"family\": \"{}\"}}", json_escape(&c.name), c.family))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"telemetry_overhead_rps_ratio\": {overhead_ratio:.4},\n"));
    json.push_str(&format!("  \"quality_analytical\": {quality_analytical:.4},\n"));
    json.push_str(&format!("  \"quality_adapted\": {quality_adapted:.4},\n"));
    json.push_str(&format!("  \"rps_before_adaptation\": {rps_before:.1},\n"));
    json.push_str(&format!("  \"rps_after_adaptation\": {rps_after:.1},\n"));
    json.push_str(&format!("  \"adapted_epoch\": {adapted_epoch},\n"));
    json.push_str(&format!("  \"sweep_seconds\": {:.6},\n", stats.measured_seconds));
    json.push_str(&format!(
        "  \"telemetry\": {{\"recorded\": {}, \"dropped\": {}, \"slots_used\": {}, \"capacity\": {}}},\n",
        stats.telemetry.recorded,
        stats.telemetry.dropped,
        stats.telemetry.slots_used,
        stats.telemetry.capacity
    ));
    json.push_str(&format!("  \"drift_fell_back\": {drift_fell_back},\n"));
    json.push_str(&format!(
        "  \"param_experiment\": {{\"samples\": {}, \"holdout\": {}, \"hit_rate\": {:.4}, \
         \"geomean_default_over_regressed\": {:.4}, \"geomean_heuristic_over_regressed\": {:.4}, \
         \"holdout_detail\": [\n",
        pexp.samples,
        pexp.holdout,
        pexp.hit_rate,
        pexp.geo_default_over_regressed,
        pexp.geo_heuristic_over_regressed
    ));
    for (i, line) in pexp.lines.iter().enumerate() {
        json.push_str(&format!("    {line}{}\n", if i + 1 < pexp.lines.len() { "," } else { "" }));
    }
    json.push_str("  ]},\n");
    json.push_str("  \"decisions\": [\n");
    for (i, case) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"truth\": \"{}\", \"analytical\": \"{}\", \"adapted\": \"{}\"}}{}\n",
            json_escape(&case.name),
            truth_names[i],
            chosen_analytical[i].name(),
            chosen_adapted[i].name(),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"rounds_detail\": [\n");
    for (i, line) in round_lines.iter().enumerate() {
        json.push_str(&format!("    {line}{}\n", if i + 1 < round_lines.len() { "," } else { "" }));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("snapshot written to {out_path}");
}
