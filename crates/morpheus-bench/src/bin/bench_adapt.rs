//! Adaptive-learning benchmark with a machine-readable snapshot.
//!
//! Measures the claims the `adapt` subsystem makes, on a mixed banded +
//! powerlaw + stencil + scattered corpus:
//!
//! * **telemetry overhead**: warm registered-path throughput with the
//!   collector attached but retraining idle, vs an identical service
//!   without a collector (the budget: < 2% regression);
//! * **decision quality**: fraction of matrices assigned their
//!   *measured*-fastest format (ground truth from independent timed serial
//!   runs of every viable format), for the shipped analytical tuner vs the
//!   model adapted online over `--rounds` sweep + retrain rounds;
//! * **drift**: a forced-drift round (irreducibly conflicting labels) must
//!   trigger the fallback to the analytical tuner without a service
//!   restart.
//!
//! Results go to stdout and `BENCH_adapt.json` (override with `--out`).
//! `--smoke` shrinks sizes for CI.

use morpheus::format::{FormatId, ALL_FORMATS};
use morpheus::{CooMatrix, DynamicMatrix};
use morpheus_bench::report::json_escape;
use morpheus_corpus::gen::banded::{multi_diagonal, tridiagonal};
use morpheus_corpus::gen::powerlaw::{hub_rows, zipf_rows};
use morpheus_corpus::gen::random::variable_degree;
use morpheus_corpus::gen::stencil::poisson2d;
use morpheus_machine::{analyze, systems, Backend, VirtualEngine};
use morpheus_ml::Dataset;
use morpheus_oracle::adapt::{
    AdaptiveConfig, AdaptiveEngine, AdaptiveTuner, CollectorConfig, RetrainOutcome, SampleCollector,
};
use morpheus_oracle::{Oracle, OracleService, RunFirstTuner, NUM_FEATURES};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

struct Case {
    name: String,
    family: &'static str,
    matrix: DynamicMatrix<f64>,
}

/// Three sizes per structural family: enough labeled samples per round for
/// the retrain to generalize, while every family keeps small members so
/// `--smoke` stays fast.
fn corpus(smoke: bool) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(41);
    let scale = |full: usize, small: usize| if smoke { small } else { full };
    let mut cases = Vec::new();
    let mut case = |name: String, family: &'static str, m: CooMatrix<f64>| {
        cases.push(Case { name, family, matrix: DynamicMatrix::from(m) })
    };
    let sizes =
        |full: [usize; 5], small: [usize; 5]| (0..5).map(move |i| scale(full[i], small[i])).enumerate();
    let small = [400usize, 700, 1_000, 1_300, 1_600];
    for (i, n) in sizes([6_000, 10_000, 16_000, 26_000, 40_000], small) {
        case(format!("tridiagonal-{i}"), "banded", tridiagonal(n));
    }
    for (i, n) in sizes([5_000, 8_000, 13_000, 20_000, 30_000], small) {
        case(format!("penta-diagonal-{i}"), "banded", multi_diagonal(n, 5, &mut rng));
    }
    for (i, n) in sizes([4_000, 7_000, 11_000, 17_000, 26_000], small) {
        case(format!("nona-diagonal-{i}"), "banded", multi_diagonal(n, 9, &mut rng));
    }
    for (i, n) in sizes([3_000, 5_000, 8_000, 12_000, 18_000], small) {
        case(format!("zipf-mid-{i}"), "powerlaw", zipf_rows(n, n * 6, 1.0, &mut rng));
    }
    for (i, n) in sizes([2_500, 4_000, 6_500, 10_000, 15_000], small) {
        case(format!("hub-{i}"), "powerlaw", hub_rows(n, 2, n / 3 + 1, n * 5, &mut rng));
    }
    for (i, n) in sizes([70, 100, 130, 160, 190], [16, 20, 24, 28, 32]) {
        case(format!("poisson2d-{i}"), "stencil", poisson2d(n, n));
    }
    for (i, n) in sizes([2_500, 4_000, 6_500, 10_000, 15_000], small) {
        case(format!("variable-degree-{i}"), "scattered", variable_degree(n, 1, 24, &mut rng));
    }
    for (i, n) in sizes([2_000, 3_200, 5_000, 8_000, 12_000], small) {
        case(format!("zipf-steep-{i}"), "powerlaw", zipf_rows(n, n * 5, 1.4, &mut rng));
    }
    cases
}

/// Tolerance for calling two formats measurement-equivalent: structurally
/// degenerate pairs (DIA vs HDC on a pure banded matrix, COO vs CSR on
/// uniform rows) execute the same work and flip winners on noise.
const TIE_TOLERANCE: f64 = 0.05;

/// Ground truth for one matrix: every viable format whose measured mean is
/// within [`TIE_TOLERANCE`] of the fastest, from `reps` timed serial SpMV
/// runs per format (independent of the telemetry the adaptation trains
/// on). The first entry is the outright fastest.
fn measured_fastest(engine: &VirtualEngine, m: &DynamicMatrix<f64>, reps: usize) -> Vec<FormatId> {
    let opts = morpheus::ConvertOptions::default();
    let view = analyze(m);
    let x: Vec<f64> = (0..m.ncols()).map(|i| 1.0 + (i % 13) as f64 * 0.25).collect();
    let mut y = vec![0.0f64; m.nrows()];
    // Materialize all formats, warm up, then interleave timed reps so
    // cache warmth doesn't bias later formats (mirrors the collector's
    // sweep methodology).
    let mut trials: Vec<(FormatId, DynamicMatrix<f64>, f64)> = Vec::new();
    for fmt in ALL_FORMATS {
        if !engine.is_viable(fmt, &view) {
            continue;
        }
        let Ok(trial) = m.to_format(fmt, &opts) else { continue };
        morpheus::spmv::spmv_serial(&trial, &x, &mut y).expect("spmv");
        trials.push((fmt, trial, f64::INFINITY));
    }
    for _ in 0..reps {
        for (_, trial, best) in trials.iter_mut() {
            let t0 = Instant::now();
            morpheus::spmv::spmv_serial(trial, &x, &mut y).expect("spmv");
            *best = best.min(t0.elapsed().as_secs_f64());
        }
    }
    // Rank by the fastest observed run — the same robust estimator the
    // collector labels with.
    let mut bests: Vec<(FormatId, f64)> = trials.into_iter().map(|(f, _, best)| (f, best)).collect();
    bests.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
    let fastest = bests.first().expect("at least CSR is viable").1;
    bests
        .into_iter()
        .take_while(|(_, best)| *best <= fastest * (1.0 + TIE_TOLERANCE))
        .map(|(f, _)| f)
        .collect()
}

fn engine() -> VirtualEngine {
    VirtualEngine::new(systems::cirrus(), Backend::Serial)
}

type Service = OracleService<AdaptiveTuner<RunFirstTuner>>;

fn build_service(collector: Option<&Arc<SampleCollector>>) -> Arc<Service> {
    let mut builder = Oracle::builder().engine(engine()).tuner(AdaptiveTuner::new(RunFirstTuner::new(1)));
    if let Some(c) = collector {
        builder = builder.collector(Arc::clone(c));
    }
    Arc::new(builder.build_service().expect("engine and tuner set"))
}

/// Warm registered-path throughput (req/s) over the corpus.
fn registered_rps(service: &Service, matrices: &[DynamicMatrix<f64>], iters: usize) -> f64 {
    let handles: Vec<_> = matrices.iter().map(|m| service.register(m.clone()).expect("register")).collect();
    let inputs: Vec<Vec<f64>> =
        matrices.iter().map(|m| (0..m.ncols()).map(|i| 1.0 + (i % 7) as f64).collect()).collect();
    let mut outs: Vec<Vec<f64>> = matrices.iter().map(|m| vec![0.0; m.nrows()]).collect();
    // Warmup pass.
    for (i, h) in handles.iter().enumerate() {
        service.spmv(h, &inputs[i], &mut outs[i]).expect("spmv");
    }
    let t0 = Instant::now();
    let mut requests = 0u64;
    for _ in 0..iters {
        for (i, h) in handles.iter().enumerate() {
            service.spmv(h, &inputs[i], &mut outs[i]).expect("spmv");
            requests += 1;
        }
    }
    requests as f64 / t0.elapsed().as_secs_f64()
}

fn quality(
    service: &Service,
    matrices: &[DynamicMatrix<f64>],
    truth: &[Vec<FormatId>],
) -> (f64, Vec<FormatId>) {
    let mut chosen = Vec::with_capacity(matrices.len());
    for m in matrices {
        let mut fresh = m.clone();
        let report = service.tune(&mut fresh).expect("tune");
        chosen.push(report.chosen);
    }
    let hits = chosen.iter().zip(truth).filter(|(c, t)| t.contains(c)).count();
    (hits as f64 / matrices.len() as f64, chosen)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_adapt.json".to_string());
    let rounds: usize = args
        .iter()
        .position(|a| a == "--rounds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let gt_reps = if smoke { 3 } else { 12 };
    let rps_iters = if smoke { 20 } else { 300 };
    let serve_iters = if smoke { 4 } else { 16 };

    let cases = corpus(smoke);
    let matrices: Vec<DynamicMatrix<f64>> = cases.iter().map(|c| c.matrix.clone()).collect();
    let eng = engine();

    // ---- ground truth: measured-fastest format per matrix ----
    let truth: Vec<Vec<FormatId>> = matrices.iter().map(|m| measured_fastest(&eng, m, gt_reps)).collect();
    let truth_names: Vec<String> =
        truth.iter().map(|t| t.iter().map(|f| f.name()).collect::<Vec<_>>().join("|")).collect();

    // ---- telemetry overhead: collector attached vs not ----
    // Alternate the two services and keep each one's best pass, so drift
    // in machine load hits both sides instead of whichever ran second.
    let plain_service = build_service(None);
    let collector = Arc::new(SampleCollector::new(CollectorConfig::default()));
    let service = build_service(Some(&collector));
    let (mut rps_plain, mut rps_before) = (0.0f64, 0.0f64);
    for _ in 0..3 {
        rps_plain = rps_plain.max(registered_rps(&plain_service, &matrices, rps_iters));
        rps_before = rps_before.max(registered_rps(&service, &matrices, rps_iters));
    }
    let overhead_ratio = rps_before / rps_plain;

    // ---- baseline quality: the analytical fallback decides ----
    let (quality_analytical, chosen_analytical) = quality(&service, &matrices, &truth);

    // ---- adaptation rounds: sweep + serve + retrain ----
    let adapt = AdaptiveEngine::new(
        Arc::clone(&service),
        AdaptiveConfig {
            accuracy_floor: 0.45,
            min_samples: cases.len().min(6),
            sweep_reps: if smoke { 3 } else { 8 },
            ..Default::default()
        },
    )
    .expect("collector attached");
    let mut round_lines = Vec::new();
    for r in 0..rounds.max(2) {
        for m in &matrices {
            adapt.sweep(m).expect("sweep");
            // Some serving traffic on top of the sweeps.
            let handle = service.register(m.clone()).expect("register");
            let x: Vec<f64> = (0..m.ncols()).map(|i| (i % 5) as f64).collect();
            let mut y = vec![0.0; m.nrows()];
            for _ in 0..serve_iters {
                service.spmv(&handle, &x, &mut y).expect("spmv");
            }
        }
        let report = adapt.round().expect("round");
        round_lines.push(format!(
            "{{\"round\": {r}, \"samples\": {}, \"outcome\": \"{}\", \"candidate_accuracy\": {}, \"measured_seconds\": {:.6}}}",
            report.samples,
            match &report.outcome {
                RetrainOutcome::Swapped { .. } => "swapped",
                RetrainOutcome::Retained => "retained",
                RetrainOutcome::FellBack { .. } => "fell_back",
                RetrainOutcome::Skipped { .. } => "skipped",
            },
            report.candidate_accuracy.map_or("null".into(), |a| format!("{a:.4}")),
            report.measured_seconds,
        ));
        println!(
            "round {r}: {} samples -> {:?} (candidate accuracy {:?})",
            report.samples, report.outcome, report.candidate_accuracy
        );
    }
    let adapted_epoch = service.tuner().epoch();

    // ---- adapted quality and post-adaptation throughput ----
    let (quality_adapted, chosen_adapted) = quality(&service, &matrices, &truth);
    let rps_after = registered_rps(&service, &matrices, rps_iters);

    // ---- forced drift: conflicting labels must trigger the fallback ----
    let mut drifted = Dataset::empty(NUM_FEATURES, 6, vec![]).unwrap();
    let row = [700.0, 700.0, 3500.0, 5.0, 0.007, 28.0, 1.0, 2.0, 21.0, 0.0];
    for i in 0..30 {
        drifted.push(&row, i % 6).unwrap();
    }
    let drift_report = adapt.round_with(drifted).expect("drift round");
    let drift_fell_back = matches!(drift_report.outcome, RetrainOutcome::FellBack { .. });
    // No restart: the same service answers the next request analytically.
    let mut probe = matrices[0].clone();
    service.tune(&mut probe).expect("post-drift tune");

    // ---- report ----
    let stats = collector.stats();
    println!();
    println!("adaptive benchmark: {} matrices, {} adaptation rounds", cases.len(), rounds.max(2));
    println!(
        "telemetry overhead: {rps_plain:.0} req/s plain vs {rps_before:.0} req/s with collector \
         ({:.2}% delta)",
        (overhead_ratio - 1.0) * 100.0
    );
    println!();
    println!("{:<18} {:>12} {:>12} {:>10}", "matrix", "truth", "analytical", "adapted");
    for (i, case) in cases.iter().enumerate() {
        println!(
            "{:<18} {:>12} {:>12} {:>10}",
            case.name,
            truth_names[i],
            chosen_analytical[i].name(),
            chosen_adapted[i].name()
        );
    }
    println!();
    println!("decision quality (fraction measured-fastest): analytical {quality_analytical:.3}, adapted {quality_adapted:.3}");
    println!(
        "registered-path throughput: {rps_before:.0} req/s before, {rps_after:.0} req/s after adaptation"
    );
    println!("sweep seconds charged: {:.4}", stats.measured_seconds);
    println!("forced drift -> {:?} (fallback without restart: {drift_fell_back})", drift_report.outcome);

    // ---- snapshot ----
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_adapt/v1\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"rounds\": {},\n", rounds.max(2)));
    json.push_str(&format!(
        "  \"corpus\": [{}],\n",
        cases
            .iter()
            .map(|c| format!("{{\"name\": \"{}\", \"family\": \"{}\"}}", json_escape(&c.name), c.family))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"telemetry_overhead_rps_ratio\": {overhead_ratio:.4},\n"));
    json.push_str(&format!("  \"quality_analytical\": {quality_analytical:.4},\n"));
    json.push_str(&format!("  \"quality_adapted\": {quality_adapted:.4},\n"));
    json.push_str(&format!("  \"rps_before_adaptation\": {rps_before:.1},\n"));
    json.push_str(&format!("  \"rps_after_adaptation\": {rps_after:.1},\n"));
    json.push_str(&format!("  \"adapted_epoch\": {adapted_epoch},\n"));
    json.push_str(&format!("  \"sweep_seconds\": {:.6},\n", stats.measured_seconds));
    json.push_str(&format!(
        "  \"telemetry\": {{\"recorded\": {}, \"dropped\": {}, \"slots_used\": {}, \"capacity\": {}}},\n",
        stats.telemetry.recorded,
        stats.telemetry.dropped,
        stats.telemetry.slots_used,
        stats.telemetry.capacity
    ));
    json.push_str(&format!("  \"drift_fell_back\": {drift_fell_back},\n"));
    json.push_str("  \"decisions\": [\n");
    for (i, case) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"truth\": \"{}\", \"analytical\": \"{}\", \"adapted\": \"{}\"}}{}\n",
            json_escape(&case.name),
            truth_names[i],
            chosen_analytical[i].name(),
            chosen_adapted[i].name(),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"rounds_detail\": [\n");
    for (i, line) in round_lines.iter().enumerate() {
        json.push_str(&format!("    {line}{}\n", if i + 1 < round_lines.len() { "," } else { "" }));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write snapshot");
    println!("snapshot written to {out_path}");
}
