//! Ablation studies beyond the paper's tables:
//!
//! 1. **Feature importances** per backend class (which of Table I's
//!    features carry the decision — §IV-A's rationale, checked);
//! 2. **Model family comparison**: tuned decision tree vs random forest vs
//!    gradient-boosted trees (§IX names GBTs as future work);
//! 3. **Corpus-size sweep**: accuracy as a function of training-set size
//!    (how many profiled matrices the offline stage actually needs);
//! 4. **Tuner trade-off** (§VI-A): decision cost vs achieved speedup for
//!    run-first / tree / forest on one pair.

use morpheus_bench::report::Table;
use morpheus_bench::{cache_dir_from_env, corpus_spec_from_env, pipeline};
use morpheus_machine::VirtualEngine;
use morpheus_ml::metrics::{accuracy, balanced_accuracy};
use morpheus_ml::{DecisionTree, GbtParams, GradientBoostedTrees, RandomForest, TreeParams};
use morpheus_oracle::{DecisionTreeTuner, Oracle, RunFirstTuner, FEATURE_NAMES};

const REPS: f64 = 1000.0;

fn main() {
    let spec = corpus_spec_from_env();
    let cache = cache_dir_from_env();
    let pc = pipeline::profile_corpus_cached(&spec, &cache);
    let n_classes = morpheus::format::FORMAT_COUNT;

    // ------------------------------------------------------------------
    println!("== Ablation 1: random-forest feature importances ==\n");
    let mut t = Table::new(&{
        let mut h = vec!["system/backend"];
        h.extend(FEATURE_NAMES.iter());
        h
    });
    for pi in 0..pc.pairs.len() {
        // Fit fresh (importances live in training-time statistics).
        let train = pipeline::dataset_for_pair(&pc, pi, false);
        let forest = RandomForest::fit(
            &train,
            &morpheus_ml::ForestParams { n_estimators: 30, seed: spec.seed, ..Default::default() },
        )
        .expect("forest fit");
        let imp = forest.feature_importances();
        let mut row = vec![pc.pairs[pi].label()];
        row.extend(imp.iter().map(|v| format!("{:.3}", v)));
        t.row(row);
    }
    println!("{}", t.render());

    // ------------------------------------------------------------------
    println!("== Ablation 2: model families (test accuracy / balanced accuracy, %) ==\n");
    let mut t = Table::new(&["system/backend", "tree", "forest", "gbt"]);
    for pi in 0..pc.pairs.len() {
        let train = pipeline::dataset_for_pair(&pc, pi, false);
        let test = pipeline::dataset_for_pair(&pc, pi, true);
        let seed = spec.seed ^ pi as u64;

        let tree = DecisionTree::fit(&train, &TreeParams { max_depth: Some(16), seed, ..Default::default() })
            .expect("tree fit");
        let forest = pipeline::tuned_forest_cached(&pc, pi, &spec, &cache).model;
        let gbt = GradientBoostedTrees::fit(&train, &GbtParams { n_rounds: 40, ..Default::default() })
            .expect("gbt fit");

        let score = |preds: &[usize]| {
            format!(
                "{:.1}/{:.1}",
                100.0 * accuracy(test.targets(), preds),
                100.0 * balanced_accuracy(test.targets(), preds, n_classes)
            )
        };
        t.row(vec![
            pc.pairs[pi].label(),
            score(&tree.predict_dataset(&test)),
            score(&forest.predict_dataset(&test)),
            score(&gbt.predict_dataset(&test)),
        ]);
    }
    println!("{}", t.render());

    // ------------------------------------------------------------------
    println!("== Ablation 3: training-set size sweep (P3/CUDA) ==\n");
    let pi = pc.pair_index("P3/CUDA").expect("pair exists");
    let train_full = pipeline::dataset_for_pair(&pc, pi, false);
    let test = pipeline::dataset_for_pair(&pc, pi, true);
    let mut t = Table::new(&["train size", "accuracy %", "balanced accuracy %"]);
    for frac in [0.1, 0.25, 0.5, 1.0] {
        let keep = ((train_full.len() as f64 * frac) as usize).max(20);
        let idx: Vec<usize> = (0..keep.min(train_full.len())).collect();
        let sub = train_full.subset(&idx);
        let model = RandomForest::fit(
            &sub,
            &morpheus_ml::ForestParams { n_estimators: 40, seed: spec.seed, ..Default::default() },
        )
        .expect("forest fit");
        let preds = model.predict_dataset(&test);
        t.row(vec![
            sub.len().to_string(),
            format!("{:.2}", 100.0 * accuracy(test.targets(), &preds)),
            format!("{:.2}", 100.0 * balanced_accuracy(test.targets(), &preds, n_classes)),
        ]);
    }
    println!("{}", t.render());

    // ------------------------------------------------------------------
    println!("== Ablation 4: tuner trade-off on Cirrus/CUDA (§VI-A) ==\n");
    let pi = pc.pair_index("Cirrus/CUDA").expect("pair exists");
    let engine = VirtualEngine::for_pair(&pc.pairs[pi]);
    let train = pipeline::dataset_for_pair(&pc, pi, false);
    let tree =
        DecisionTree::fit(&train, &TreeParams { max_depth: Some(16), seed: spec.seed, ..Default::default() })
            .expect("tree fit");

    // Every strategy runs through the same session facade, so decision
    // costs (conversions + trials for run-first, T_FE + T_PRED for the ML
    // tuners) come from the Oracle's own accounting.
    let mut t = Table::new(&[
        "tuner",
        "mean decision cost (CSR SpMVs)",
        "mean tuned speedup",
        "selection accuracy %",
    ]);
    let evaluate =
        |name: &str, decide: &mut dyn FnMut(usize) -> morpheus_oracle::TuneReport| -> Vec<String> {
            let mut costs = Vec::new();
            let mut speedups = Vec::new();
            let mut hits = 0usize;
            let mut n = 0usize;
            for e in pc.split(true) {
                let profile = &e.profiles[pi];
                let t_csr = profile.csr_time();
                let report = decide(e.id);
                let t_run = profile.times[report.chosen.index()].unwrap_or(t_csr);
                let cost = report.cost.total();
                costs.push(cost / t_csr);
                speedups.push(REPS * t_csr / (cost + REPS * t_run));
                hits += usize::from(report.chosen == profile.optimal);
                n += 1;
            }
            vec![
                name.to_string(),
                format!("{:.0}", costs.iter().sum::<f64>() / costs.len() as f64),
                format!("{:.2}", speedups.iter().sum::<f64>() / speedups.len() as f64),
                format!("{:.1}", 100.0 * hits as f64 / n as f64),
            ]
        };

    // Run-first: pays conversions + 10 trial iterations per viable format,
    // always lands on the optimum.
    let mut run_first =
        Oracle::builder().engine(engine.clone()).tuner(RunFirstTuner::new(10)).build().expect("configured");
    t.row(evaluate("run-first(10)", &mut |id| {
        run_first.tune(&mut pipeline::matrix_in_csr(&spec, id)).expect("tune")
    }));

    let mut tree_session = Oracle::builder()
        .engine(engine.clone())
        .tuner(DecisionTreeTuner::new(tree).expect("schema"))
        .build()
        .expect("configured");
    t.row(evaluate("decision-tree", &mut |id| {
        tree_session.tune(&mut pipeline::matrix_in_csr(&spec, id)).expect("tune")
    }));

    let mut forest_session = pipeline::oracle_for_pair(&pc, pi, &spec, &cache);
    t.row(evaluate("random-forest", &mut |id| {
        forest_session.tune(&mut pipeline::matrix_in_csr(&spec, id)).expect("tune")
    }));
    println!("{}", t.render());
    println!("run-first is exact but pays conversions; the tree is cheapest; the forest");
    println!("buys accuracy with a still-negligible prediction cost (§VI-A's trade-off).");
}
