//! Direct-vs-hub conversion benchmark with a machine-readable snapshot.
//!
//! Times every CSR/COO → {ELL, DIA, HYB, HDC} conversion on a small corpus
//! three ways:
//!
//! * `hub_s` — the legacy route: materialise a COO intermediate, then
//!   rebuild ([`morpheus::convert_via_hub`]);
//! * `direct_s` — the dispatcher's direct kernel, planning by rescanning;
//! * `planned_s` — the direct kernel fed a precomputed
//!   [`morpheus::Analysis`], the Oracle's hot path.
//!
//! Results go to stdout as a table and to `BENCH_convert.json` (override
//! with `--out PATH`) so the conversion-performance trajectory can be
//! tracked across commits. `--smoke` shrinks the corpus and iteration count
//! to a few hundred milliseconds total — CI runs that mode to keep the
//! harness executable.

use morpheus::format::FormatId;
use morpheus::{convert_via_hub, Analysis, ConvertOptions, CooMatrix, DynamicMatrix};
use morpheus_bench::report::json_escape;
use morpheus_corpus::gen::banded::tridiagonal;
use morpheus_corpus::gen::powerlaw::zipf_rows;
use morpheus_corpus::gen::random::near_diagonal;
use morpheus_corpus::gen::stencil::poisson2d;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Case {
    name: &'static str,
    matrix: CooMatrix<f64>,
}

fn corpus(smoke: bool) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(9);
    let scale = |full: usize, small: usize| if smoke { small } else { full };
    vec![
        Case { name: "near-diagonal", matrix: near_diagonal(scale(20_000, 1_500), 9, 60.0, &mut rng) },
        Case { name: "tridiagonal", matrix: tridiagonal(scale(200_000, 4_000)) },
        Case { name: "poisson2d", matrix: poisson2d(scale(400, 48), scale(400, 48)) },
        Case {
            name: "zipf-rows",
            matrix: zipf_rows(scale(30_000, 2_000), scale(400_000, 12_000), 1.0, &mut rng),
        },
    ]
}

/// Median wall time of `iters` runs of `f` (after one warm-up run).
fn time_median<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

struct Row {
    matrix: String,
    nrows: usize,
    nnz: usize,
    source: FormatId,
    target: FormatId,
    viable: bool,
    hub_s: f64,
    direct_s: f64,
    planned_s: f64,
    path: String,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_convert.json".to_string());
    let iters = if smoke { 3 } else { 9 };
    let opts = ConvertOptions::default();
    let targets = [FormatId::Ell, FormatId::Dia, FormatId::Hyb, FormatId::Hdc];

    let mut rows: Vec<Row> = Vec::new();
    for case in corpus(smoke) {
        let coo = DynamicMatrix::from(case.matrix);
        let csr = coo.to_format(FormatId::Csr, &opts).expect("CSR always converts");
        for source in [&csr, &coo] {
            let analysis = Analysis::of_auto(source, opts.true_diag_alpha);
            for target in targets {
                // Non-viable conversions (padding limit) are part of the
                // contract: record them, skip the timing.
                let viable = convert_via_hub(source, target, &opts).is_ok();
                let (hub_s, direct_s, planned_s, path) = if viable {
                    // Sanity: the direct kernel must produce the identical
                    // representation before we compare its speed.
                    let reference = convert_via_hub(source, target, &opts).unwrap();
                    let (direct, outcome) = source.to_format_with(target, &opts, None).unwrap();
                    assert_eq!(direct, reference, "{}: {} -> {}", case.name, source.format_id(), target);
                    (
                        time_median(iters, || convert_via_hub(source, target, &opts).unwrap()),
                        time_median(iters, || source.to_format(target, &opts).unwrap()),
                        time_median(iters, || source.to_format_with(target, &opts, Some(&analysis)).unwrap()),
                        outcome.path.to_string(),
                    )
                } else {
                    (0.0, 0.0, 0.0, "non-viable".to_string())
                };
                rows.push(Row {
                    matrix: case.name.to_string(),
                    nrows: source.nrows(),
                    nnz: source.nnz(),
                    source: source.format_id(),
                    target,
                    viable,
                    hub_s,
                    direct_s,
                    planned_s,
                    path,
                });
            }
        }
    }

    println!(
        "== convert: direct vs COO-hub ({} mode, {iters} iters) ==",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:<14} {:>9} {:>5}->{:<5} {:>11} {:>11} {:>11} {:>8}",
        "matrix", "nnz", "src", "dst", "hub", "direct", "planned", "speedup"
    );
    for r in &rows {
        if !r.viable {
            println!(
                "{:<14} {:>9} {:>5}->{:<5} {:>11} {:>11} {:>11} {:>8}",
                r.matrix,
                r.nnz,
                r.source.name(),
                r.target.name(),
                "-",
                "-",
                "-",
                "n/a"
            );
            continue;
        }
        println!(
            "{:<14} {:>9} {:>5}->{:<5} {:>10.3}ms {:>10.3}ms {:>10.3}ms {:>7.2}x",
            r.matrix,
            r.nnz,
            r.source.name(),
            r.target.name(),
            r.hub_s * 1e3,
            r.direct_s * 1e3,
            r.planned_s * 1e3,
            r.hub_s / r.direct_s.max(1e-12),
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"morpheus-bench/convert/v1\",\n");
    json.push_str(&format!("  \"mode\": \"{}\",\n", if smoke { "smoke" } else { "full" }));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str(&format!("  \"threads\": {},\n", morpheus_parallel::global_pool().num_threads()));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"matrix\": \"{}\", \"nrows\": {}, \"nnz\": {}, \"source\": \"{}\", \
             \"target\": \"{}\", \"viable\": {}, \"hub_s\": {:.9}, \"direct_s\": {:.9}, \
             \"planned_s\": {:.9}, \"speedup\": {:.3}, \"path\": \"{}\"}}{}\n",
            json_escape(&r.matrix),
            r.nrows,
            r.nnz,
            r.source.name(),
            r.target.name(),
            r.viable,
            r.hub_s,
            r.direct_s,
            r.planned_s,
            if r.viable { r.hub_s / r.direct_s.max(1e-12) } else { 0.0 },
            json_escape(&r.path),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("\nwrote {out_path}");

    // Headline check for the perf trajectory: CSR->ELL and CSR->DIA must
    // beat the hub on the corpus (geometric mean over viable cases).
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for r in rows.iter().filter(|r| {
        r.viable && r.source == FormatId::Csr && matches!(r.target, FormatId::Ell | FormatId::Dia)
    }) {
        log_sum += (r.hub_s / r.direct_s.max(1e-12)).ln();
        n += 1;
    }
    if n > 0 {
        let gmean = (log_sum / n as f64).exp();
        println!("CSR->{{ELL,DIA}} geomean speedup over hub: {gmean:.2}x ({n} cases)");
    }
}
