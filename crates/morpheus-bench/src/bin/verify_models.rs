//! Sanity-checks the shipped model database (`models/`): every
//! (system, backend) pair must load through the public `ModelDatabase` API
//! with the right feature schema.
//!
//! ```text
//! cargo run --release -p morpheus-bench --bin verify_models
//! ```

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "models".to_string());
    let db = morpheus_oracle::ModelDatabase::new(&dir);
    for pair in morpheus_machine::systems::all_system_backends() {
        let tuner = db
            .load_forest_tuner(pair.system.name, pair.backend)
            .unwrap_or_else(|e| panic!("{}: {e}", pair.label()));
        assert_eq!(tuner.model().n_features(), morpheus_oracle::NUM_FEATURES);
        assert_eq!(tuner.model().n_classes(), morpheus::format::FORMAT_COUNT);
        println!(
            "{}: {} trees, {} nodes",
            pair.label(),
            tuner.model().trees().len(),
            tuner.model().n_nodes()
        );
    }
    println!("ok: all {} models load and match the feature schema", 11);
}
