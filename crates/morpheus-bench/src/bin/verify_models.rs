//! Sanity-checks the shipped model database (`models/`): every
//! (system, backend) pair must load through the public `ModelDatabase` API
//! with the right feature schema, and drive an `Oracle` session end-to-end
//! on a probe matrix.
//!
//! ```text
//! cargo run --release -p morpheus-bench --bin verify_models
//! ```

use morpheus::{CooMatrix, DynamicMatrix};
use morpheus_oracle::Oracle;

/// A small tridiagonal probe: every format is viable, so any prediction
/// materialises.
fn probe_matrix() -> DynamicMatrix<f64> {
    let n = 500usize;
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    for i in 0..n {
        for d in [-1isize, 0, 1] {
            let j = i as isize + d;
            if j >= 0 && (j as usize) < n {
                rows.push(i);
                cols.push(j as usize);
            }
        }
    }
    let vals = vec![1.0; rows.len()];
    DynamicMatrix::from(CooMatrix::from_triplets(n, n, &rows, &cols, &vals).unwrap())
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "models".to_string());
    let db = morpheus_oracle::ModelDatabase::new(&dir);
    for pair in morpheus_machine::systems::all_system_backends() {
        let tuner = db
            .load_forest_tuner(pair.system.name, pair.backend)
            .unwrap_or_else(|e| panic!("{}: {e}", pair.label()));
        assert_eq!(tuner.model().n_features(), morpheus_oracle::NUM_FEATURES);
        assert_eq!(tuner.model().n_classes(), morpheus::format::FORMAT_COUNT);
        let n_trees = tuner.model().trees().len();
        let n_nodes = tuner.model().n_nodes();

        // The loaded model must drive a session end-to-end.
        let mut oracle = Oracle::builder()
            .engine(morpheus_machine::VirtualEngine::for_pair(&pair))
            .tuner(tuner)
            .build()
            .unwrap_or_else(|e| panic!("{}: {e}", pair.label()));
        let mut m = probe_matrix();
        let report = oracle.tune(&mut m).unwrap_or_else(|e| panic!("{}: {e}", pair.label()));
        assert_eq!(m.format_id(), report.chosen);
        println!("{}: {} trees, {} nodes, probe tuned to {}", pair.label(), n_trees, n_nodes, report.chosen);
    }
    println!("ok: all {} models load, match the feature schema and tune end-to-end", 11);
}
