//! Experiment harness regenerating the paper's evaluation (§VII).
//!
//! The expensive, shared step is *profiling*: running (modelled) SpMV for
//! every matrix in the corpus, every format and every (system, backend)
//! pair — Figure 1's "Matrix Profiling Runs". [`pipeline`] performs it once,
//! caches the result on disk, and derives per-pair training/test datasets
//! from it. Each experiment binary (`fig2`, `fig3`, `fig4`, `table3`,
//! `table4`, `fig5`, `ablation`, `sparse_tree`) then reads the cache and
//! prints its table or figure series.
//!
//! Environment knobs (all optional):
//! * `MORPHEUS_CORPUS_N` — corpus size (default 2200, the paper's scale);
//! * `MORPHEUS_BENCH_CACHE` — cache directory (default `target/bench-cache`);
//! * `MORPHEUS_SEED` — master seed (default the corpus crate's).

pub mod pipeline;
pub mod report;

pub use pipeline::{
    dataset_for_pair, profile_corpus_cached, train_tuned_forest, ProfiledCorpus, ProfiledEntry,
};

/// Corpus size from the environment (default: paper scale, 2200).
pub fn corpus_n_from_env() -> usize {
    std::env::var("MORPHEUS_CORPUS_N").ok().and_then(|s| s.parse().ok()).unwrap_or(2200)
}

/// Cache directory from the environment.
pub fn cache_dir_from_env() -> std::path::PathBuf {
    std::env::var("MORPHEUS_BENCH_CACHE")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("target/bench-cache"))
}

/// The corpus spec the experiments run on: paper scale unless overridden.
pub fn corpus_spec_from_env() -> morpheus_corpus::CorpusSpec {
    let n = corpus_n_from_env();
    let mut spec = if n >= 1000 {
        morpheus_corpus::CorpusSpec::paper_scale()
    } else {
        // Reduced runs keep smaller matrices so they stay fast end-to-end.
        morpheus_corpus::CorpusSpec {
            min_n: 200,
            max_n: 20_000,
            ..morpheus_corpus::CorpusSpec::paper_scale()
        }
    };
    spec.n_matrices = n;
    if let Ok(seed) = std::env::var("MORPHEUS_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            spec.seed = seed;
        }
    }
    spec
}
