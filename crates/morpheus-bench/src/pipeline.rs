//! The offline stage (Figure 1): profiling runs, feature extraction,
//! dataset assembly and model training — with a disk cache so every
//! experiment binary shares one profiling pass.

use morpheus::format::{FormatId, FORMAT_COUNT};
use morpheus::{ConvertOptions, DynamicMatrix};
use morpheus_corpus::CorpusSpec;
use morpheus_machine::{analyze, systems, ProfileResult, SystemBackend, VirtualEngine};
use morpheus_ml::{Criterion, Dataset, ForestGrid, ForestParams, RandomForest, Scoring};
use morpheus_oracle::{FeatureVector, Oracle, RandomForestTuner, FEATURE_NAMES, NUM_FEATURES};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything the experiments need about one corpus matrix, per
/// (system, backend) pair.
#[derive(Debug, Clone)]
pub struct ProfiledEntry {
    /// Corpus index.
    pub id: usize,
    /// Corpus name (`class-id`).
    pub name: String,
    /// Structural family.
    pub class_name: String,
    /// Held-out test-set membership.
    pub is_test: bool,
    /// Rows.
    pub nrows: usize,
    /// Non-zeros.
    pub nnz: usize,
    /// Table-I features.
    pub features: [f64; NUM_FEATURES],
    /// Per-pair profiling results (same order as [`ProfiledCorpus::pairs`]).
    pub profiles: Vec<ProfileResult>,
    /// Per-pair feature-extraction time (matrix held in CSR, the common
    /// starting format).
    pub fe_times: Vec<f64>,
}

/// The profiled corpus: the output of Figure 1's offline profiling stage.
#[derive(Debug, Clone)]
pub struct ProfiledCorpus {
    /// The eleven (system, backend) pairs of Table III.
    pub pairs: Vec<SystemBackend>,
    /// One record per corpus matrix.
    pub entries: Vec<ProfiledEntry>,
}

impl ProfiledCorpus {
    /// Index of a pair by its label (e.g. `"P3/CUDA"`).
    pub fn pair_index(&self, label: &str) -> Option<usize> {
        self.pairs.iter().position(|p| p.label() == label)
    }

    /// Entries of the training (or test) split.
    pub fn split(&self, test: bool) -> impl Iterator<Item = &ProfiledEntry> {
        self.entries.iter().filter(move |e| e.is_test == test)
    }
}

/// Profiles every corpus matrix on every pair (parallel across matrices).
pub fn profile_corpus(spec: &CorpusSpec) -> ProfiledCorpus {
    let pairs = systems::all_system_backends();
    let engines: Vec<VirtualEngine> = pairs.iter().map(VirtualEngine::for_pair).collect();
    let n = spec.n_matrices;
    let slots: Vec<Mutex<Option<ProfiledEntry>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let entry = spec.entry(i);
                let m = DynamicMatrix::from(entry.matrix);
                let analysis = analyze(&m);
                let features = FeatureVector::from_stats(&analysis.stats).0;
                let profiles: Vec<ProfileResult> = engines.iter().map(|e| e.profile(&analysis)).collect();
                let fe_times: Vec<f64> =
                    engines.iter().map(|e| e.feature_extraction_time(FormatId::Csr, &analysis)).collect();
                *slots[i].lock().expect("slot") = Some(ProfiledEntry {
                    id: entry.id,
                    name: entry.name,
                    class_name: entry.class.name().to_string(),
                    is_test: entry.is_test,
                    nrows: analysis.nrows(),
                    nnz: analysis.nnz(),
                    features,
                    profiles,
                    fe_times,
                });
            });
        }
    });
    let entries = slots.into_iter().map(|s| s.into_inner().expect("slot").expect("profiled")).collect();
    ProfiledCorpus { pairs, entries }
}

/// Cached variant of [`profile_corpus`]: results are stored under
/// `cache_dir` keyed by (seed, size) and reused across binaries.
pub fn profile_corpus_cached(spec: &CorpusSpec, cache_dir: &Path) -> ProfiledCorpus {
    let key = format!("profile-{:x}-{}-{}-{}.tsv", spec.seed, spec.n_matrices, spec.min_n, spec.max_n);
    let path = cache_dir.join(key);
    if path.exists() {
        match load_cache(&path) {
            Ok(pc) => return pc,
            Err(e) => eprintln!("note: ignoring stale profile cache {}: {e}", path.display()),
        }
    }
    let pc = profile_corpus(spec);
    if let Err(e) = std::fs::create_dir_all(cache_dir).and_then(|_| save_cache(&path, &pc)) {
        eprintln!("note: could not write profile cache {}: {e}", path.display());
    }
    pc
}

fn save_cache(path: &Path, pc: &ProfiledCorpus) -> std::io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# morpheus profile cache v1")?;
    writeln!(w, "pairs\t{}", pc.pairs.iter().map(|p| p.label()).collect::<Vec<_>>().join("\t"))?;
    for e in &pc.entries {
        write!(w, "{}\t{}\t{}\t{}\t{}\t{}", e.id, e.name, e.class_name, u8::from(e.is_test), e.nrows, e.nnz)?;
        for f in &e.features {
            write!(w, "\t{f:e}")?;
        }
        for (p, fe) in e.profiles.iter().zip(&e.fe_times) {
            write!(w, "\t{}", p.optimal.index())?;
            write!(w, "\t{fe:e}")?;
            for t in &p.times {
                match t {
                    Some(v) => write!(w, "\t{v:e}")?,
                    None => write!(w, "\tx")?,
                }
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

fn load_cache(path: &Path) -> std::io::Result<ProfiledCorpus> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let file = std::fs::File::open(path)?;
    let mut lines = std::io::BufReader::new(file).lines();
    let header = lines.next().ok_or_else(|| bad("empty cache"))??;
    if !header.starts_with("# morpheus profile cache v1") {
        return Err(bad("wrong cache version"));
    }
    let pair_line = lines.next().ok_or_else(|| bad("missing pairs line"))??;
    let labels: Vec<&str> = pair_line.split('\t').skip(1).collect();
    let all_pairs = systems::all_system_backends();
    let mut pairs = Vec::new();
    for l in &labels {
        let p = all_pairs.iter().find(|p| p.label() == *l).ok_or_else(|| bad("unknown pair label"))?;
        pairs.push(p.clone());
    }
    let np = pairs.len();
    let mut entries = Vec::new();
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let t: Vec<&str> = line.split('\t').collect();
        let fixed = 6 + NUM_FEATURES;
        if t.len() != fixed + np * (2 + FORMAT_COUNT) {
            return Err(bad("bad cache row width"));
        }
        let parse_f = |s: &str| s.parse::<f64>().map_err(|_| bad("bad float"));
        let mut features = [0.0; NUM_FEATURES];
        for (k, slot) in features.iter_mut().enumerate() {
            *slot = parse_f(t[6 + k])?;
        }
        let mut profiles = Vec::with_capacity(np);
        let mut fe_times = Vec::with_capacity(np);
        for p in 0..np {
            let base = fixed + p * (2 + FORMAT_COUNT);
            let optimal = FormatId::from_index(t[base].parse().map_err(|_| bad("bad optimal"))?)
                .ok_or_else(|| bad("bad optimal id"))?;
            fe_times.push(parse_f(t[base + 1])?);
            let mut times = [None; FORMAT_COUNT];
            for (f, slot) in times.iter_mut().enumerate() {
                let s = t[base + 2 + f];
                if s != "x" {
                    *slot = Some(parse_f(s)?);
                }
            }
            profiles.push(ProfileResult { times, optimal });
        }
        entries.push(ProfiledEntry {
            id: t[0].parse().map_err(|_| bad("bad id"))?,
            name: t[1].to_string(),
            class_name: t[2].to_string(),
            is_test: t[3] == "1",
            nrows: t[4].parse().map_err(|_| bad("bad nrows"))?,
            nnz: t[5].parse().map_err(|_| bad("bad nnz"))?,
            features,
            profiles,
            fe_times,
        });
    }
    Ok(ProfiledCorpus { pairs, entries })
}

/// Builds the classification dataset for one pair from the profiled corpus
/// (features → optimal format ID), restricted to the train or test split.
pub fn dataset_for_pair(pc: &ProfiledCorpus, pair_idx: usize, test: bool) -> Dataset {
    let mut ds =
        Dataset::empty(NUM_FEATURES, FORMAT_COUNT, FEATURE_NAMES.iter().map(|s| s.to_string()).collect())
            .expect("static shape");
    for e in pc.split(test) {
        ds.push(&e.features, e.profiles[pair_idx].optimal.index()).expect("valid row");
    }
    ds
}

/// The reduced grid the harness tunes with by default (the paper's
/// exhaustive space is hours of compute; `sparse_tree --full-grid` runs the
/// full one).
pub fn quick_grid() -> ForestGrid {
    ForestGrid {
        n_estimators: vec![20, 40],
        max_depth: vec![Some(12), Some(18)],
        min_samples_leaf: vec![1, 2],
        min_samples_split: vec![2],
        max_features: vec![Some(4), Some(10)],
        criterion: vec![Criterion::Gini, Criterion::Entropy],
        bootstrap: vec![true],
    }
}

/// A tuned model for one pair plus its provenance (Table III row material).
#[derive(Debug, Clone)]
pub struct TunedModel {
    /// Winning hyperparameters.
    pub params: ForestParams,
    /// The refitted winner.
    pub model: RandomForest,
    /// Mean 5-fold CV balanced accuracy of the winner.
    pub cv_score: f64,
}

/// Trains (or loads from cache) the tuned forest for one pair. The cache
/// key covers the corpus identity and the pair label, so all experiment
/// binaries share one training run per pair.
pub fn tuned_forest_cached(
    pc: &ProfiledCorpus,
    pair_idx: usize,
    spec: &CorpusSpec,
    cache_dir: &Path,
) -> TunedModel {
    let pair = &pc.pairs[pair_idx];
    let key = format!(
        "tuned-{:x}-{}-{}.model",
        spec.seed,
        spec.n_matrices,
        pair.label().to_ascii_lowercase().replace('/', "_")
    );
    let path = cache_dir.join(&key);
    let meta_path = cache_dir.join(format!("{key}.meta"));
    if let (Ok(file), Ok(meta)) = (std::fs::File::open(&path), std::fs::read_to_string(&meta_path)) {
        if let Ok(morpheus_ml::serialize::LoadedModel::Forest(model)) =
            morpheus_ml::serialize::load_model(std::io::BufReader::new(file))
        {
            // A model trained under an older feature/format schema (e.g.
            // before a new format or feature landed) is stale, not corrupt:
            // retrain instead of letting the tuner reject it downstream.
            if model.n_features() == NUM_FEATURES && model.n_classes() == FORMAT_COUNT {
                if let Some(tm) = parse_meta(&meta, model) {
                    return tm;
                }
            }
        }
        eprintln!("note: ignoring stale model cache {}", path.display());
    }
    let train = dataset_for_pair(pc, pair_idx, false);
    let (params, model, cv_score) = train_tuned_forest(&train, spec.seed ^ pair_idx as u64);
    let _ = std::fs::create_dir_all(cache_dir);
    if let Ok(file) = std::fs::File::create(&path) {
        let _ = morpheus_ml::serialize::save_forest(&mut BufWriter::new(file), &model);
        let _ = std::fs::write(&meta_path, render_meta(&params, cv_score));
    }
    TunedModel { params, model, cv_score }
}

fn render_meta(p: &ForestParams, cv: f64) -> String {
    format!(
        "n_estimators {}\nbootstrap {}\nmax_depth {}\nmin_samples_leaf {}\nmin_samples_split {}\nmax_features {}\ncriterion {}\nseed {}\ncv_score {cv:e}\n",
        p.n_estimators,
        p.bootstrap,
        p.max_depth.map_or(-1i64, |d| d as i64),
        p.min_samples_leaf,
        p.min_samples_split,
        p.max_features.map_or(-1i64, |d| d as i64),
        p.criterion.name(),
        p.seed,
    )
}

fn parse_meta(meta: &str, model: RandomForest) -> Option<TunedModel> {
    let mut map = std::collections::HashMap::new();
    for line in meta.lines() {
        let mut it = line.split_whitespace();
        let k = it.next()?;
        let v = it.next()?;
        map.insert(k.to_string(), v.to_string());
    }
    let opt = |v: i64| if v < 0 { None } else { Some(v as usize) };
    let params = ForestParams {
        n_estimators: map.get("n_estimators")?.parse().ok()?,
        bootstrap: map.get("bootstrap")?.parse().ok()?,
        max_depth: opt(map.get("max_depth")?.parse().ok()?),
        min_samples_leaf: map.get("min_samples_leaf")?.parse().ok()?,
        min_samples_split: map.get("min_samples_split")?.parse().ok()?,
        max_features: opt(map.get("max_features")?.parse().ok()?),
        criterion: Criterion::from_name(map.get("criterion")?)?,
        balanced_bootstrap: false,
        seed: map.get("seed")?.parse().ok()?,
    };
    let cv_score: f64 = map.get("cv_score")?.parse().ok()?;
    Some(TunedModel { params, model, cv_score })
}

/// Opens an [`Oracle`] tuning session for one pair, driven by that pair's
/// tuned (cached) random forest. This is what the experiment binaries use
/// for every "online stage" measurement, so they exercise the exact API a
/// production caller would.
pub fn oracle_for_pair(
    pc: &ProfiledCorpus,
    pair_idx: usize,
    spec: &CorpusSpec,
    cache_dir: &Path,
) -> Oracle<RandomForestTuner> {
    let tuned = tuned_forest_cached(pc, pair_idx, spec, cache_dir);
    let tuner = RandomForestTuner::new(tuned.model).expect("tuned model matches the feature schema");
    Oracle::builder()
        .engine(VirtualEngine::for_pair(&pc.pairs[pair_idx]))
        .tuner(tuner)
        // Size the cache for the corpus stream so repeated sweeps (fig5,
        // table4's cached pass) hit instead of thrashing the LRU.
        .cache_capacity(pc.entries.len().max(morpheus_oracle::DEFAULT_CACHE_CAPACITY))
        .build()
        .expect("engine and tuner are set")
}

/// Regenerates one profiled entry's matrix, held in CSR — the common
/// starting format of the paper's online-stage measurements (Table IV).
pub fn matrix_in_csr(spec: &CorpusSpec, entry_id: usize) -> DynamicMatrix<f64> {
    let mut m = DynamicMatrix::from(spec.entry(entry_id).matrix);
    m.convert_to(FormatId::Csr, &ConvertOptions::default()).expect("CSR always materialises");
    m
}

/// The baseline (untuned) forest of Table III's left sub-columns:
/// scikit-learn-style defaults.
pub fn baseline_params(seed: u64) -> ForestParams {
    ForestParams { n_estimators: 100, seed, ..Default::default() }
}

/// Trains the tuned forest for one pair with the quick grid and 5-fold CV,
/// selecting on balanced accuracy (§VII-D).
pub fn train_tuned_forest(train: &Dataset, seed: u64) -> (ForestParams, RandomForest, f64) {
    let out = morpheus_ml::grid::grid_search_forest(train, &quick_grid(), 5, seed, Scoring::BalancedAccuracy)
        .expect("training set is non-empty");
    (out.best_params, out.best_model, out.best_cv_score)
}

/// Distribution of optimal formats for one pair, as percentages in
/// [`ALL_FORMATS`] order (Figure 2's y-axis).
pub fn format_distribution(pc: &ProfiledCorpus, pair_idx: usize) -> [f64; FORMAT_COUNT] {
    let mut counts = [0usize; FORMAT_COUNT];
    for e in &pc.entries {
        counts[e.profiles[pair_idx].optimal.index()] += 1;
    }
    let total = pc.entries.len().max(1) as f64;
    let mut out = [0.0; FORMAT_COUNT];
    for (o, c) in out.iter_mut().zip(counts) {
        *o = 100.0 * c as f64 / total;
    }
    out
}

/// Speedups of the optimal format over CSR for one pair, excluding
/// CSR-optimal matrices ("matrices with optimal format set to CSR are
/// omitted for clarity", Figures 3 and 4).
pub fn optimal_speedups(pc: &ProfiledCorpus, pair_idx: usize) -> Vec<f64> {
    pc.entries
        .iter()
        .filter(|e| e.profiles[pair_idx].optimal != FormatId::Csr)
        .map(|e| e.profiles[pair_idx].optimal_speedup())
        .collect()
}

/// Convenience: all format names in ID order (registry-driven, so new
/// formats show up as bench columns without edits here).
pub fn format_names() -> Vec<&'static str> {
    morpheus::FormatEntry::all().iter().map(|e| e.id.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_corpus::CorpusSpec;

    fn tiny() -> CorpusSpec {
        CorpusSpec::small(24)
    }

    #[test]
    fn profile_corpus_shapes() {
        let pc = profile_corpus(&tiny());
        assert_eq!(pc.pairs.len(), 11);
        assert_eq!(pc.entries.len(), 24);
        for e in &pc.entries {
            assert_eq!(e.profiles.len(), 11);
            assert_eq!(e.fe_times.len(), 11);
            assert!(e.nnz > 0);
            assert!(e.features.iter().all(|f| f.is_finite()));
        }
    }

    #[test]
    fn cache_roundtrip() {
        let spec = tiny();
        let dir = std::env::temp_dir().join(format!("morpheus-bench-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = profile_corpus_cached(&spec, &dir);
        let b = profile_corpus_cached(&spec, &dir); // now from cache
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.is_test, y.is_test);
            assert_eq!(x.features, y.features);
            for (px, py) in x.profiles.iter().zip(&y.profiles) {
                assert_eq!(px.optimal, py.optimal);
                for (tx, ty) in px.times.iter().zip(&py.times) {
                    match (tx, ty) {
                        (Some(a), Some(b)) => assert!((a - b).abs() <= 1e-18 + 1e-12 * a.abs()),
                        (None, None) => {}
                        _ => panic!("viability mismatch"),
                    }
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oracle_session_serves_the_profiled_corpus() {
        let spec = tiny();
        let dir = std::env::temp_dir().join(format!("morpheus-bench-oracle-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pc = profile_corpus_cached(&spec, &dir);
        let mut oracle = oracle_for_pair(&pc, 0, &spec, &dir);
        for e in pc.split(true) {
            let mut m = matrix_in_csr(&spec, e.id);
            let report = oracle.tune(&mut m).expect("tune");
            assert_eq!(m.format_id(), report.chosen);
            assert!(!report.cache_hit, "distinct corpus matrices must not collide");
        }
        assert!(oracle.cache_stats().misses > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn datasets_split_cleanly() {
        let pc = profile_corpus(&tiny());
        let train = dataset_for_pair(&pc, 0, false);
        let test = dataset_for_pair(&pc, 0, true);
        assert_eq!(train.len() + test.len(), 24);
        assert!(train.len() > test.len());
    }

    #[test]
    fn distribution_sums_to_hundred() {
        let pc = profile_corpus(&tiny());
        for p in 0..pc.pairs.len() {
            let d = format_distribution(&pc, p);
            assert!((d.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn speedups_are_at_least_one() {
        let pc = profile_corpus(&tiny());
        for p in 0..pc.pairs.len() {
            for s in optimal_speedups(&pc, p) {
                assert!(s >= 1.0, "speedup {s} < 1");
            }
        }
    }
}
