//! Plain-text table and histogram rendering for the experiment binaries.

/// Escapes a string for embedding in a JSON string literal (the snapshot
/// writers keep their JSON hand-rolled to stay dependency-free).
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Linear-interpolation percentile of an *unsorted* sample (numpy's
/// default method): `p` in `[0, 1]`. Used by the serving benchmark for
/// p50/p99 request latencies. Delegates to the runtime's shared
/// [`morpheus_oracle::obs::percentile_exact`] so bench and serving
/// quantile conventions cannot drift apart.
///
/// # Panics
/// On an empty sample.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    morpheus_oracle::obs::percentile_exact(values, p)
}

/// Summary statistics of a sample (the row shape of Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub q2: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes [`SampleStats`] (linear-interpolation quantiles, matching
/// numpy's default).
///
/// # Panics
/// On an empty sample.
pub fn sample_stats(values: &[f64]) -> SampleStats {
    assert!(!values.is_empty(), "empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
    let quantile = |q: f64| -> f64 { morpheus_oracle::obs::percentile_exact(&sorted, q) };
    SampleStats {
        mean,
        std: var.sqrt(),
        min: sorted[0],
        q1: quantile(0.25),
        q2: quantile(0.5),
        q3: quantile(0.75),
        max: sorted[n - 1],
    }
}

/// Renders an ASCII histogram of `values` over logarithmic bins, one line
/// per bin — the textual stand-in for the scatter plots of Figures 3-5.
pub fn log_histogram(values: &[f64], bins: &[f64]) -> String {
    let mut counts = vec![0usize; bins.len() + 1];
    for &v in values {
        let mut b = bins.len();
        for (i, &edge) in bins.iter().enumerate() {
            if v < edge {
                b = i;
                break;
            }
        }
        counts[b] += 1;
    }
    let max_count = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let label = if i == 0 {
            format!("        < {:<8.2}", bins[0])
        } else if i == bins.len() {
            format!("       >= {:<8.2}", bins[bins.len() - 1])
        } else {
            format!("{:8.2}..{:<8.2}", bins[i - 1], bins[i])
        };
        let bar = "#".repeat((c * 50).div_ceil(max_count).min(50));
        out.push_str(&format!("  {label} |{bar:<50}| {c}\n"));
    }
    out
}

/// Simple fixed-width table printer.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width");
        self.rows.push(cells);
    }

    /// Renders with per-column alignment.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:>w$}", w = width[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_sample() {
        let s = sample_stats(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q2, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert!((s.std - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stats_single_value() {
        let s = sample_stats(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.q1, 7.0);
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = sample_stats(&[0.0, 10.0]);
        assert_eq!(s.q2, 5.0);
        assert_eq!(s.q1, 2.5);
    }

    #[test]
    fn histogram_buckets() {
        let h = log_histogram(&[0.5, 1.2, 2.0, 8.0, 100.0], &[1.0, 1.5, 2.5, 10.0]);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("| 1"), "{h}");
        assert!(lines[4].contains("| 1"), "{h}");
    }

    #[test]
    fn percentile_interpolates_like_numpy() {
        let v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 2.5);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.99) - 3.97).abs() < 1e-12);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_wrong_width() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
