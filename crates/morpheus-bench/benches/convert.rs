//! Criterion microbenches: format-conversion cost — the price the run-first
//! tuner pays per candidate format (§III, §VI-A) — comparing the legacy
//! COO-hub route against the direct kernels and the `Analysis`-planned
//! direct path the Oracle uses. See `src/bin/bench_convert.rs` for the
//! snapshot-producing harness (`BENCH_convert.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morpheus::FormatEntry;
use morpheus::{convert_via_hub, Analysis, ConvertOptions, DynamicMatrix, FormatId};
use morpheus_corpus::gen::random::near_diagonal;
use rand::SeedableRng;

fn bench_convert(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let coo = DynamicMatrix::from(near_diagonal(20_000, 9, 60.0, &mut rng));
    let opts = ConvertOptions::default();
    let csr = coo.to_format(FormatId::Csr, &opts).expect("CSR always converts");

    let mut group = c.benchmark_group("convert-near-diagonal-20k");
    group.sample_size(10);
    for source in [&coo, &csr] {
        let src_name = source.format_id().name();
        let analysis = Analysis::of_auto(source, opts.true_diag_alpha);
        for fmt in FormatEntry::all().iter().map(|e| e.id) {
            if fmt == source.format_id() {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(format!("hub/{src_name}"), fmt.name()),
                &fmt,
                |b, &fmt| {
                    b.iter(|| convert_via_hub(source, fmt, &opts).expect("near-diagonal fits"));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("direct/{src_name}"), fmt.name()),
                &fmt,
                |b, &fmt| {
                    b.iter(|| source.to_format(fmt, &opts).expect("near-diagonal fits"));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("planned/{src_name}"), fmt.name()),
                &fmt,
                |b, &fmt| {
                    b.iter(|| {
                        source.to_format_with(fmt, &opts, Some(&analysis)).expect("near-diagonal fits")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_convert);
criterion_main!(benches);
