//! Criterion microbenches: format-conversion cost from COO, the price the
//! run-first tuner pays per candidate format (§III, §VI-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morpheus::format::ALL_FORMATS;
use morpheus::{ConvertOptions, DynamicMatrix, FormatId};
use morpheus_corpus::gen::random::near_diagonal;
use rand::SeedableRng;

fn bench_convert(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let base = DynamicMatrix::from(near_diagonal(20_000, 9, 60.0, &mut rng));
    let opts = ConvertOptions::default();

    let mut group = c.benchmark_group("convert-near-diagonal-20k");
    group.sample_size(10);
    for fmt in ALL_FORMATS {
        if fmt == FormatId::Coo {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("from-coo", fmt.name()), &fmt, |b, &fmt| {
            b.iter(|| base.to_format(fmt, &opts).expect("near-diagonal fits"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convert);
criterion_main!(benches);
