//! Criterion microbenches: host wall-clock SpMV per format, serial and
//! threaded. Complements the virtual-clock experiments with real kernel
//! timings on the build machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morpheus::spmv::threaded::spmv_csr_balanced;
use morpheus::spmv::{spmv_serial, spmv_threaded};
use morpheus::FormatEntry;
use morpheus::{ConvertOptions, DynamicMatrix, FormatId};
use morpheus_corpus::gen::powerlaw::zipf_rows;
use morpheus_corpus::gen::stencil::poisson2d;
use morpheus_parallel::{Schedule, ThreadPool};
use rand::SeedableRng;

fn bench_spmv(c: &mut Criterion) {
    // 192x192 grid: ~37k rows, ~183k non-zeros.
    let base = DynamicMatrix::from(poisson2d(192, 192));
    let n = base.nrows();
    let x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];
    let opts = ConvertOptions::default();
    let pool = ThreadPool::new(std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2));

    let mut group = c.benchmark_group("spmv-poisson2d-192");
    group.sample_size(20);
    for fmt in FormatEntry::all().iter().map(|e| e.id) {
        let m = base.to_format(fmt, &opts).expect("stencil fits all formats");
        group.bench_with_input(BenchmarkId::new("serial", fmt.name()), &m, |b, m| {
            b.iter(|| spmv_serial(m, &x, &mut y).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("threaded", fmt.name()), &m, |b, m| {
            b.iter(|| spmv_threaded(m, &x, &mut y, &pool, Schedule::default()).unwrap());
        });
    }
    group.finish();
}

/// Static vs nnz-balanced CSR partitioning on a skewed (Zipf) matrix — the
/// extension DESIGN.md §5 calls out: balancing tames the imbalance the
/// machine model charges the OpenMP backend for.
fn bench_csr_partitioning(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let m = DynamicMatrix::from(zipf_rows(30_000, 400_000, 1.3, &mut rng));
    let m = m.to_format(FormatId::Csr, &ConvertOptions::default()).expect("csr");
    let DynamicMatrix::Csr(csr) = &m else { unreachable!() };
    let n = m.nrows();
    let x = vec![1.0f64; m.ncols()];
    let mut y = vec![0.0f64; n];
    let pool = ThreadPool::new(std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2));

    let mut group = c.benchmark_group("csr-partitioning-zipf-30k");
    group.sample_size(20);
    group.bench_function("static-schedule", |b| {
        b.iter(|| spmv_threaded(&m, &x, &mut y, &pool, Schedule::default()).unwrap());
    });
    group.bench_function("dynamic-schedule", |b| {
        b.iter(|| spmv_threaded(&m, &x, &mut y, &pool, Schedule::dynamic()).unwrap());
    });
    group.bench_function("nnz-balanced", |b| {
        b.iter(|| spmv_csr_balanced(csr, &x, &mut y, &pool));
    });
    group.finish();
}

criterion_group!(benches, bench_spmv, bench_csr_partitioning);
criterion_main!(benches);
