//! Criterion microbenches: model evaluation cost (`T_PRED` of Table IV) —
//! single tree vs forests of increasing size, on the host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morpheus_ml::{Dataset, DecisionTree, ForestParams, RandomForest, TreeParams};
use morpheus_oracle::NUM_FEATURES;

fn training_set() -> Dataset {
    let mut ds = Dataset::empty(NUM_FEATURES, 6, vec![]).unwrap();
    let mut state = 11u64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    for i in 0..1200 {
        let row: Vec<f64> = (0..NUM_FEATURES).map(|_| rnd() * 1000.0).collect();
        ds.push(&row, i % 6).unwrap();
    }
    ds
}

fn bench_predict(c: &mut Criterion) {
    let ds = training_set();
    let probe: Vec<f64> = (0..NUM_FEATURES).map(|i| (i * 37) as f64).collect();

    let mut group = c.benchmark_group("model-prediction");
    group.sample_size(30);

    let tree = DecisionTree::fit(&ds, &TreeParams { max_depth: Some(16), ..Default::default() }).unwrap();
    group.bench_function("decision-tree", |b| b.iter(|| tree.predict(&probe)));

    for n_estimators in [10usize, 40, 100] {
        let forest =
            RandomForest::fit(&ds, &ForestParams { n_estimators, max_depth: Some(16), ..Default::default() })
                .unwrap();
        group.bench_with_input(BenchmarkId::new("random-forest", n_estimators), &forest, |b, f| {
            b.iter(|| f.predict(&probe));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
