//! Criterion microbenches: on-line feature extraction per active format
//! (§VI-C) — the `T_FE` component of Table IV, measured on the host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morpheus::FormatEntry;
use morpheus::{ConvertOptions, DynamicMatrix};
use morpheus_corpus::gen::stencil::poisson2d;
use morpheus_oracle::FeatureVector;

fn bench_features(c: &mut Criterion) {
    let base = DynamicMatrix::from(poisson2d(160, 160));
    let opts = ConvertOptions::default();

    let mut group = c.benchmark_group("feature-extraction-poisson2d-160");
    group.sample_size(20);
    for fmt in FormatEntry::all().iter().map(|e| e.id) {
        let m = base.to_format(fmt, &opts).expect("stencil fits all formats");
        group.bench_with_input(BenchmarkId::new("active-format", fmt.name()), &m, |b, m| {
            b.iter(|| FeatureVector::extract(m));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
